//! The replica side of WAL shipping: dial the primary, bootstrap from a
//! snapshot, then apply shipped segments forever.
//!
//! One worker thread owns the whole lifecycle. It subscribes over the
//! ordinary wire protocol ([`bq_server::wire`]), so a replica is just
//! another client as far as the primary's accept path, admission control,
//! and session accounting are concerned. The stream protocol is a strict
//! send/ack ping-pong in which the replica's acknowledgement is
//! authoritative: it acks the byte offset it has *received contiguously
//! and applied through*, and the primary continues from whatever the ack
//! says. A segment that opens a gap (a dropped or reordered predecessor)
//! is refused — not applied, acked at the old horizon — which rewinds the
//! primary with no retransmit machinery beyond the WAL's own offsets.
//!
//! Crash semantics: the worker applies complete records only (a record
//! split across segments waits in a pending buffer), acks only after
//! apply, and re-subscribes from the last fully-applied record boundary
//! after any disconnect. Because the primary syncs its WAL on every
//! commit, an ack at or past a commit's offset proves that commit is
//! applied here — the fact the semi-sync tagged-write wait relies on.

use crate::backoff::Backoff;
use bq_core::Db;
use bq_server::wire::{self, Request, Response, PROTOCOL_VERSION, SUBSCRIBE_BOOTSTRAP};
use bq_storage::Wal;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How a replica worker run ended.
enum StreamEnd {
    /// [`Replica::stop`] was requested.
    Stopped,
    /// The primary announced a drain; reconnect immediately.
    GoingAway,
    /// The `repl.apply.crash` failpoint fired: simulate a process crash
    /// mid-apply. The worker exits; a fresh replica must re-bootstrap.
    Crashed,
}

/// Tunables for a [`Replica`].
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Primary's address, e.g. `127.0.0.1:4444`.
    pub primary: String,
    /// Dial + handshake deadline per attempt.
    pub connect_timeout: Duration,
    /// Read poll while streaming: how quickly the worker notices a stop
    /// request or a dead link when the primary is idle.
    pub read_poll: Duration,
    /// Seed for the reconnect backoff jitter.
    pub seed: u64,
}

impl ReplicaConfig {
    /// Defaults: 5s connect deadline, 250ms read poll, seed 0.
    pub fn new(primary: impl Into<String>) -> ReplicaConfig {
        ReplicaConfig {
            primary: primary.into(),
            connect_timeout: Duration::from_secs(5),
            read_poll: Duration::from_millis(250),
            seed: 0,
        }
    }
}

/// A live replica: a fresh engine plus the worker thread keeping it in
/// sync with the primary. Serve reads from [`Replica::db`] (embedded, or
/// behind a read-only [`bq_server::serve`]); call [`Replica::promote`]
/// when the primary dies.
pub struct Replica {
    db: Arc<RwLock<Db>>,
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<String>>,
    applied: Arc<AtomicU64>,
    worker: Option<JoinHandle<()>>,
}

impl Replica {
    /// Start replicating from `config.primary` into a fresh engine. The
    /// worker retries forever (capped-exponential backoff, seeded
    /// jitter) until stopped, promoted, or crashed by a failpoint.
    pub fn start(config: ReplicaConfig) -> Replica {
        let db = Arc::new(RwLock::new(Db::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new("connecting".to_string()));
        let applied = Arc::new(AtomicU64::new(0));
        let worker = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            let applied = Arc::clone(&applied);
            thread::Builder::new()
                .name("bq-replica".to_string())
                .spawn(move || worker(&db, &stop, &state, &applied, &config))
                .ok()
        };
        Replica {
            db,
            stop,
            state,
            applied,
            worker,
        }
    }

    /// The replicated engine. Safe to serve reads from at any time; its
    /// contents converge to the primary's committed state.
    pub fn db(&self) -> Arc<RwLock<Db>> {
        Arc::clone(&self.db)
    }

    /// Primary WAL byte offset applied through (last fully-applied
    /// record boundary).
    pub fn applied(&self) -> u64 {
        // relaxed: progress gauge; the db lock orders the data itself.
        self.applied.load(Ordering::Relaxed)
    }

    /// Worker state: `connecting`, `bootstrapping`, `streaming`,
    /// `reconnecting`, `crashed`, or `stopped`.
    pub fn state(&self) -> String {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stop replicating (idempotent; joins the worker).
    pub fn stop(&mut self) {
        // relaxed: advisory stop flag, re-polled by the worker loop.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }

    /// Promote this replica: stop replication, abort any transactions
    /// that were open in the shipped stream (their coordinator is gone),
    /// and hand back the engine, now safe to serve writes.
    pub fn promote(mut self) -> Arc<RwLock<Db>> {
        self.stop();
        {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            let _ = db.promote();
        }
        bq_obs::counter!("bq_repl_promotions_total", "replicas promoted to primary").inc();
        Arc::clone(&self.db)
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

fn set_state(state: &Mutex<String>, s: &str) {
    *state.lock().unwrap_or_else(|e| e.into_inner()) = s.to_string();
}

fn worker(
    db: &Arc<RwLock<Db>>,
    stop: &AtomicBool,
    state: &Mutex<String>,
    applied: &AtomicU64,
    config: &ReplicaConfig,
) {
    let mut backoff = Backoff::new(config.seed);
    // Last fully-applied record boundary; `None` until a snapshot lands.
    let mut base: Option<u64> = None;
    loop {
        // relaxed: advisory stop flag, re-polled every attempt.
        if stop.load(Ordering::Relaxed) {
            set_state(state, "stopped");
            return;
        }
        match run_stream(db, stop, state, applied, config, &mut base, &mut backoff) {
            Ok(StreamEnd::Stopped) => {
                set_state(state, "stopped");
                return;
            }
            Ok(StreamEnd::Crashed) => {
                set_state(state, "crashed");
                return;
            }
            Ok(StreamEnd::GoingAway) | Err(_) => {
                bq_obs::counter!(
                    "bq_repl_reconnects_total",
                    "replica reconnect attempts after a lost stream"
                )
                .inc();
                set_state(state, "reconnecting");
                sleep_unless_stopped(stop, backoff.next_delay());
            }
        }
    }
}

/// Sleep in small slices so a stop request is honored promptly.
fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut left = total;
    while !left.is_zero() {
        // relaxed: advisory stop flag, re-polled every slice.
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let step = left.min(slice);
        thread::sleep(step);
        left -= step;
    }
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_resp(stream: &mut TcpStream) -> io::Result<Response> {
    let body = wire::read_frame(stream)?;
    Response::decode(&body).map_err(|e| bad_data(e.to_string()))
}

fn dial(primary: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = None;
    for addr in primary.to_socket_addrs()? {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "primary resolved to nothing",
        )
    }))
}

/// One connected run: handshake, subscribe, apply until the stream ends.
fn run_stream(
    db: &Arc<RwLock<Db>>,
    stop: &AtomicBool,
    state: &Mutex<String>,
    applied: &AtomicU64,
    config: &ReplicaConfig,
    base: &mut Option<u64>,
    backoff: &mut Backoff,
) -> io::Result<StreamEnd> {
    let mut stream = dial(&config.primary, config.connect_timeout)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(config.connect_timeout));
    // The connect deadline also bounds handshake and bootstrap reads.
    let _ = stream.set_read_timeout(Some(config.connect_timeout));
    wire::write_frame(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: "bq-repl".to_string(),
        }
        .encode(),
    )?;
    match read_resp(&mut stream)? {
        Response::HelloOk { .. } => {}
        Response::Error { code, message } => {
            return Err(bad_data(format!("primary refused: {code}: {message}")))
        }
        other => return Err(bad_data(format!("expected HelloOk, got {other:?}"))),
    }
    let start = base.unwrap_or(SUBSCRIBE_BOOTSTRAP);
    wire::write_frame(&mut stream, &Request::Subscribe { start }.encode())?;
    if base.is_none() {
        set_state(state, "bootstrapping");
        match read_resp(&mut stream)? {
            Response::Snapshot { bytes } => {
                let off = {
                    let mut db = db.write().unwrap_or_else(|e| e.into_inner());
                    db.apply_snapshot(&bytes)
                        .map_err(|e| bad_data(format!("snapshot: {e}")))?
                };
                *base = Some(off);
                // relaxed: progress gauge, see Replica::applied.
                applied.store(off, Ordering::Relaxed);
                bq_obs::counter!(
                    "bq_repl_bootstraps_total",
                    "replica bootstraps from a snapshot"
                )
                .inc();
            }
            Response::Error { code, message } => {
                return Err(bad_data(format!("bootstrap refused: {code}: {message}")))
            }
            other => return Err(bad_data(format!("expected Snapshot, got {other:?}"))),
        }
    }
    backoff.reset();
    set_state(state, "streaming");
    // Streaming reads poll briefly so stop requests are noticed even
    // when the primary is idle.
    let _ = stream.set_read_timeout(Some(config.read_poll));
    // Contiguously-received stream pointer; bytes past the last applied
    // record boundary wait in `pending` for their record to complete.
    let mut recv_through = base.unwrap_or(0);
    let mut pending: Vec<u8> = Vec::new();
    loop {
        // relaxed: advisory stop flag, re-polled every read.
        if stop.load(Ordering::Relaxed) {
            return Ok(StreamEnd::Stopped);
        }
        let resp = match read_resp(&mut stream) {
            Ok(r) => r,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        match resp {
            Response::WalSegment {
                start: seg_start,
                bytes,
            } => {
                if seg_start > recv_through {
                    // A predecessor was lost or reordered: refuse the gap
                    // and ack the old horizon; the primary rewinds.
                    bq_obs::counter!(
                        "bq_repl_gaps_refused_total",
                        "out-of-order segments refused by replicas"
                    )
                    .inc();
                } else {
                    let overlap = (recv_through - seg_start) as usize;
                    if overlap < bytes.len() {
                        pending.extend_from_slice(&bytes[overlap..]);
                        recv_through += (bytes.len() - overlap) as u64;
                        let (records, consumed) = Wal::decode_stream(&pending)
                            .map_err(|e| bad_data(format!("wal stream: {e}")))?;
                        {
                            let mut db = db.write().unwrap_or_else(|e| e.into_inner());
                            for rec in &records {
                                // Simulated process crash between records:
                                // the worker dies without acking, so
                                // nothing already acked is ever lost.
                                bq_faults::fail_point!("repl.apply.crash", |_| Ok(
                                    StreamEnd::Crashed
                                ));
                                db.apply_record(rec)
                                    .map_err(|e| bad_data(format!("apply: {e}")))?;
                            }
                        }
                        pending.drain(..consumed);
                        *base = Some(recv_through - pending.len() as u64);
                        // relaxed: progress gauge, see Replica::applied.
                        applied.store(recv_through - pending.len() as u64, Ordering::Relaxed);
                    }
                    // else: pure duplicate of applied bytes — ack only.
                }
                // Injected link stall: hold the ack so the primary's
                // semi-sync wait and lag gauges see a slow replica.
                if let Some(action) = bq_faults::hit("repl.link.stall") {
                    if action == bq_faults::Action::Panic {
                        bq_faults::panic_at("repl.link.stall");
                    }
                    thread::sleep(Duration::from_millis(100));
                }
                wire::write_frame(
                    &mut stream,
                    &Request::ReplAck {
                        through: recv_through,
                    }
                    .encode(),
                )?;
            }
            Response::GoingAway { .. } => return Ok(StreamEnd::GoingAway),
            Response::Error { code, message } => {
                return Err(bad_data(format!("stream error: {code}: {message}")))
            }
            other => return Err(bad_data(format!("expected WalSegment, got {other:?}"))),
        }
    }
}
