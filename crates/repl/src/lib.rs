//! bq-repl: WAL-shipping replication and client failover.
//!
//! Three pieces, each usable alone:
//!
//! * [`replica`] — [`Replica`]: dials a primary, bootstraps from a
//!   snapshot plus the durable WAL prefix, then applies shipped segments
//!   continuously. The protocol is *ack-authoritative*: the primary
//!   ships from wherever the replica last acknowledged, so a dropped,
//!   duplicated, or reordered segment heals by rewinding — there are no
//!   retransmit queues to get wrong. [`Replica::promote`] turns the
//!   replica's database into a writable primary.
//! * [`driver`] — [`FailoverDriver`]: a multi-endpoint client that
//!   reconnects with seeded backoff, fails reads over transparently, and
//!   retries writes only when it is provably safe — a typed refusal for
//!   an untagged write, or the server-side dedup table for a tagged one.
//! * [`backoff`] — [`Backoff`]: the capped-exponential, equal-jitter
//!   delay schedule both sides share.
//!
//! Every delay and identity derives from a caller-supplied seed, so the
//! partition-chaos suite (`tests/repl_torture.rs`) replays exactly.

pub mod backoff;
pub mod driver;
pub mod replica;

pub use backoff::Backoff;
pub use driver::{FailoverDriver, FailoverOptions};
pub use replica::{Replica, ReplicaConfig};
