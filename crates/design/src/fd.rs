//! Functional dependencies and FD sets.

use crate::attrs::{AttrSet, Universe};
use std::fmt;

/// A functional dependency `X → Y` over some universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Determinant (left-hand side).
    pub lhs: AttrSet,
    /// Dependent (right-hand side).
    pub rhs: AttrSet,
}

impl Fd {
    /// Build an FD.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Fd {
        Fd { lhs, rhs }
    }

    /// Is the FD trivial (`Y ⊆ X`)?
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// Split into FDs with singleton right-hand sides.
    pub fn split_rhs(&self) -> Vec<Fd> {
        self.rhs
            .iter()
            .map(|i| Fd::new(self.lhs, AttrSet::single(i)))
            .collect()
    }

    /// Project the FD onto an attribute subset, if both sides survive.
    pub fn restrict_to(&self, attrs: AttrSet) -> Option<Fd> {
        if self.lhs.is_subset(attrs) {
            let rhs = self.rhs.intersect(attrs);
            if !rhs.is_empty() {
                return Some(Fd::new(self.lhs, rhs));
            }
        }
        None
    }
}

/// A set of FDs together with the universe they speak about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSet {
    /// The attribute universe.
    pub universe: Universe,
    /// The dependencies.
    pub fds: Vec<Fd>,
}

impl FdSet {
    /// Empty FD set over a universe.
    pub fn new(universe: Universe) -> FdSet {
        FdSet {
            universe,
            fds: Vec::new(),
        }
    }

    /// Build from `(lhs-names, rhs-names)` pairs.
    pub fn from_named(names: &[&str], fds: &[(&[&str], &[&str])]) -> FdSet {
        let universe = Universe::new(names);
        let fds = fds
            .iter()
            .map(|(l, r)| Fd::new(universe.set(l), universe.set(r)))
            .collect();
        FdSet { universe, fds }
    }

    /// Add an FD.
    pub fn push(&mut self, fd: Fd) {
        self.fds.push(fd);
    }

    /// Add an FD given attribute names.
    pub fn add(&mut self, lhs: &[&str], rhs: &[&str]) {
        let fd = Fd::new(self.universe.set(lhs), self.universe.set(rhs));
        self.fds.push(fd);
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True with no FDs.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Project the FD set onto `attrs`: all implied FDs `X → Y` with
    /// `X, Y ⊆ attrs`. Computed via closures of subsets of `attrs`
    /// (exponential in `|attrs|`, as the problem inherently is).
    pub fn project(&self, attrs: AttrSet) -> FdSet {
        let names: Vec<&str> = attrs.iter().map(|i| self.universe.name(i)).collect();
        let sub = Universe::new(&names);
        let mut out = FdSet::new(sub);
        let members: Vec<usize> = attrs.iter().collect();
        let n = members.len();
        // Every subset X of attrs; FD X → (closure(X) ∩ attrs) − X.
        for mask in 0..(1u64 << n) {
            let mut lhs = AttrSet::EMPTY;
            for (j, &m) in members.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    lhs = lhs.union(AttrSet::single(m));
                }
            }
            let closure = crate::closure::attr_closure(lhs, self);
            let rhs = closure.intersect(attrs).minus(lhs);
            if !rhs.is_empty() {
                // Re-index into the sub-universe.
                let reindex = |s: AttrSet| {
                    let mut out = AttrSet::EMPTY;
                    for (j, &m) in members.iter().enumerate() {
                        if s.contains(m) {
                            out = out.union(AttrSet::single(j));
                        }
                    }
                    out
                };
                out.push(Fd::new(reindex(lhs), reindex(rhs)));
            }
        }
        out
    }

    /// Render for humans, e.g. `{AB} -> {C}`.
    pub fn render(&self) -> String {
        self.fds
            .iter()
            .map(|fd| {
                format!(
                    "{} -> {}",
                    self.universe.render(fd.lhs),
                    self.universe.render(fd.rhs)
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for FdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_detection() {
        let u = Universe::new(&["A", "B"]);
        assert!(Fd::new(u.set(&["A", "B"]), u.set(&["A"])).is_trivial());
        assert!(!Fd::new(u.set(&["A"]), u.set(&["B"])).is_trivial());
    }

    #[test]
    fn split_rhs_into_singletons() {
        let u = Universe::new(&["A", "B", "C"]);
        let fd = Fd::new(u.set(&["A"]), u.set(&["B", "C"]));
        let parts = fd.split_rhs();
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|f| f.rhs.len() == 1));
    }

    #[test]
    fn restriction() {
        let u = Universe::new(&["A", "B", "C"]);
        let fd = Fd::new(u.set(&["A"]), u.set(&["B", "C"]));
        let r = fd.restrict_to(u.set(&["A", "B"])).unwrap();
        assert_eq!(r.rhs, u.set(&["B"]));
        assert!(fd.restrict_to(u.set(&["B", "C"])).is_none());
    }

    #[test]
    fn from_named_and_render() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        assert_eq!(fds.len(), 2);
        assert_eq!(fds.render(), "{A} -> {B}, {B} -> {C}");
    }

    #[test]
    fn projection_keeps_transitive_fds() {
        // A→B, B→C projected onto {A, C} must contain A→C.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        let proj = fds.project(fds.universe.set(&["A", "C"]));
        let a = proj.universe.set(&["A"]);
        let c = proj.universe.set(&["C"]);
        assert!(
            proj.fds.iter().any(|fd| fd.lhs == a && c.is_subset(fd.rhs)),
            "projection {proj} must imply A→C"
        );
    }
}
