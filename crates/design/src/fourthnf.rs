//! Fourth normal form: normalization under multivalued dependencies.
//!
//! 4NF extends BCNF from FDs to MVDs: every nontrivial MVD `X ↠ Y` must
//! have a superkey determinant. The decomposition algorithm mirrors
//! BCNF's: split a violating schema into `X ∪ Y` and `X ∪ (R − Y)` —
//! each such split is lossless *by the MVD itself* (Fagin's theorem on
//! lossless binary decompositions), which the tests confirm with the
//! MVD-aware chase.
//!
//! As is standard for design tools, violations are detected against the
//! *stated* dependencies (FDs are checked as MVDs too); full implied-MVD
//! discovery is exponential and unnecessary for the classical algorithm.

use crate::attrs::AttrSet;
use crate::fd::FdSet;
use crate::keys::is_superkey;
use crate::mvd::Mvd;

/// A 4NF violation: the offending MVD, restricted to the sub-schema.
pub fn fourthnf_violation(rel: AttrSet, fds: &FdSet, mvds: &[Mvd]) -> Option<Mvd> {
    // Candidate MVDs on this sub-schema: stated MVDs plus FDs (an FD X→Y
    // is the MVD X↠Y), restricted to rel.
    let mut candidates: Vec<Mvd> = Vec::new();
    for m in mvds {
        if m.lhs.is_subset(rel) {
            let rhs = m.rhs.intersect(rel).minus(m.lhs);
            candidates.push(Mvd::new(m.lhs, rhs));
        }
    }
    for fd in &fds.fds {
        if fd.lhs.is_subset(rel) {
            let rhs = fd.rhs.intersect(rel).minus(fd.lhs);
            candidates.push(Mvd::new(fd.lhs, rhs));
        }
    }
    candidates
        .into_iter()
        .find(|m| !m.is_trivial(rel) && !is_superkey_of(m.lhs, rel, fds))
}

/// Is `attrs` a superkey *of the sub-schema* `rel` (its closure covers
/// `rel`)?
fn is_superkey_of(attrs: AttrSet, rel: AttrSet, fds: &FdSet) -> bool {
    if rel == fds.universe.all() {
        return is_superkey(attrs, fds);
    }
    rel.is_subset(crate::closure::attr_closure(attrs, fds))
}

/// Is the whole schema in 4NF with respect to the stated dependencies?
pub fn is_4nf(fds: &FdSet, mvds: &[Mvd]) -> bool {
    fourthnf_violation(fds.universe.all(), fds, mvds).is_none()
}

/// Decompose into 4NF sub-schemas (lossless by Fagin's theorem).
pub fn fourthnf_decompose(fds: &FdSet, mvds: &[Mvd]) -> Vec<AttrSet> {
    let mut result = Vec::new();
    let mut work = vec![fds.universe.all()];
    while let Some(rel) = work.pop() {
        match fourthnf_violation(rel, fds, mvds) {
            None => result.push(rel),
            Some(m) => {
                let r1 = m.lhs.union(m.rhs);
                let r2 = rel.minus(m.rhs);
                debug_assert!(r1.union(r2) == rel);
                debug_assert!(r1 != rel && r2 != rel, "split must shrink");
                work.push(r1);
                work.push(r2);
            }
        }
    }
    result.sort();
    result.dedup();
    let snapshot = result.clone();
    result.retain(|r| !snapshot.iter().any(|o| r.is_proper_subset(*o)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::Tableau;
    use crate::nf::is_bcnf;

    /// The textbook CTX example: course ↠ teacher, course ↠ text,
    /// no FDs. BCNF-vacuous but not 4NF.
    fn ctx() -> (FdSet, Vec<Mvd>) {
        let fds = FdSet::from_named(&["C", "T", "X"], &[]);
        let u = fds.universe.clone();
        let mvds = vec![Mvd::new(u.set(&["C"]), u.set(&["T"]))];
        (fds, mvds)
    }

    #[test]
    fn ctx_violates_4nf_but_not_bcnf() {
        let (fds, mvds) = ctx();
        assert!(is_bcnf(&fds), "no FDs, vacuously BCNF");
        assert!(!is_4nf(&fds, &mvds), "C ↠ T with C not a key");
    }

    #[test]
    fn ctx_decomposes_into_ct_and_cx() {
        let (fds, mvds) = ctx();
        let d = fourthnf_decompose(&fds, &mvds);
        let u = &fds.universe;
        assert_eq!(d, vec![u.set(&["C", "T"]), u.set(&["C", "X"])]);
        // Lossless under the MVD: chase with the MVD rule.
        let mut t = Tableau::for_decomposition(3, &d);
        t.chase(&fds, &mvds);
        assert!(t.has_distinguished_row());
    }

    #[test]
    fn fd_schema_in_4nf_iff_bcnf() {
        // With only FDs stated, 4NF coincides with BCNF.
        let good = FdSet::from_named(&["A", "B"], &[(&["A"], &["B"])]);
        assert!(is_4nf(&good, &[]));
        let bad = FdSet::from_named(&["A", "B", "C"], &[(&["B"], &["C"])]);
        assert!(!is_4nf(&bad, &[]));
        assert_eq!(is_4nf(&bad, &[]), is_bcnf(&bad));
    }

    #[test]
    fn decomposition_subschemas_are_4nf() {
        let fds = FdSet::from_named(&["A", "B", "C", "D"], &[(&["A"], &["B"])]);
        let u = fds.universe.clone();
        let mvds = vec![Mvd::new(u.set(&["A"]), u.set(&["C"]))];
        let d = fourthnf_decompose(&fds, &mvds);
        for rel in &d {
            assert!(
                fourthnf_violation(*rel, &fds, &mvds).is_none(),
                "sub-schema {} still violates 4NF",
                u.render(*rel)
            );
        }
        let covered = d.iter().copied().fold(AttrSet::EMPTY, AttrSet::union);
        assert_eq!(covered, u.all());
    }

    #[test]
    fn already_4nf_stays_whole() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B", "C"])]);
        let d = fourthnf_decompose(&fds, &[]);
        assert_eq!(d, vec![fds.universe.all()]);
    }

    #[test]
    fn trivial_mvds_do_not_trigger_splits() {
        let fds = FdSet::from_named(&["A", "B"], &[]);
        let u = fds.universe.clone();
        // A ↠ B is trivial here (X ∪ Y = U).
        let mvds = vec![Mvd::new(u.set(&["A"]), u.set(&["B"]))];
        assert!(is_4nf(&fds, &mvds));
    }
}
