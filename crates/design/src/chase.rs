//! The tableau chase.
//!
//! The chase is dependency theory's workhorse: it decides lossless-join
//! decompositions and implication of FDs and MVDs. A tableau is a matrix of
//! symbols, one column per universe attribute; *distinguished* symbols stand
//! for the target tuple's values, subscripted ones for unknowns.

use crate::attrs::AttrSet;
use crate::fd::FdSet;
use crate::mvd::Mvd;
use std::fmt;

/// A tableau symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// Distinguished symbol for a column (the "a" variables).
    D(usize),
    /// Subscripted (non-distinguished) symbol with a unique id.
    N(usize),
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::D(c) => write!(f, "a{c}"),
            Sym::N(i) => write!(f, "b{i}"),
        }
    }
}

/// A chase tableau: rows of symbols over `width` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    width: usize,
    rows: Vec<Vec<Sym>>,
    next_fresh: usize,
}

impl Tableau {
    /// Tableau for a decomposition test: one row per sub-schema, with
    /// distinguished symbols exactly on that schema's attributes.
    pub fn for_decomposition(width: usize, schemas: &[AttrSet]) -> Tableau {
        let mut next_fresh = 0;
        let rows = schemas
            .iter()
            .map(|s| {
                (0..width)
                    .map(|c| {
                        if s.contains(c) {
                            Sym::D(c)
                        } else {
                            let sym = Sym::N(next_fresh);
                            next_fresh += 1;
                            sym
                        }
                    })
                    .collect()
            })
            .collect();
        Tableau {
            width,
            rows,
            next_fresh,
        }
    }

    /// Two-row tableau for MVD/FD implication tests: rows are distinguished
    /// on the given attribute sets and fresh elsewhere.
    pub fn for_implication(width: usize, row1: AttrSet, row2: AttrSet) -> Tableau {
        Tableau::for_decomposition(width, &[row1, row2])
    }

    /// Current number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Borrow the rows (used by the implication tests in [`crate::mvd`]).
    pub fn rows_slice(&self) -> &[Vec<Sym>] {
        &self.rows
    }

    /// Does the tableau contain an all-distinguished row?
    pub fn has_distinguished_row(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.iter().enumerate().all(|(c, s)| *s == Sym::D(c)))
    }

    /// Replace symbol `from` by `to` everywhere.
    fn substitute(&mut self, from: Sym, to: Sym) {
        for row in &mut self.rows {
            for s in row.iter_mut() {
                if *s == from {
                    *s = to;
                }
            }
        }
    }

    /// Equate two symbols, preferring distinguished (then lower ids).
    fn equate(&mut self, a: Sym, b: Sym) -> bool {
        if a == b {
            return false;
        }
        match (a, b) {
            (Sym::D(_), Sym::N(_)) => self.substitute(b, a),
            (Sym::N(_), Sym::D(_)) => self.substitute(a, b),
            (Sym::N(x), Sym::N(y)) => {
                if x < y {
                    self.substitute(b, a)
                } else {
                    self.substitute(a, b)
                }
            }
            (Sym::D(_), Sym::D(_)) => {
                // Distinct distinguished symbols never share a column, so
                // equating them cannot arise from FD application.
                unreachable!("cannot equate two distinguished symbols")
            }
        }
        true
    }

    /// Apply one round of FD rules. Returns whether anything changed.
    fn apply_fds(&mut self, fds: &FdSet) -> bool {
        let mut changed = false;
        for fd in &fds.fds {
            'pairs: loop {
                for i in 0..self.rows.len() {
                    for j in i + 1..self.rows.len() {
                        let agree = fd.lhs.iter().all(|c| self.rows[i][c] == self.rows[j][c]);
                        if !agree {
                            continue;
                        }
                        for c in fd.rhs.iter() {
                            let (a, b) = (self.rows[i][c], self.rows[j][c]);
                            if a != b {
                                self.equate(a, b);
                                changed = true;
                                continue 'pairs; // symbols moved; rescan
                            }
                        }
                    }
                }
                break;
            }
        }
        changed
    }

    /// Apply one round of MVD rules (adding swapped rows). Returns whether
    /// any new row was added.
    fn apply_mvds(&mut self, mvds: &[Mvd], universe_all: AttrSet) -> bool {
        let mut added = false;
        let mut new_rows: Vec<Vec<Sym>> = Vec::new();
        for mvd in mvds {
            let z = universe_all.minus(mvd.lhs).minus(mvd.rhs);
            for i in 0..self.rows.len() {
                for j in 0..self.rows.len() {
                    if i == j {
                        continue;
                    }
                    let agree = mvd.lhs.iter().all(|c| self.rows[i][c] == self.rows[j][c]);
                    if !agree {
                        continue;
                    }
                    // New row: Y from row i, Z from row j, X common.
                    let row: Vec<Sym> = (0..self.width)
                        .map(|c| {
                            if mvd.rhs.contains(c) {
                                self.rows[i][c]
                            } else if z.contains(c) {
                                self.rows[j][c]
                            } else {
                                self.rows[i][c] // X columns agree
                            }
                        })
                        .collect();
                    if !self.rows.contains(&row) && !new_rows.contains(&row) {
                        new_rows.push(row);
                        added = true;
                    }
                }
            }
        }
        self.rows.extend(new_rows);
        added
    }

    /// Chase to fixpoint with FDs and MVDs.
    pub fn chase(&mut self, fds: &FdSet, mvds: &[Mvd]) {
        let all = fds.universe.all();
        loop {
            let c1 = self.apply_fds(fds);
            let c2 = self.apply_mvds(mvds, all);
            if !c1 && !c2 {
                return;
            }
        }
    }
}

impl fmt::Display for Tableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            for (i, s) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{s}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Is the decomposition of `fds.universe` into `schemas` lossless under
/// `fds`? (Chase test: some row becomes all-distinguished.)
pub fn chase_decomposition(schemas: &[AttrSet], fds: &FdSet) -> bool {
    let mut t = Tableau::for_decomposition(fds.universe.len(), schemas);
    t.chase(fds, &[]);
    t.has_distinguished_row()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdSet;

    #[test]
    fn lossless_binary_decomposition() {
        // R(A,B,C), A→B. {AB, AC} is lossless.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"])]);
        let u = &fds.universe;
        assert!(chase_decomposition(
            &[u.set(&["A", "B"]), u.set(&["A", "C"])],
            &fds
        ));
    }

    #[test]
    fn lossy_decomposition_detected() {
        // R(A,B,C), A→B. {AB, BC} is lossy.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"])]);
        let u = &fds.universe;
        assert!(!chase_decomposition(
            &[u.set(&["A", "B"]), u.set(&["B", "C"])],
            &fds
        ));
    }

    #[test]
    fn three_way_lossless() {
        // A→B, B→C: {AB, BC} is lossless (B→C makes the join on B safe).
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        let u = &fds.universe;
        assert!(chase_decomposition(
            &[u.set(&["A", "B"]), u.set(&["B", "C"])],
            &fds
        ));
        // And splitting further: {AB, BC, AC} still lossless.
        assert!(chase_decomposition(
            &[u.set(&["A", "B"]), u.set(&["B", "C"]), u.set(&["A", "C"])],
            &fds
        ));
    }

    #[test]
    fn no_fds_only_trivial_decomposition_lossless() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[]);
        let u = &fds.universe;
        assert!(!chase_decomposition(
            &[u.set(&["A", "B"]), u.set(&["B", "C"])],
            &fds
        ));
        // A schema covering all attributes is trivially lossless.
        assert!(chase_decomposition(&[u.all()], &fds));
    }

    #[test]
    fn mvd_rule_adds_rows() {
        // R(A,B,C) with A↠B: {AB, AC} is lossless under the MVD.
        let fds = FdSet::from_named(&["A", "B", "C"], &[]);
        let u = fds.universe.clone();
        let mvd = Mvd {
            lhs: u.set(&["A"]),
            rhs: u.set(&["B"]),
        };
        let mut t = Tableau::for_decomposition(3, &[u.set(&["A", "B"]), u.set(&["A", "C"])]);
        t.chase(&fds, &[mvd]);
        assert!(t.has_distinguished_row());
    }

    #[test]
    fn tableau_display_shows_rows() {
        let fds = FdSet::from_named(&["A", "B"], &[]);
        let t = Tableau::for_decomposition(2, &[fds.universe.set(&["A"])]);
        let s = t.to_string();
        assert!(s.contains("a0"));
        assert!(s.contains("b0"));
    }
}
