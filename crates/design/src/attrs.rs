//! Attribute universes and bitset attribute sets.
//!
//! Dependency theory manipulates *sets of attributes* constantly (closures,
//! keys, decompositions), so attributes are interned into a [`Universe`] of
//! at most 64 names and sets are single-word bitsets — the same trick every
//! serious design tool uses.

use std::fmt;

/// A set of attributes, as a bitset over a [`Universe`] of ≤ 64 attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(pub u64);

impl AttrSet {
    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Singleton set of attribute index `i`.
    pub fn single(i: usize) -> AttrSet {
        debug_assert!(i < 64);
        AttrSet(1 << i)
    }

    /// Set from attribute indices.
    pub fn from_indices(indices: &[usize]) -> AttrSet {
        indices
            .iter()
            .fold(AttrSet::EMPTY, |s, &i| s.union(AttrSet::single(i)))
    }

    /// Union.
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference.
    pub fn minus(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Does the set contain attribute `i`?
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Is `self ⊂ other` (strict)?
    pub fn is_proper_subset(self, other: AttrSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of attributes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate member indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

/// An ordered list of attribute names that attribute sets index into.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Universe {
    names: Vec<String>,
}

impl Universe {
    /// Build a universe from names (≤ 64, unique).
    pub fn new(names: &[&str]) -> Universe {
        assert!(names.len() <= 64, "at most 64 attributes supported");
        let owned: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        for (i, n) in owned.iter().enumerate() {
            assert!(!owned[..i].contains(n), "duplicate attribute name `{n}`");
        }
        Universe { names: owned }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the universe has no attributes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The set of *all* attributes.
    pub fn all(&self) -> AttrSet {
        if self.names.len() == 64 {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << self.names.len()) - 1)
        }
    }

    /// Index of a named attribute.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Name of attribute `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Build an [`AttrSet`] from names, panicking on unknown names (design
    /// inputs are programmer-supplied).
    pub fn set(&self, names: &[&str]) -> AttrSet {
        names.iter().fold(AttrSet::EMPTY, |s, n| {
            let i = self
                .index_of(n)
                .unwrap_or_else(|| panic!("unknown attribute `{n}`"));
            s.union(AttrSet::single(i))
        })
    }

    /// Render a set as its attribute names, e.g. `{A, B}`.
    pub fn render(&self, set: AttrSet) -> String {
        let names: Vec<&str> = set.iter().map(|i| self.name(i)).collect();
        format!("{{{}}}", names.join(""))
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let a = AttrSet::from_indices(&[0, 2]);
        let b = AttrSet::from_indices(&[1, 2]);
        assert_eq!(a.union(b), AttrSet::from_indices(&[0, 1, 2]));
        assert_eq!(a.intersect(b), AttrSet::single(2));
        assert_eq!(a.minus(b), AttrSet::single(0));
        assert!(a.contains(0) && !a.contains(1));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn subset_relations() {
        let a = AttrSet::from_indices(&[0]);
        let ab = AttrSet::from_indices(&[0, 1]);
        assert!(a.is_subset(ab));
        assert!(a.is_proper_subset(ab));
        assert!(ab.is_subset(ab));
        assert!(!ab.is_proper_subset(ab));
        assert!(AttrSet::EMPTY.is_subset(a));
    }

    #[test]
    fn iteration_is_ascending() {
        let s = AttrSet::from_indices(&[5, 1, 3]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn universe_lookup_and_all() {
        let u = Universe::new(&["A", "B", "C"]);
        assert_eq!(u.len(), 3);
        assert_eq!(u.index_of("B"), Some(1));
        assert_eq!(u.all(), AttrSet::from_indices(&[0, 1, 2]));
        assert_eq!(u.set(&["A", "C"]), AttrSet::from_indices(&[0, 2]));
        assert_eq!(u.render(u.set(&["A", "C"])), "{AC}");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_panic() {
        Universe::new(&["A", "A"]);
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn unknown_name_panics() {
        Universe::new(&["A"]).set(&["Z"]);
    }
}
