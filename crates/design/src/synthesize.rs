//! 3NF synthesis — lossless *and* dependency-preserving, the guarantee BCNF
//! decomposition cannot always give, and the algorithm at the heart of the
//! "more than twenty database design tools" the paper credits ([BCN]).

use crate::attrs::AttrSet;
use crate::cover::minimal_cover;
use crate::fd::FdSet;
use crate::keys::candidate_keys;

/// Synthesize a 3NF decomposition: one sub-schema per (grouped) FD of a
/// minimal cover, plus a key schema if none embeds a candidate key, with
/// subsumed schemas removed.
pub fn synthesize_3nf(fds: &FdSet) -> Vec<AttrSet> {
    let cover = minimal_cover(fds);

    // Group cover FDs by determinant: X → {all attributes it determines}.
    let mut groups: Vec<(AttrSet, AttrSet)> = Vec::new();
    for fd in &cover.fds {
        match groups.iter_mut().find(|(lhs, _)| *lhs == fd.lhs) {
            Some((_, rhs)) => *rhs = rhs.union(fd.rhs),
            None => groups.push((fd.lhs, fd.rhs)),
        }
    }
    let mut schemas: Vec<AttrSet> = groups.iter().map(|(lhs, rhs)| lhs.union(*rhs)).collect();

    // Ensure some schema contains a candidate key of the whole relation.
    let keys = candidate_keys(fds);
    if !keys.iter().any(|k| schemas.iter().any(|s| k.is_subset(*s))) {
        schemas.push(keys[0]);
    }

    // Attributes in no FD at all must still be stored somewhere: they are
    // part of every key, so the key schema covers them; but when the cover
    // is empty the key schema IS the whole relation.
    let covered = schemas.iter().copied().fold(AttrSet::EMPTY, AttrSet::union);
    let uncovered = fds.universe.all().minus(covered);
    if !uncovered.is_empty() {
        schemas.push(uncovered.union(keys[0]));
    }

    // Remove schemas contained in others.
    schemas.sort();
    schemas.dedup();
    let snapshot = schemas.clone();
    schemas.retain(|s| !snapshot.iter().any(|o| s.is_proper_subset(*o)));
    schemas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase_decomposition;
    use crate::closure::equivalent;
    use crate::fd::Fd;
    use crate::nf::is_3nf;

    /// Check the three guarantees: 3NF sub-schemas, losslessness, and
    /// dependency preservation.
    fn assert_good_synthesis(fds: &FdSet) {
        let schemas = synthesize_3nf(fds);

        // Every sub-schema (with its projected FDs) is in 3NF.
        for s in &schemas {
            let proj = fds.project(*s);
            assert!(
                is_3nf(&proj),
                "{} not 3NF (fds {proj})",
                fds.universe.render(*s)
            );
        }

        // Lossless join.
        assert!(
            chase_decomposition(&schemas, fds),
            "synthesis must be lossless"
        );

        // Dependency preservation: union of projections ≡ original.
        let mut union = FdSet::new(fds.universe.clone());
        for s in &schemas {
            let proj = fds.project(*s);
            // Re-map projected FDs back into the global universe.
            let members: Vec<usize> = s.iter().collect();
            for fd in proj.fds {
                let remap = |set: AttrSet| {
                    set.iter()
                        .map(|j| AttrSet::single(members[j]))
                        .fold(AttrSet::EMPTY, AttrSet::union)
                };
                union.push(Fd::new(remap(fd.lhs), remap(fd.rhs)));
            }
        }
        assert!(
            equivalent(fds, &union),
            "dependency preservation failed: {union} vs {fds}"
        );
    }

    #[test]
    fn chain_synthesis() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        assert_good_synthesis(&fds);
        let schemas = synthesize_3nf(&fds);
        assert_eq!(schemas.len(), 2); // {AB}, {BC}
    }

    #[test]
    fn key_schema_added_when_missing() {
        // B→C over {A,B,C}: key is {A,B}; FD schema {BC} lacks it.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["B"], &["C"])]);
        assert_good_synthesis(&fds);
        let schemas = synthesize_3nf(&fds);
        let u = &fds.universe;
        assert!(
            schemas.contains(&u.set(&["A", "B"])),
            "key schema present: {schemas:?}"
        );
    }

    #[test]
    fn no_fds_yields_whole_relation() {
        let fds = FdSet::from_named(&["A", "B"], &[]);
        let schemas = synthesize_3nf(&fds);
        assert_eq!(schemas, vec![fds.universe.all()]);
    }

    #[test]
    fn textbook_example() {
        // City/street/zip: CS→Z, Z→C.
        let fds = FdSet::from_named(&["C", "S", "Z"], &[(&["C", "S"], &["Z"]), (&["Z"], &["C"])]);
        assert_good_synthesis(&fds);
        // BCNF is impossible dependency-preservingly here; 3NF keeps CSZ.
        let schemas = synthesize_3nf(&fds);
        assert!(schemas.contains(&fds.universe.all()) || schemas.len() >= 2);
    }

    #[test]
    fn larger_schema_synthesis() {
        let fds = FdSet::from_named(
            &["A", "B", "C", "D", "E", "F"],
            &[
                (&["A"], &["B", "C"]),
                (&["C"], &["D"]),
                (&["D", "E"], &["F"]),
            ],
        );
        assert_good_synthesis(&fds);
    }

    #[test]
    fn duplicate_groups_merge() {
        // A→B and A→C group into one {A,B,C} schema.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["A"], &["C"])]);
        let schemas = synthesize_3nf(&fds);
        assert_eq!(schemas, vec![fds.universe.all()]);
    }
}
