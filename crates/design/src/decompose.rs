//! BCNF decomposition.
//!
//! The classical recursive algorithm: while some sub-schema has a violating
//! dependency `X → Y` (X not a superkey of the sub-schema), split it into
//! `X ∪ (X⁺ ∩ R)` and `X ∪ (R − X⁺)`. Every split is lossless (it joins on
//! a key of one side), so the final decomposition is lossless — the tests
//! confirm this with the chase.

use crate::attrs::AttrSet;
use crate::closure::attr_closure;
use crate::fd::FdSet;

/// Is sub-schema `rel` in BCNF under the (global) FDs? Checks every subset
/// `X ⊂ rel`: either `X⁺ ∩ rel = X` (nothing new) or `rel ⊆ X⁺` (superkey).
pub fn subschema_is_bcnf(rel: AttrSet, fds: &FdSet) -> bool {
    bcnf_violation_in(rel, fds).is_none()
}

/// Find a BCNF violation `X → (X⁺ ∩ rel − X)` inside `rel`, if any.
/// Exponential in `|rel|`, as implied-FD discovery inherently is.
pub fn bcnf_violation_in(rel: AttrSet, fds: &FdSet) -> Option<(AttrSet, AttrSet)> {
    let members: Vec<usize> = rel.iter().collect();
    let n = members.len();
    // Proper nonempty subsets of rel, smallest first (prefer small LHS).
    let mut masks: Vec<u64> = (1..(1u64 << n) - 1).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        let mut x = AttrSet::EMPTY;
        for (j, &m) in members.iter().enumerate() {
            if mask & (1 << j) != 0 {
                x = x.union(AttrSet::single(m));
            }
        }
        let closure = attr_closure(x, fds);
        let gained = closure.intersect(rel).minus(x);
        if !gained.is_empty() && !rel.is_subset(closure) {
            return Some((x, gained));
        }
    }
    None
}

/// Decompose the full universe into BCNF sub-schemas; lossless by
/// construction.
pub fn bcnf_decompose(fds: &FdSet) -> Vec<AttrSet> {
    let mut result = Vec::new();
    let mut work = vec![fds.universe.all()];
    while let Some(rel) = work.pop() {
        match bcnf_violation_in(rel, fds) {
            None => result.push(rel),
            Some((x, _)) => {
                let closure = attr_closure(x, fds);
                let r1 = x.union(closure.intersect(rel));
                let r2 = x.union(rel.minus(closure));
                debug_assert!(r1.union(r2) == rel);
                work.push(r1);
                work.push(r2);
            }
        }
    }
    result.sort();
    result.dedup();
    // Drop sub-schemas contained in others.
    let snapshot = result.clone();
    result.retain(|r| !snapshot.iter().any(|o| r.is_proper_subset(*o)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase_decomposition;

    #[test]
    fn already_bcnf_stays_whole() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B", "C"])]);
        let d = bcnf_decompose(&fds);
        assert_eq!(d, vec![fds.universe.all()]);
    }

    #[test]
    fn transitive_chain_splits() {
        // A→B, B→C: classic split into {A,B} (or {A,C}) and {B,C}.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        let d = bcnf_decompose(&fds);
        assert!(d.len() >= 2);
        for r in &d {
            assert!(
                subschema_is_bcnf(*r, &fds),
                "sub-schema {} not BCNF",
                fds.universe.render(*r)
            );
        }
        assert!(
            chase_decomposition(&d, &fds),
            "decomposition must be lossless"
        );
    }

    #[test]
    fn address_example_loses_bcnf_violation() {
        // AB→C, C→A (3NF but not BCNF): decomposition splits on C→A.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A", "B"], &["C"]), (&["C"], &["A"])]);
        let d = bcnf_decompose(&fds);
        for r in &d {
            assert!(subschema_is_bcnf(*r, &fds));
        }
        assert!(chase_decomposition(&d, &fds));
    }

    #[test]
    fn decomposition_covers_all_attributes() {
        let fds = FdSet::from_named(
            &["A", "B", "C", "D", "E"],
            &[(&["A"], &["B"]), (&["B", "C"], &["D"]), (&["D"], &["E"])],
        );
        let d = bcnf_decompose(&fds);
        let covered = d.iter().copied().fold(AttrSet::EMPTY, AttrSet::union);
        assert_eq!(covered, fds.universe.all());
        for r in &d {
            assert!(subschema_is_bcnf(*r, &fds));
        }
        assert!(chase_decomposition(&d, &fds));
    }

    #[test]
    fn violation_reports_small_lhs() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"])]);
        let (x, gained) = bcnf_violation_in(fds.universe.all(), &fds).unwrap();
        assert_eq!(x, fds.universe.set(&["A"]));
        assert_eq!(gained, fds.universe.set(&["B"]));
    }

    #[test]
    fn no_fds_is_vacuously_bcnf() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[]);
        assert!(subschema_is_bcnf(fds.universe.all(), &fds));
        assert_eq!(bcnf_decompose(&fds), vec![fds.universe.all()]);
    }
}
