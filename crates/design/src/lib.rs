//! # bq-design
//!
//! Dependency theory and normalization — the first dominant PODS research
//! tradition ("relational theory, including … dependencies, normalization,
//! views, … acyclicity", §6) and the one the paper credits with reaching
//! practice "in the form of database design tools" ([BCN] counts more than
//! twenty that normalize).
//!
//! * [`attrs`] — attribute universes and bitset attribute sets.
//! * [`fd`] — functional dependencies and FD sets.
//! * [`closure`] — attribute closure, implication, FD-set equivalence
//!   (Armstrong's axioms, operationally).
//! * [`cover`] — minimal (canonical) covers.
//! * [`keys`] — candidate keys and prime attributes.
//! * [`nf`] — 2NF / 3NF / BCNF tests and violation reporting.
//! * [`decompose`] — BCNF decomposition with lossless-join guarantee.
//! * [`synthesize`] — the 3NF synthesis algorithm (lossless, dependency
//!   preserving).
//! * [`mvd`] — multivalued dependencies.
//! * [`chase`] — the tableau chase, for lossless-join tests and FD/MVD
//!   implication.
//! * [`hypergraph`] — schema hypergraphs and GYO acyclicity (§6 lists
//!   acyclicity among relational theory's subjects).

pub mod attrs;
pub mod chase;
pub mod closure;
pub mod cover;
pub mod decompose;
pub mod fd;
pub mod fourthnf;
pub mod hypergraph;
pub mod keys;
pub mod mvd;
pub mod nf;
pub mod synthesize;

pub use attrs::{AttrSet, Universe};
pub use chase::{chase_decomposition, Tableau};
pub use closure::{attr_closure, equivalent, implies};
pub use cover::minimal_cover;
pub use decompose::bcnf_decompose;
pub use fd::{Fd, FdSet};
pub use fourthnf::{fourthnf_decompose, is_4nf};
pub use hypergraph::Hypergraph;
pub use keys::{candidate_keys, is_superkey, prime_attrs};
pub use mvd::Mvd;
pub use nf::{is_2nf, is_3nf, is_bcnf, NormalForm};
pub use synthesize::synthesize_3nf;
