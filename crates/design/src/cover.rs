//! Minimal (canonical) covers of FD sets.
//!
//! A minimal cover has singleton right-hand sides, no extraneous left-hand
//! attributes, and no redundant dependencies — the normal form every design
//! tool computes before synthesis.

use crate::attrs::AttrSet;
use crate::closure::{attr_closure, implies};
use crate::fd::{Fd, FdSet};

/// Compute a minimal cover of `fds`.
pub fn minimal_cover(fds: &FdSet) -> FdSet {
    // 1. Singleton right-hand sides, dropping trivial FDs.
    let mut work: Vec<Fd> = fds
        .fds
        .iter()
        .flat_map(Fd::split_rhs)
        .filter(|fd| !fd.is_trivial())
        .collect();

    // 2. Remove extraneous LHS attributes: A is extraneous in X→Y if
    //    Y ⊆ (X−A)⁺.
    let as_set = |v: &[Fd]| FdSet {
        universe: fds.universe.clone(),
        fds: v.to_vec(),
    };
    let mut i = 0;
    while i < work.len() {
        let mut fd = work[i];
        let mut changed = true;
        while changed && fd.lhs.len() > 1 {
            changed = false;
            for a in fd.lhs.iter() {
                let reduced = fd.lhs.minus(AttrSet::single(a));
                let whole = as_set(&work);
                if fd.rhs.is_subset(attr_closure(reduced, &whole)) {
                    fd.lhs = reduced;
                    work[i] = fd;
                    changed = true;
                    break;
                }
            }
        }
        i += 1;
    }

    // 3. Remove redundant FDs: drop fd if the rest implies it.
    let mut i = 0;
    while i < work.len() {
        let fd = work[i];
        let mut rest = work.clone();
        rest.remove(i);
        if implies(&as_set(&rest), &fd) {
            work.remove(i);
        } else {
            i += 1;
        }
    }

    // Deduplicate (splitting can create duplicates).
    work.sort();
    work.dedup();
    FdSet {
        universe: fds.universe.clone(),
        fds: work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::equivalent;

    #[test]
    fn cover_is_equivalent_and_singleton_rhs() {
        let fds = FdSet::from_named(
            &["A", "B", "C", "D"],
            &[
                (&["A"], &["B", "C"]),
                (&["B"], &["C"]),
                (&["A", "B"], &["C", "D"]), // AB→C redundant, AB→D reducible? A→BC so A→D
            ],
        );
        let cover = minimal_cover(&fds);
        assert!(equivalent(&fds, &cover), "cover {cover} vs original {fds}");
        assert!(cover.fds.iter().all(|fd| fd.rhs.len() == 1));
    }

    #[test]
    fn redundant_transitive_fd_removed() {
        // {A→B, B→C, A→C}: A→C is redundant.
        let fds = FdSet::from_named(
            &["A", "B", "C"],
            &[(&["A"], &["B"]), (&["B"], &["C"]), (&["A"], &["C"])],
        );
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 2, "cover: {cover}");
        assert!(equivalent(&fds, &cover));
    }

    #[test]
    fn extraneous_lhs_attribute_removed() {
        // {A→B, AB→C}: B is extraneous in AB→C (since A→B), leaving A→C.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["A", "B"], &["C"])]);
        let cover = minimal_cover(&fds);
        assert!(equivalent(&fds, &cover));
        let u = &cover.universe;
        assert!(
            cover.fds.iter().all(|fd| fd.lhs == u.set(&["A"])),
            "all determinants reduce to A: {cover}"
        );
    }

    #[test]
    fn trivial_fds_vanish() {
        let fds = FdSet::from_named(&["A", "B"], &[(&["A", "B"], &["A"])]);
        let cover = minimal_cover(&fds);
        assert!(cover.is_empty());
    }

    #[test]
    fn cover_is_idempotent() {
        let fds = FdSet::from_named(
            &["A", "B", "C", "D", "E"],
            &[
                (&["A"], &["B", "C"]),
                (&["C", "D"], &["E"]),
                (&["B"], &["D"]),
                (&["E"], &["A"]),
            ],
        );
        let once = minimal_cover(&fds);
        let twice = minimal_cover(&once);
        assert!(equivalent(&once, &twice));
        assert_eq!(once.len(), twice.len());
    }
}
