//! Schema hypergraphs and GYO acyclicity.
//!
//! Acyclicity is explicitly on the paper's list of relational theory's
//! subjects (§6). A database schema is a hypergraph whose vertices are
//! attributes and whose hyperedges are relation schemas; the GYO (Graham /
//! Yu–Özsoyoğlu) reduction decides α-acyclicity: repeatedly delete *ear*
//! vertices (appearing in at most one edge) and edges contained in other
//! edges; the schema is acyclic iff everything vanishes.

use crate::attrs::{AttrSet, Universe};

/// A hypergraph over an attribute universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    /// Attribute universe.
    pub universe: Universe,
    /// Hyperedges (relation schemas).
    pub edges: Vec<AttrSet>,
}

/// One step of the GYO trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GyoStep {
    /// A vertex appearing in at most one edge was removed.
    RemovedVertex(usize),
    /// An edge contained in another was removed.
    RemovedEdge(AttrSet),
}

impl Hypergraph {
    /// Build from named attribute lists.
    pub fn from_named(names: &[&str], edges: &[&[&str]]) -> Hypergraph {
        let universe = Universe::new(names);
        let edges = edges.iter().map(|e| universe.set(e)).collect();
        Hypergraph { universe, edges }
    }

    /// Run the GYO reduction; return the trace and the residual edges.
    pub fn gyo(&self) -> (Vec<GyoStep>, Vec<AttrSet>) {
        let mut edges: Vec<AttrSet> = self.edges.clone();
        let mut trace = Vec::new();
        loop {
            let mut changed = false;

            // Rule 1: remove vertices occurring in at most one edge.
            for v in 0..self.universe.len() {
                let occurrences = edges.iter().filter(|e| e.contains(v)).count();
                if occurrences == 1 {
                    for e in edges.iter_mut() {
                        if e.contains(v) {
                            *e = e.minus(AttrSet::single(v));
                        }
                    }
                    trace.push(GyoStep::RemovedVertex(v));
                    changed = true;
                }
            }

            // Rule 2: remove empty edges and edges contained in another.
            let mut i = 0;
            while i < edges.len() {
                let e = edges[i];
                let absorbed = e.is_empty()
                    || edges
                        .iter()
                        .enumerate()
                        .any(|(j, o)| j != i && e.is_subset(*o));
                if absorbed {
                    trace.push(GyoStep::RemovedEdge(e));
                    edges.remove(i);
                    changed = true;
                } else {
                    i += 1;
                }
            }

            if !changed {
                return (trace, edges);
            }
        }
    }

    /// Is the hypergraph α-acyclic (GYO reduces it to nothing)?
    pub fn is_acyclic(&self) -> bool {
        self.gyo().1.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_schema_is_acyclic() {
        // R(A,B), S(B,C), T(C,D): a path — acyclic.
        let h = Hypergraph::from_named(
            &["A", "B", "C", "D"],
            &[&["A", "B"], &["B", "C"], &["C", "D"]],
        );
        assert!(h.is_acyclic());
    }

    #[test]
    fn triangle_is_cyclic() {
        // R(A,B), S(B,C), T(A,C): the classic cyclic triangle.
        let h = Hypergraph::from_named(&["A", "B", "C"], &[&["A", "B"], &["B", "C"], &["A", "C"]]);
        assert!(!h.is_acyclic());
        let (_, residue) = h.gyo();
        assert_eq!(residue.len(), 3, "triangle is fully irreducible");
    }

    #[test]
    fn triangle_with_covering_edge_is_acyclic() {
        // Adding ABC absorbs the triangle: acyclic.
        let h = Hypergraph::from_named(
            &["A", "B", "C"],
            &[&["A", "B"], &["B", "C"], &["A", "C"], &["A", "B", "C"]],
        );
        assert!(h.is_acyclic());
    }

    #[test]
    fn star_schema_is_acyclic() {
        let h = Hypergraph::from_named(
            &["F", "A", "B", "C"],
            &[&["F", "A"], &["F", "B"], &["F", "C"]],
        );
        assert!(h.is_acyclic());
    }

    #[test]
    fn single_edge_is_acyclic() {
        let h = Hypergraph::from_named(&["A", "B"], &[&["A", "B"]]);
        assert!(h.is_acyclic());
    }

    #[test]
    fn gyo_trace_records_steps() {
        let h = Hypergraph::from_named(&["A", "B", "C"], &[&["A", "B"], &["B", "C"]]);
        let (trace, residue) = h.gyo();
        assert!(residue.is_empty());
        assert!(trace.iter().any(|s| matches!(s, GyoStep::RemovedVertex(_))));
        assert!(trace.iter().any(|s| matches!(s, GyoStep::RemovedEdge(_))));
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let h = Hypergraph::from_named(
            &["A", "B", "C", "D"],
            &[&["A", "B"], &["B", "C"], &["C", "D"], &["D", "A"]],
        );
        assert!(!h.is_acyclic());
    }
}
