//! Attribute closure and FD implication — Armstrong's axioms, operationally.
//!
//! `attr_closure(X, F)` computes `X⁺` under `F` by the standard fixpoint:
//! the set of attributes reachable from `X` by repeatedly firing FDs whose
//! left-hand side is covered. Soundness and completeness of this procedure
//! with respect to Armstrong's axioms is the first theorem of dependency
//! theory; the property tests below check its characteristic laws
//! (extensivity, monotonicity, idempotence).

use crate::attrs::AttrSet;
use crate::fd::{Fd, FdSet};

/// Compute the closure `X⁺` of `attrs` under `fds`.
pub fn attr_closure(attrs: AttrSet, fds: &FdSet) -> AttrSet {
    let mut closure = attrs;
    loop {
        let mut changed = false;
        for fd in &fds.fds {
            if fd.lhs.is_subset(closure) && !fd.rhs.is_subset(closure) {
                closure = closure.union(fd.rhs);
                changed = true;
            }
        }
        if !changed {
            return closure;
        }
    }
}

/// Does `fds ⊨ fd` (implication)? Holds iff `rhs ⊆ lhs⁺`.
pub fn implies(fds: &FdSet, fd: &Fd) -> bool {
    fd.rhs.is_subset(attr_closure(fd.lhs, fds))
}

/// Are two FD sets equivalent (each implies every FD of the other)?
/// The universes must agree.
pub fn equivalent(f: &FdSet, g: &FdSet) -> bool {
    f.universe == g.universe
        && f.fds.iter().all(|fd| implies(g, fd))
        && g.fds.iter().all(|fd| implies(f, fd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Universe;

    fn classic() -> FdSet {
        // A→B, B→C, CD→E over ABCDE.
        FdSet::from_named(
            &["A", "B", "C", "D", "E"],
            &[(&["A"], &["B"]), (&["B"], &["C"]), (&["C", "D"], &["E"])],
        )
    }

    #[test]
    fn closure_chains_fds() {
        let fds = classic();
        let u = &fds.universe;
        assert_eq!(attr_closure(u.set(&["A"]), &fds), u.set(&["A", "B", "C"]));
        assert_eq!(attr_closure(u.set(&["A", "D"]), &fds), u.all());
        assert_eq!(attr_closure(u.set(&["D"]), &fds), u.set(&["D"]));
    }

    #[test]
    fn closure_laws() {
        let fds = classic();
        let u = &fds.universe;
        for names in [&["A"][..], &["B", "D"], &["C"], &["A", "D"]] {
            let x = u.set(names);
            let cx = attr_closure(x, &fds);
            // extensive
            assert!(x.is_subset(cx));
            // idempotent
            assert_eq!(attr_closure(cx, &fds), cx);
        }
        // monotone
        let a = attr_closure(u.set(&["A"]), &fds);
        let ad = attr_closure(u.set(&["A", "D"]), &fds);
        assert!(a.is_subset(ad));
    }

    #[test]
    fn implication() {
        let fds = classic();
        let u = &fds.universe;
        // transitivity: A→C
        assert!(implies(&fds, &Fd::new(u.set(&["A"]), u.set(&["C"]))));
        // augmentation: AD→E
        assert!(implies(&fds, &Fd::new(u.set(&["A", "D"]), u.set(&["E"]))));
        // not implied: A→D
        assert!(!implies(&fds, &Fd::new(u.set(&["A"]), u.set(&["D"]))));
        // reflexivity: AB→A
        assert!(implies(&fds, &Fd::new(u.set(&["A", "B"]), u.set(&["A"]))));
    }

    #[test]
    fn equivalence_of_covers() {
        // {A→BC} ≡ {A→B, A→C}.
        let f = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B", "C"])]);
        let g = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["A"], &["C"])]);
        assert!(equivalent(&f, &g));
        let h = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"])]);
        assert!(!equivalent(&f, &h));
    }

    #[test]
    fn empty_fd_set_closure_is_identity() {
        let fds = FdSet::new(Universe::new(&["A", "B"]));
        let x = fds.universe.set(&["A"]);
        assert_eq!(attr_closure(x, &fds), x);
    }
}
