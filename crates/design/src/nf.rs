//! Normal-form tests: 2NF, 3NF, BCNF — with violation reporting.
//!
//! "The need and importance of normalization in relational databases, and
//! the role played by dependencies in it, were amply predicted" (§2c).

use crate::attrs::AttrSet;
use crate::fd::{Fd, FdSet};
use crate::keys::{candidate_keys, is_superkey, prime_attrs};

/// The highest normal form a schema satisfies (of the ones we test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NormalForm {
    /// First normal form only (violates 2NF).
    First,
    /// Second normal form (violates 3NF).
    Second,
    /// Third normal form (violates BCNF).
    Third,
    /// Boyce–Codd normal form.
    BoyceCodd,
}

impl std::fmt::Display for NormalForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalForm::First => write!(f, "1NF"),
            NormalForm::Second => write!(f, "2NF"),
            NormalForm::Third => write!(f, "3NF"),
            NormalForm::BoyceCodd => write!(f, "BCNF"),
        }
    }
}

/// Is the schema in BCNF? Every nontrivial implied FD (we check the given
/// ones, which suffices) has a superkey determinant.
pub fn is_bcnf(fds: &FdSet) -> bool {
    bcnf_violation(fds).is_none()
}

/// A witness FD violating BCNF, if any.
pub fn bcnf_violation(fds: &FdSet) -> Option<Fd> {
    fds.fds
        .iter()
        .find(|fd| !fd.is_trivial() && !is_superkey(fd.lhs, fds))
        .copied()
}

/// Is the schema in 3NF? Every nontrivial FD has a superkey determinant or
/// every RHS attribute outside the LHS is prime.
pub fn is_3nf(fds: &FdSet) -> bool {
    threenf_violation(fds).is_none()
}

/// A witness FD violating 3NF, if any.
pub fn threenf_violation(fds: &FdSet) -> Option<Fd> {
    let prime = prime_attrs(fds);
    fds.fds.iter().copied().find(|fd| {
        if fd.is_trivial() || is_superkey(fd.lhs, fds) {
            return false;
        }
        !fd.rhs.minus(fd.lhs).is_subset(prime)
    })
}

/// Is the schema in 2NF? No non-prime attribute depends on a *proper
/// subset* of a candidate key.
pub fn is_2nf(fds: &FdSet) -> bool {
    let keys = candidate_keys(fds);
    let prime = keys.iter().copied().fold(AttrSet::EMPTY, AttrSet::union);
    for fd in &fds.fds {
        if fd.is_trivial() {
            continue;
        }
        let nonprime_rhs = fd.rhs.minus(fd.lhs).minus(prime);
        if nonprime_rhs.is_empty() {
            continue;
        }
        if keys.iter().any(|k| fd.lhs.is_proper_subset(*k)) {
            return false;
        }
    }
    true
}

/// Classify the highest satisfied normal form.
pub fn classify(fds: &FdSet) -> NormalForm {
    if is_bcnf(fds) {
        NormalForm::BoyceCodd
    } else if is_3nf(fds) {
        NormalForm::Third
    } else if is_2nf(fds) {
        NormalForm::Second
    } else {
        NormalForm::First
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcnf_schema() {
        // Key A determines everything: BCNF.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B", "C"])]);
        assert_eq!(classify(&fds), NormalForm::BoyceCodd);
        assert!(is_3nf(&fds) && is_2nf(&fds));
    }

    #[test]
    fn third_but_not_bcnf() {
        // Classic address example: AB→C, C→A. Keys AB, BC; C→A violates
        // BCNF (C not superkey) but A is prime → 3NF.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A", "B"], &["C"]), (&["C"], &["A"])]);
        assert!(!is_bcnf(&fds));
        assert!(is_3nf(&fds));
        assert_eq!(classify(&fds), NormalForm::Third);
        let v = bcnf_violation(&fds).unwrap();
        assert_eq!(v.lhs, fds.universe.set(&["C"]));
    }

    #[test]
    fn second_but_not_third() {
        // A→B, B→C with key A: transitive dependency B→C violates 3NF
        // (B not superkey, C not prime) but not 2NF (B is not part of a key).
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        assert!(!is_3nf(&fds));
        assert!(is_2nf(&fds));
        assert_eq!(classify(&fds), NormalForm::Second);
        let v = threenf_violation(&fds).unwrap();
        assert_eq!(v.lhs, fds.universe.set(&["B"]));
    }

    #[test]
    fn first_but_not_second() {
        // Key AB; A→C is a partial dependency of non-prime C.
        let fds = FdSet::from_named(
            &["A", "B", "C", "D"],
            &[(&["A", "B"], &["D"]), (&["A"], &["C"])],
        );
        assert!(!is_2nf(&fds));
        assert_eq!(classify(&fds), NormalForm::First);
    }

    #[test]
    fn trivial_fds_never_violate() {
        let fds = FdSet::from_named(&["A", "B"], &[(&["A", "B"], &["A"])]);
        assert_eq!(classify(&fds), NormalForm::BoyceCodd);
    }

    #[test]
    fn no_fds_is_bcnf() {
        let fds = FdSet::from_named(&["A", "B"], &[]);
        assert_eq!(classify(&fds), NormalForm::BoyceCodd);
    }

    #[test]
    fn normal_forms_are_ordered() {
        assert!(NormalForm::First < NormalForm::Second);
        assert!(NormalForm::Second < NormalForm::Third);
        assert!(NormalForm::Third < NormalForm::BoyceCodd);
        assert_eq!(NormalForm::Third.to_string(), "3NF");
    }
}
