//! Multivalued dependencies.
//!
//! MVDs are the dependencies behind fourth normal form and the "non-flat
//! data" discussions the paper traces through PODS history. Implication for
//! mixed FD+MVD sets is decided by the chase.

use crate::attrs::AttrSet;
use crate::chase::Tableau;
use crate::fd::{Fd, FdSet};

/// A multivalued dependency `X ↠ Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mvd {
    /// Determinant.
    pub lhs: AttrSet,
    /// Multi-determined set.
    pub rhs: AttrSet,
}

impl Mvd {
    /// Build an MVD.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Mvd {
        Mvd { lhs, rhs }
    }

    /// The complementary MVD `X ↠ (U − X − Y)` over universe `all`.
    pub fn complement(&self, all: AttrSet) -> Mvd {
        Mvd {
            lhs: self.lhs,
            rhs: all.minus(self.lhs).minus(self.rhs),
        }
    }

    /// Trivial if `Y ⊆ X` or `X ∪ Y = U`.
    pub fn is_trivial(&self, all: AttrSet) -> bool {
        self.rhs.is_subset(self.lhs) || self.lhs.union(self.rhs) == all
    }
}

/// Does `fds ∪ mvds ⊨ X ↠ Y`? Chase the classic two-row tableau and look
/// for the row carrying row 1's `X∪Y` values with row 2's complement values.
pub fn implies_mvd(fds: &FdSet, mvds: &[Mvd], target: &Mvd) -> bool {
    let all = fds.universe.all();
    let width = fds.universe.len();
    // Row 1 distinguished on X ∪ Y; row 2 distinguished on X ∪ (U−X−Y).
    let row1 = target.lhs.union(target.rhs);
    let row2 = target.lhs.union(all.minus(target.lhs).minus(target.rhs));
    let mut t = Tableau::for_implication(width, row1, row2);
    t.chase(fds, mvds);
    t.has_distinguished_row()
}

/// Does `fds ∪ mvds ⊨ X → Y`? Chase-based FD implication (every FD is also
/// an MVD, but FD implication needs symbol equality, which the chase's
/// distinguished-row test captures when Y's symbols become distinguished in
/// the row that starts distinguished on X ∪ (U−Y)).
pub fn implies_fd(fds: &FdSet, mvds: &[Mvd], target: &Fd) -> bool {
    if mvds.is_empty() {
        // Pure FD case: closure is exact and fast.
        return crate::closure::implies(fds, target);
    }
    let all = fds.universe.all();
    let width = fds.universe.len();
    // Two rows agreeing exactly on X; chase; the FD holds iff the rows'
    // Y-columns were forced equal.
    let row1 = all; // fully distinguished
    let row2 = target.lhs; // distinguished only on X
    let mut t = Tableau::for_implication(width, row1, row2);
    t.chase(fds, mvds);
    // The FD holds iff row 2's Y columns all became distinguished.
    t.has_row_distinguished_on(1, target.rhs)
}

impl Tableau {
    /// Is row `idx`'s symbol distinguished on every column of `cols`?
    /// (Rows may have been merged; we check all current rows that could
    /// descend from it — conservatively, any row distinguished on the
    /// original row-2 pattern.)
    pub fn has_row_distinguished_on(&self, idx: usize, cols: AttrSet) -> bool {
        // After chasing, the row order is stable (FD rules only rename
        // symbols; MVD rules append).
        if let Some(row) = self.row(idx) {
            cols.iter().all(|c| row[c] == crate::chase::Sym::D(c))
        } else {
            false
        }
    }

    /// Borrow a row.
    pub fn row(&self, idx: usize) -> Option<&[crate::chase::Sym]> {
        self.rows_slice().get(idx).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_rule() {
        let fds = FdSet::from_named(&["A", "B", "C", "D"], &[]);
        let u = &fds.universe;
        let mvd = Mvd::new(u.set(&["A"]), u.set(&["B"]));
        let comp = mvd.complement(u.all());
        assert_eq!(comp.rhs, u.set(&["C", "D"]));
        // An MVD always implies its complement.
        assert!(implies_mvd(&fds, &[mvd], &comp));
    }

    #[test]
    fn fd_is_an_mvd() {
        // A→B implies A↠B.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"])]);
        let u = &fds.universe;
        let target = Mvd::new(u.set(&["A"]), u.set(&["B"]));
        assert!(implies_mvd(&fds, &[], &target));
    }

    #[test]
    fn mvd_does_not_imply_fd() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[]);
        let u = &fds.universe;
        let mvd = Mvd::new(u.set(&["A"]), u.set(&["B"]));
        let fd = Fd::new(u.set(&["A"]), u.set(&["B"]));
        assert!(!implies_fd(&fds, &[mvd], &fd));
    }

    #[test]
    fn trivial_mvds() {
        let fds = FdSet::from_named(&["A", "B"], &[]);
        let u = &fds.universe;
        assert!(Mvd::new(u.set(&["A", "B"]), u.set(&["A"])).is_trivial(u.all()));
        assert!(Mvd::new(u.set(&["A"]), u.set(&["B"])).is_trivial(u.all()));
        let fds3 = FdSet::from_named(&["A", "B", "C"], &[]);
        let u3 = &fds3.universe;
        assert!(!Mvd::new(u3.set(&["A"]), u3.set(&["B"])).is_trivial(u3.all()));
    }

    #[test]
    fn unimplied_mvd_rejected() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[]);
        let u = &fds.universe;
        let target = Mvd::new(u.set(&["A"]), u.set(&["B"]));
        assert!(!implies_mvd(&fds, &[], &target));
    }

    #[test]
    fn mvd_transitivity_style_inference() {
        // A↠B and B→C: complementation + chase should still certify A↠B.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["B"], &["C"])]);
        let u = &fds.universe;
        let given = Mvd::new(u.set(&["A"]), u.set(&["B"]));
        assert!(implies_mvd(&fds, &[given], &given));
    }
}
