//! Candidate keys and prime attributes.

use crate::attrs::AttrSet;
use crate::closure::attr_closure;
use crate::fd::FdSet;

/// Is `attrs` a superkey of the relation (its closure covers everything)?
pub fn is_superkey(attrs: AttrSet, fds: &FdSet) -> bool {
    attr_closure(attrs, fds) == fds.universe.all()
}

/// All candidate keys: minimal attribute sets whose closure is the full
/// universe. Enumerates subsets in ascending size with superset pruning;
/// exponential in the worst case, as key finding inherently is, but fast
/// for design-tool-sized schemas.
pub fn candidate_keys(fds: &FdSet) -> Vec<AttrSet> {
    let n = fds.universe.len();
    let all = fds.universe.all();
    if n == 0 {
        return vec![AttrSet::EMPTY];
    }

    // Attributes that appear in no RHS must be in every key.
    let mut in_rhs = AttrSet::EMPTY;
    for fd in &fds.fds {
        in_rhs = in_rhs.union(fd.rhs.minus(fd.lhs));
    }
    let must = all.minus(in_rhs);

    if attr_closure(must, fds) == all {
        return vec![must];
    }

    // Candidate extension attributes: everything not already forced.
    let optional: Vec<usize> = all.minus(must).iter().collect();
    let mut keys: Vec<AttrSet> = Vec::new();
    // Enumerate subsets of `optional` in order of increasing size.
    for size in 1..=optional.len() {
        subsets_of_size(&optional, size, &mut |subset| {
            let cand = must.union(subset);
            if keys.iter().any(|k| k.is_subset(cand)) {
                return; // superset of a known key: not minimal
            }
            if attr_closure(cand, fds) == all {
                keys.push(cand);
            }
        });
        if !keys.is_empty() && size >= optional.len() {
            break;
        }
    }
    keys.sort();
    keys
}

fn subsets_of_size(items: &[usize], size: usize, f: &mut impl FnMut(AttrSet)) {
    fn rec(items: &[usize], size: usize, start: usize, acc: AttrSet, f: &mut impl FnMut(AttrSet)) {
        if size == 0 {
            f(acc);
            return;
        }
        for i in start..items.len() {
            if items.len() - i < size {
                break;
            }
            rec(
                items,
                size - 1,
                i + 1,
                acc.union(AttrSet::single(items[i])),
                f,
            );
        }
    }
    rec(items, size, 0, AttrSet::EMPTY, f);
}

/// The prime attributes: members of at least one candidate key.
pub fn prime_attrs(fds: &FdSet) -> AttrSet {
    candidate_keys(fds)
        .into_iter()
        .fold(AttrSet::EMPTY, AttrSet::union)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_chain() {
        // A→B, B→C: key is {A}.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        let keys = candidate_keys(&fds);
        assert_eq!(keys, vec![fds.universe.set(&["A"])]);
        assert!(is_superkey(fds.universe.set(&["A", "C"]), &fds));
        assert!(!is_superkey(fds.universe.set(&["B"]), &fds));
    }

    #[test]
    fn multiple_candidate_keys() {
        // Classic: AB→C, C→A over {A,B,C}: keys are AB and BC.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A", "B"], &["C"]), (&["C"], &["A"])]);
        let keys = candidate_keys(&fds);
        let u = &fds.universe;
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&u.set(&["A", "B"])));
        assert!(keys.contains(&u.set(&["B", "C"])));
        assert_eq!(prime_attrs(&fds), u.all());
    }

    #[test]
    fn no_fds_means_whole_relation_is_key() {
        let fds = FdSet::from_named(&["A", "B"], &[]);
        assert_eq!(candidate_keys(&fds), vec![fds.universe.all()]);
    }

    #[test]
    fn keys_are_minimal() {
        let fds = FdSet::from_named(
            &["A", "B", "C", "D"],
            &[(&["A"], &["B"]), (&["B"], &["C"]), (&["C"], &["D"])],
        );
        let keys = candidate_keys(&fds);
        assert_eq!(keys, vec![fds.universe.set(&["A"])]);
        // No key is a subset of another (minimality check in general).
        for (i, k1) in keys.iter().enumerate() {
            for (j, k2) in keys.iter().enumerate() {
                if i != j {
                    assert!(!k1.is_subset(*k2));
                }
            }
        }
    }

    #[test]
    fn cyclic_fds_yield_many_keys() {
        // A→B, B→C, C→A: every single attribute is a key.
        let fds = FdSet::from_named(
            &["A", "B", "C"],
            &[(&["A"], &["B"]), (&["B"], &["C"]), (&["C"], &["A"])],
        );
        let keys = candidate_keys(&fds);
        assert_eq!(keys.len(), 3);
        assert!(keys.iter().all(|k| k.len() == 1));
    }

    #[test]
    fn prime_attrs_for_chain() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B", "C"])]);
        assert_eq!(prime_attrs(&fds), fds.universe.set(&["A"]));
    }
}
