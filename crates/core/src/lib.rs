//! # bq-core
//!
//! The facade a downstream user adopts: a [`Db`] that ties the substrates
//! together — storage-backed tables ([`bq_storage`]), secondary B+-tree
//! indexes with point/range lookups, SQL-ish / algebra / calculus
//! querying ([`bq_relational`]), recursive queries ([`bq_datalog`]),
//! transactional sessions with table locks and WAL recovery ([`bq_txn`] +
//! [`bq_storage::wal`]), and a schema-design advisor ([`bq_design`]) in
//! the tradition of the "more than twenty database design tools" the
//! paper counts.

pub mod advisor;
pub mod codec;
pub mod db;
pub mod error;
pub mod slowlog;
pub mod vtab;

pub use advisor::{advise, DesignReport};
pub use db::{Db, SessionLimits, TxnHandle};
pub use error::CoreError;
pub use slowlog::{SlowEntry, SlowLog};
pub use vtab::{
    BackupRegistry, BackupRow, ReplicaRegistry, ReplicaRow, SessionRegistry, SessionRow,
    VirtualTable,
};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
