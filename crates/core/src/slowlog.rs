//! The slow-query log: a bounded, byte-capped ring of completed
//! statements that ran for at least a configurable latency threshold.
//!
//! The ring is deliberately small and allocation-capped: introspection
//! must never be the thing that OOMs the engine. Three bounds apply, all
//! hard: at most [`MAX_ENTRIES`] entries, at most [`MAX_BYTES`] of
//! retained text across all entries, and per-entry truncation of the SQL
//! ([`MAX_SQL_BYTES`]) and rendered plan ([`MAX_PLAN_BYTES`]). Overflow
//! evicts oldest-first; a refusal (simulated by the
//! `core.slowlog.overflow` failpoint) drops the incoming entry and counts
//! it in [`SlowLog::dropped`].

use bq_exec::ExecStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum entries retained in the ring.
pub const MAX_ENTRIES: usize = 256;
/// Maximum bytes of SQL + plan text retained across the whole ring.
pub const MAX_BYTES: u64 = 256 * 1024;
/// Per-entry cap on retained SQL text (truncated beyond this).
pub const MAX_SQL_BYTES: usize = 512;
/// Per-entry cap on the retained rendered plan (truncated beyond this).
pub const MAX_PLAN_BYTES: usize = 4096;

/// One completed statement in the slow log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The statement's trace/query id (0 when it ran untagged).
    pub query: u64,
    /// The owning session id (0 for embedded/untagged statements).
    pub session: u64,
    /// Statement text, truncated to [`MAX_SQL_BYTES`].
    pub sql: String,
    /// End-to-end wall time in microseconds.
    pub elapsed_us: u64,
    /// Rows in the final result.
    pub rows: u64,
    /// Plan-shape fingerprint: hash of the operator labels, so entries
    /// for the same plan shape can be grouped regardless of runtimes.
    pub fingerprint: u64,
    /// Rendered per-operator stats tree, truncated to [`MAX_PLAN_BYTES`].
    pub plan: String,
}

impl SlowEntry {
    fn retained_bytes(&self) -> u64 {
        (self.sql.len() + self.plan.len()) as u64
    }
}

#[derive(Debug, Default)]
struct Ring {
    entries: VecDeque<SlowEntry>,
    bytes: u64,
}

/// The engine-wide slow-query log. Shared (`Arc`) between the `Db` that
/// records into it and the `bq.slow_log` virtual table that reads it.
#[derive(Debug, Default)]
pub struct SlowLog {
    ring: Mutex<Ring>,
    /// Only statements at or above this wall time (µs) are retained.
    /// Zero (the default) logs every completed statement.
    threshold_us: AtomicU64,
    /// Entries refused outright (byte-cap refusal, real or injected via
    /// the `core.slowlog.overflow` failpoint). Oldest-first eviction is
    /// normal ring behaviour and is *not* counted here.
    dropped: AtomicU64,
}

impl SlowLog {
    /// An empty log with threshold 0 (log everything).
    pub fn new() -> SlowLog {
        SlowLog::default()
    }

    /// Set the latency floor in microseconds; statements faster than
    /// this are not logged. 0 logs everything.
    pub fn set_threshold_us(&self, us: u64) {
        // relaxed: configuration cell, read once per completed statement.
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current latency floor in microseconds.
    pub fn threshold_us(&self) -> u64 {
        // relaxed: see set_threshold_us.
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Entries refused at the allocation cap since process start.
    pub fn dropped(&self) -> u64 {
        // relaxed: stats counter.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a completed statement, applying the threshold, per-entry
    /// truncation, and the ring's entry/byte caps (evicting oldest-first).
    pub fn record(&self, mut entry: SlowEntry) {
        if entry.elapsed_us < self.threshold_us() {
            return;
        }
        if bq_faults::hit("core.slowlog.overflow").is_some() {
            // relaxed: stats counter.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        truncate_to(&mut entry.sql, MAX_SQL_BYTES);
        truncate_to(&mut entry.plan, MAX_PLAN_BYTES);
        let cost = entry.retained_bytes();
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.entries.push_back(entry);
        ring.bytes += cost;
        while ring.entries.len() > MAX_ENTRIES || ring.bytes > MAX_BYTES {
            match ring.entries.pop_front() {
                Some(evicted) => ring.bytes -= evicted.retained_bytes(),
                None => break,
            }
        }
    }

    /// Snapshot of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Drop every retained entry (the dropped counter is kept).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.entries.clear();
        ring.bytes = 0;
    }
}

/// Truncate `s` to at most `max` bytes on a char boundary, appending an
/// ellipsis marker when anything was cut.
fn truncate_to(s: &mut String, max: usize) {
    if s.len() <= max {
        return;
    }
    let mut cut = max;
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    s.truncate(cut);
    s.push('…');
}

/// Hash the plan *shape* — the operator labels in tree order — with
/// FNV-1a, ignoring runtimes and cardinalities, so repeated executions of
/// the same plan share a fingerprint in `bq.slow_log`.
pub fn plan_fingerprint(stats: &ExecStats) -> u64 {
    fn walk(node: &ExecStats, hash: &mut u64) {
        for b in node.op.as_bytes() {
            *hash ^= u64::from(*b);
            *hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        *hash ^= 0x28; // '(' — separates a node from its children
        *hash = hash.wrapping_mul(0x100_0000_01b3);
        for c in &node.children {
            walk(c, hash);
        }
        *hash ^= 0x29; // ')'
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    walk(stats, &mut hash);
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: u64, sql: &str, elapsed_us: u64) -> SlowEntry {
        SlowEntry {
            query,
            session: 1,
            sql: sql.to_string(),
            elapsed_us,
            rows: 0,
            fingerprint: 0,
            plan: String::new(),
        }
    }

    #[test]
    fn threshold_filters_fast_statements() {
        let log = SlowLog::new();
        log.set_threshold_us(1000);
        log.record(entry(1, "fast", 999));
        log.record(entry(2, "slow", 1000));
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].query, 2);
    }

    #[test]
    fn ring_evicts_oldest_beyond_entry_cap() {
        let log = SlowLog::new();
        for i in 0..(MAX_ENTRIES as u64 + 10) {
            log.record(entry(i, "q", 5));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), MAX_ENTRIES);
        assert_eq!(entries[0].query, 10, "oldest evicted first");
        assert_eq!(log.dropped(), 0, "eviction is not a drop");
    }

    #[test]
    fn byte_cap_bounds_retained_text() {
        let log = SlowLog::new();
        let big = "x".repeat(MAX_SQL_BYTES * 2);
        for i in 0..2000 {
            log.record(entry(i, &big, 5));
        }
        let entries = log.entries();
        let bytes: u64 = entries
            .iter()
            .map(|e| (e.sql.len() + e.plan.len()) as u64)
            .sum();
        assert!(bytes <= MAX_BYTES, "{bytes} > {MAX_BYTES}");
        assert!(entries[0].sql.len() <= MAX_SQL_BYTES + '…'.len_utf8());
        assert!(entries[0].sql.ends_with('…'), "truncation is marked");
    }

    #[test]
    fn overflow_failpoint_refuses_and_counts() {
        bq_faults::configure(
            "core.slowlog.overflow",
            bq_faults::Policy::new(bq_faults::Action::Error, bq_faults::Trigger::Always)
                .caller_thread(),
        );
        let log = SlowLog::new();
        log.record(entry(1, "refused", 5));
        bq_faults::off("core.slowlog.overflow");
        log.record(entry(2, "kept", 5));
        assert_eq!(log.dropped(), 1);
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].query, 2);
    }

    #[test]
    fn fingerprint_tracks_shape_not_runtimes() {
        let shape = |rows| ExecStats {
            op: "Filter [a = 1]".to_string(),
            rows_out: rows,
            children: vec![ExecStats {
                op: "SeqScan [r]".to_string(),
                rows_out: rows,
                ..ExecStats::default()
            }],
            ..ExecStats::default()
        };
        assert_eq!(plan_fingerprint(&shape(1)), plan_fingerprint(&shape(999)));
        let other = ExecStats {
            op: "SeqScan [r]".to_string(),
            ..ExecStats::default()
        };
        assert_ne!(plan_fingerprint(&shape(1)), plan_fingerprint(&other));
    }
}
