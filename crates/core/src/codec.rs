//! Tuple ⇄ bytes codec for storage-backed tables.
//!
//! A simple self-delimiting tagged encoding: per value, a 1-byte tag then
//! the payload (little-endian i64, length-prefixed UTF-8, a boolean byte,
//! or a null label).

use crate::error::CoreError;
use crate::Result;
use bq_relational::{Tuple, Value};

const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_NULL: u8 = 4;

/// Encode a tuple to bytes.
pub fn encode(tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * tuple.arity());
    out.extend_from_slice(&(tuple.arity() as u32).to_le_bytes());
    for v in tuple.values() {
        match v {
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Null(n) => {
                out.push(TAG_NULL);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos + n;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| CoreError::Codec(format!("truncated at byte {}", self.pos)))?;
        self.pos = end;
        Ok(s)
    }
}

/// Decode bytes back into a tuple.
pub fn decode(bytes: &[u8]) -> Result<Tuple> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let arity = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")) as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = r.take(1)?[0];
        let v = match tag {
            TAG_INT => Value::Int(i64::from_le_bytes(r.take(8)?.try_into().expect("8"))),
            TAG_STR => {
                let len = u32::from_le_bytes(r.take(4)?.try_into().expect("4")) as usize;
                let s = std::str::from_utf8(r.take(len)?)
                    .map_err(|e| CoreError::Codec(e.to_string()))?;
                Value::Str(s.to_string())
            }
            TAG_BOOL => Value::Bool(r.take(1)?[0] != 0),
            TAG_NULL => Value::Null(u32::from_le_bytes(r.take(4)?.try_into().expect("4"))),
            other => return Err(CoreError::Codec(format!("bad tag {other}"))),
        };
        values.push(v);
    }
    if r.pos != bytes.len() {
        return Err(CoreError::Codec("trailing bytes".into()));
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_value_kinds() {
        let t = Tuple::new(vec![
            Value::Int(-42),
            Value::str("héllo wörld"),
            Value::Bool(true),
            Value::Null(7),
            Value::str(""),
        ]);
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrips() {
        let t = Tuple::new(vec![]);
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn truncated_bytes_error() {
        let t = Tuple::new(vec![Value::Int(1)]);
        let bytes = encode(&t);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let t = Tuple::new(vec![Value::Bool(false)]);
        let mut bytes = encode(&t);
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_tag_error() {
        let mut bytes = 1u32.to_le_bytes().to_vec();
        bytes.push(99);
        assert!(decode(&bytes).is_err());
    }
}
