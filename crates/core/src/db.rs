//! The facade `Db`: storage-backed tables, query surfaces, and
//! transactional sessions with WAL-style durability bookkeeping.
//!
//! Architecture: the logical layer is a [`bq_relational::Database`]
//! (queried by SQL-ish, algebra, calculus, and Datalog); every committed
//! tuple also lives in a heap file inside a shared [`PageStore`] behind a
//! table-granularity strict-2PL lock table, and every transactional
//! mutation is logged so [`Db::simulate_crash_and_recover`] can rebuild
//! the logical layer from storage + WAL alone.

use crate::codec;
use crate::error::CoreError;
use crate::slowlog::{plan_fingerprint, SlowEntry, SlowLog};
use crate::vtab::{
    BackupRegistry, BackupsTable, FailpointsTable, MetricsTable, QueriesTable, ReplicaRegistry,
    ReplicasTable, RunningQueries, SessionRegistry, SessionsTable, SlowLogTable, VirtualTable,
    VTAB_PREFIX,
};
use crate::Result;
use bq_datalog::parser::{parse_atom, parse_program};
use bq_datalog::{FactStore, SemiNaive};
use bq_exec::{ExecMode, ExecStats, Executor};
use bq_governor::{AdmissionController, AdmissionStats, CancelRegistry, Charger, QueryContext};
use bq_relational::algebra::{optimize, Expr};
use bq_relational::calculus::{eval_query, Query as CalcQuery};
use bq_relational::codd::calculus_to_algebra;
use bq_relational::sqlish;
use bq_relational::{Database, Relation, Schema, Tuple, Type, Value};
use bq_storage::btree::BPlusTree;
use bq_storage::heap::{HeapFile, RecordId};
use bq_storage::page::{PageId, PageStore};
use bq_storage::wal::{LogRecord, Wal};
use bq_storage::StorageError;
use bq_txn::locks::{LockResult, LockTable, Mode};
use bq_txn::ops::TxnId;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Bound on distinct clients tracked by the write-dedup table; the
/// oldest client is evicted first (FIFO by first write).
const MAX_DEDUP_CLIENTS: usize = 64;
/// Bound on request ids remembered per client (FIFO).
const MAX_DEDUP_REQUESTS: usize = 256;
/// Version byte leading every [`Db::snapshot_bytes`] image.
const SNAPSHOT_VERSION: u8 = 1;

/// Handle of an open transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnHandle(pub u64);

fn type_to_byte(t: Type) -> u8 {
    match t {
        Type::Int => 0,
        Type::Str => 1,
        Type::Bool => 2,
    }
}

fn type_from_byte(b: u8) -> Result<Type> {
    match b {
        0 => Ok(Type::Int),
        1 => Ok(Type::Str),
        2 => Ok(Type::Bool),
        other => Err(CoreError::Codec(format!("bad type byte {other}"))),
    }
}

#[derive(Debug)]
struct OpenTxn {
    /// Inserted records to undo on abort: (table, record id, tuple).
    undo: Vec<(String, RecordId, Tuple)>,
}

/// Session-level resource defaults, applied to every statement that does
/// not bring its own [`QueryContext`]. All `None` means ungoverned (the
/// seed behaviour). Set via [`Db::set_limits`] or bqsh's `.limits`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionLimits {
    /// Per-statement memory budget in bytes.
    pub memory_bytes: Option<u64>,
    /// Per-statement deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Cap on fixpoint iterations (Datalog naive/semi-naive rounds).
    pub max_iterations: Option<u64>,
}

impl SessionLimits {
    /// Build a per-statement [`QueryContext`] enforcing these limits.
    /// All-`None` limits yield [`QueryContext::unlimited`], whose checks
    /// compile down to one relaxed atomic load. Callers that hold limits
    /// outside a `Db` (e.g. a server session) use this directly;
    /// [`Db::govern`] delegates here.
    pub fn context(&self) -> QueryContext {
        let mut ctx = QueryContext::unlimited();
        if let Some(ms) = self.deadline_ms {
            ctx = ctx.with_deadline(Duration::from_millis(ms));
        }
        if let Some(bytes) = self.memory_bytes {
            ctx = ctx.with_memory_budget(bytes);
        }
        if let Some(n) = self.max_iterations {
            ctx = ctx.with_max_iterations(n);
        }
        ctx
    }
}

/// The database engine facade.
#[derive(Debug)]
pub struct Db {
    catalog: Database,
    store: PageStore,
    heaps: BTreeMap<String, HeapFile>,
    /// Table name → lock-item index for the lock table.
    table_ids: BTreeMap<String, usize>,
    /// Secondary indexes: (table, column) → B+-tree from encoded key to
    /// the matching tuples (duplicates allowed via multiset payload).
    indexes: BTreeMap<(String, String), BPlusTree<Value, Vec<Tuple>>>,
    locks: LockTable,
    wal: Wal,
    open: BTreeMap<u64, OpenTxn>,
    next_txn: u64,
    /// The physical execution engine behind every query surface.
    exec: Executor,
    /// Session-level resource defaults for statements without an explicit
    /// [`QueryContext`].
    limits: SessionLimits,
    /// Process-facing admission control: every query statement takes a
    /// slot (or is queued, or shed) before touching the engine.
    admission: AdmissionController,
    /// Cancel tokens of in-flight statements, so [`Db::cancel_handle`]
    /// works from another thread.
    cancels: CancelRegistry,
    /// Virtual system tables (`bq.*`), resolved through an ephemeral
    /// catalog overlay at query time. `bq.locks` is materialised directly
    /// (the lock table lives in `self`); everything else via a provider.
    vtabs: BTreeMap<String, Arc<dyn VirtualTable>>,
    /// In-flight statements keyed by trace/query id — `bq.queries`.
    queries: RunningQueries,
    /// Bounded ring of completed statements — `bq.slow_log`.
    slow: Arc<SlowLog>,
    /// Connected sessions, published by a front-end — `bq.sessions`.
    sessions: SessionRegistry,
    /// Subscribed replicas, published by a primary's shipping loops —
    /// `bq.replicas`.
    replicas: ReplicaRegistry,
    /// Archived backups, published by a backup engine — `bq.backups`.
    backups: BackupRegistry,
    /// Bounded write-dedup table: client identity → recent request ids,
    /// consulted before a tagged write is applied. Replicated via
    /// [`LogRecord::TaggedCommit`] and the snapshot, so a promoted
    /// replica refuses a retry the old primary already applied.
    dedup: BTreeMap<String, VecDeque<u64>>,
    /// Client arrival order for FIFO eviction of `dedup`.
    dedup_order: VecDeque<String>,
}

impl Default for Db {
    fn default() -> Self {
        Self::new()
    }
}

impl Db {
    /// An empty engine.
    pub fn new() -> Db {
        let queries = RunningQueries::new();
        let slow = Arc::new(SlowLog::new());
        let sessions = SessionRegistry::new();
        let replicas = ReplicaRegistry::new();
        let backups = BackupRegistry::new();
        let providers: Vec<Arc<dyn VirtualTable>> = vec![
            Arc::new(MetricsTable),
            Arc::new(FailpointsTable),
            Arc::new(QueriesTable::new(queries.clone())),
            Arc::new(SlowLogTable::new(Arc::clone(&slow))),
            Arc::new(SessionsTable::new(sessions.clone())),
            Arc::new(ReplicasTable::new(replicas.clone())),
            Arc::new(BackupsTable::new(backups.clone())),
        ];
        let vtabs = providers
            .into_iter()
            .map(|vt| (vt.name().to_string(), vt))
            .collect();
        Db {
            catalog: Database::new(),
            store: PageStore::new(),
            heaps: BTreeMap::new(),
            table_ids: BTreeMap::new(),
            indexes: BTreeMap::new(),
            locks: LockTable::new(),
            wal: Wal::new(),
            open: BTreeMap::new(),
            next_txn: 1,
            exec: Executor::default(),
            limits: SessionLimits::default(),
            // Effectively unbounded by default: admission only sheds after
            // `set_admission` narrows the slot pool.
            admission: AdmissionController::new(usize::MAX, 0),
            cancels: CancelRegistry::new(),
            vtabs,
            queries,
            slow,
            sessions,
            replicas,
            backups,
            dedup: BTreeMap::new(),
            dedup_order: VecDeque::new(),
        }
    }

    /// Current execution mode of the physical engine.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec.mode()
    }

    /// Switch the physical engine between sequential and morsel-parallel
    /// execution for all query surfaces.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec.set_mode(mode);
    }

    // ------------------------------------------------------------------
    // DDL + autocommit DML
    // ------------------------------------------------------------------

    /// Create a table. DDL is logged and synced immediately so a lone
    /// `create table` ships to replicas without waiting for a commit.
    pub fn create_table(&mut self, name: &str, attrs: &[(&str, Type)]) -> Result<()> {
        if self.heaps.contains_key(name) {
            return Err(CoreError::TableExists(name.to_string()));
        }
        let schema = Schema::new(attrs)?;
        // Log first: if the device is full, the engine is left untouched
        // and the caller sees the typed error.
        self.wal.append(&LogRecord::CreateTable {
            name: name.to_string(),
            cols: attrs
                .iter()
                .map(|(n, t)| (n.to_string(), type_to_byte(*t)))
                .collect(),
        })?;
        self.catalog.add(name, Relation::new(schema));
        self.heaps.insert(name.to_string(), HeapFile::new());
        let id = self.table_ids.len();
        self.table_ids.insert(name.to_string(), id);
        self.sync_tolerating_full();
        Ok(())
    }

    /// Autocommit insert: a one-row transaction.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let _t = Self::stmt_timer("insert");
        let h = self.begin()?;
        match self.insert_in(h, table, row) {
            Ok(()) => self.commit(h),
            Err(e) => {
                self.abort(h)?;
                Err(e)
            }
        }
    }

    /// Names of all tables.
    pub fn tables(&self) -> Vec<&str> {
        self.heaps.keys().map(String::as_str).collect()
    }

    /// Read-only view of a whole table.
    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.catalog
            .get(name)
            .map_err(|_| CoreError::NoSuchTable(name.to_string()))
    }

    /// Number of rows in a table.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        Ok(self.table(name)?.len())
    }

    // ------------------------------------------------------------------
    // Secondary indexes
    // ------------------------------------------------------------------

    /// Create (and build) a B+-tree index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        let rel = self
            .catalog
            .get(table)
            .map_err(|_| CoreError::NoSuchTable(table.to_string()))?;
        let idx = rel.schema().require(column)?;
        let mut tree: BPlusTree<Value, Vec<Tuple>> = BPlusTree::default();
        for t in rel.iter() {
            let key = t.get(idx).clone();
            let mut bucket = tree.get(&key).cloned().unwrap_or_default();
            bucket.push(t.clone());
            tree.upsert(key, bucket);
        }
        self.indexes
            .insert((table.to_string(), column.to_string()), tree);
        Ok(())
    }

    /// Is there an index on `table.column`?
    pub fn has_index(&self, table: &str, column: &str) -> bool {
        self.indexes
            .contains_key(&(table.to_string(), column.to_string()))
    }

    /// Point lookup `table.column = value`, via the index when one exists
    /// (O(log n)), else by scanning.
    pub fn lookup(&self, table: &str, column: &str, value: &Value) -> Result<Vec<Tuple>> {
        if let Some(tree) = self.indexes.get(&(table.to_string(), column.to_string())) {
            return Ok(tree.get(value).cloned().unwrap_or_default());
        }
        let rel = self
            .catalog
            .get(table)
            .map_err(|_| CoreError::NoSuchTable(table.to_string()))?;
        let idx = rel.schema().require(column)?;
        Ok(rel
            .iter()
            .filter(|t| t.get(idx) == value)
            .cloned()
            .collect())
    }

    /// Range lookup `lo <= table.column <= hi` via the index when present.
    pub fn lookup_range(
        &self,
        table: &str,
        column: &str,
        lo: &Value,
        hi: &Value,
    ) -> Result<Vec<Tuple>> {
        if let Some(tree) = self.indexes.get(&(table.to_string(), column.to_string())) {
            return Ok(tree
                .range(lo, hi)
                .into_iter()
                .flat_map(|(_, bucket)| bucket)
                .collect());
        }
        let rel = self
            .catalog
            .get(table)
            .map_err(|_| CoreError::NoSuchTable(table.to_string()))?;
        let idx = rel.schema().require(column)?;
        Ok(rel
            .iter()
            .filter(|t| t.get(idx) >= lo && t.get(idx) <= hi)
            .cloned()
            .collect())
    }

    fn index_insert(&mut self, table: &str, tuple: &Tuple) {
        for ((t, col), tree) in self.indexes.iter_mut() {
            if t == table {
                let rel = self.catalog.get(t).expect("indexed table exists");
                let idx = rel.schema().require(col).expect("indexed column exists");
                let key = tuple.get(idx).clone();
                let mut bucket = tree.get(&key).cloned().unwrap_or_default();
                bucket.push(tuple.clone());
                tree.upsert(key, bucket);
            }
        }
    }

    fn index_remove(&mut self, table: &str, tuple: &Tuple) {
        for ((t, col), tree) in self.indexes.iter_mut() {
            if t == table {
                let rel = self.catalog.get(t).expect("indexed table exists");
                let idx = rel.schema().require(col).expect("indexed column exists");
                let key = tuple.get(idx).clone();
                if let Some(bucket) = tree.get(&key) {
                    let mut bucket = bucket.clone();
                    bucket.retain(|b| b != tuple);
                    if bucket.is_empty() {
                        tree.remove(&key);
                    } else {
                        tree.upsert(key, bucket);
                    }
                }
            }
        }
    }

    /// Rebuild every index from the current catalog (used after recovery).
    fn rebuild_indexes(&mut self) -> Result<()> {
        let keys: Vec<(String, String)> = self.indexes.keys().cloned().collect();
        for (table, column) in keys {
            self.create_index(&table, &column)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. Fails typed (and leaves nothing open) when
    /// the WAL device is full.
    pub fn begin(&mut self) -> Result<TxnHandle> {
        let h = self.next_txn;
        self.next_txn += 1;
        self.wal.append(&LogRecord::Begin(h))?;
        self.open.insert(h, OpenTxn { undo: Vec::new() });
        bq_obs::counter!("bq_core_txn_begins_total", "transactions begun").inc();
        Ok(TxnHandle(h))
    }

    /// Sync the WAL, tolerating a full device: freshly appended records
    /// stay volatile (exactly as under `wal.sync.skip`) and become
    /// durable on the next successful sync. `DiskFull` is the only error
    /// [`Wal::sync`] can raise today.
    fn sync_tolerating_full(&mut self) {
        if self.wal.sync().is_err() {
            bq_obs::counter!(
                "bq_core_wal_sync_enospc_total",
                "WAL syncs refused by a full device (records stay volatile)"
            )
            .inc();
        }
    }

    fn check_open(&self, h: TxnHandle) -> Result<()> {
        if self.open.contains_key(&h.0) {
            Ok(())
        } else {
            Err(CoreError::BadTxn(h.0))
        }
    }

    fn lock_table_for(&mut self, h: TxnHandle, table: &str, mode: Mode) -> Result<()> {
        let &id = self
            .table_ids
            .get(table)
            .ok_or_else(|| CoreError::NoSuchTable(table.to_string()))?;
        match self.locks.request(TxnId(h.0 as u32), id, mode) {
            LockResult::Granted => Ok(()),
            LockResult::Wait => Err(CoreError::Locked {
                table: table.to_string(),
            }),
        }
    }

    /// Insert within a transaction (takes an exclusive table lock).
    pub fn insert_in(&mut self, h: TxnHandle, table: &str, row: Vec<Value>) -> Result<()> {
        self.check_open(h)?;
        self.lock_table_for(h, table, Mode::Exclusive)?;
        let tuple = Tuple::new(row);
        // Validate against the schema first (so storage stays clean).
        {
            let rel = self
                .catalog
                .get(table)
                .map_err(|_| CoreError::NoSuchTable(table.to_string()))?;
            if !tuple.conforms_to(rel.schema()) {
                return Err(CoreError::Rel(bq_relational::RelError::SchemaMismatch(
                    format!("tuple {tuple} vs {}", rel.schema()),
                )));
            }
        }
        let bytes = codec::encode(&tuple);
        let heap = self.heaps.get_mut(table).expect("table exists");
        let rid = heap.insert(&mut self.store, &bytes)?;
        if let Err(e) = self.wal.append(&LogRecord::RowInsert {
            txn: h.0,
            page: rid.page,
            slot: rid.slot,
            table: table.to_string(),
            bytes,
        }) {
            // The row never reached the log: take it back out of the
            // heap so storage and log agree, then surface the error.
            if let Some(heap) = self.heaps.get_mut(table) {
                heap.delete(&mut self.store, rid)?;
            }
            return Err(e.into());
        }
        self.catalog.get_mut(table)?.insert(tuple.clone())?;
        self.index_insert(table, &tuple);
        self.open
            .get_mut(&h.0)
            .expect("checked open")
            .undo
            .push((table.to_string(), rid, tuple));
        Ok(())
    }

    /// Read a whole table within a transaction (takes a shared lock).
    pub fn scan_in(&mut self, h: TxnHandle, table: &str) -> Result<Relation> {
        self.check_open(h)?;
        self.lock_table_for(h, table, Mode::Shared)?;
        Ok(self.table(table)?.clone())
    }

    /// Commit: log COMMIT, force the log (one fsync batch per commit),
    /// release locks.
    pub fn commit(&mut self, h: TxnHandle) -> Result<()> {
        self.check_open(h)?;
        if let Err(e) = self.wal.append(&LogRecord::Commit(h.0)) {
            // The COMMIT record never reached the log, so the
            // transaction can never become durable: roll it back and
            // surface the typed error. Reads stay available; no lock is
            // left behind.
            self.rollback_effects(h)?;
            bq_obs::counter!(
                "bq_core_txn_enospc_aborts_total",
                "transactions rolled back because the WAL device was full"
            )
            .inc();
            return Err(e.into());
        }
        self.sync_tolerating_full();
        self.open.remove(&h.0);
        self.locks.release_all(TxnId(h.0 as u32));
        bq_obs::counter!("bq_core_txn_commits_total", "transactions committed").inc();
        Ok(())
    }

    /// Commit carrying a client idempotency tag: logs
    /// [`LogRecord::TaggedCommit`] (which replicates the dedup entry
    /// along with the commit), forces the log, notes the (client,
    /// request) pair locally, and releases locks.
    pub fn commit_tagged(&mut self, h: TxnHandle, client: &str, request: u64) -> Result<()> {
        self.check_open(h)?;
        if let Err(e) = self.wal.append(&LogRecord::TaggedCommit {
            txn: h.0,
            client: client.to_string(),
            request,
        }) {
            self.rollback_effects(h)?;
            bq_obs::counter!(
                "bq_core_txn_enospc_aborts_total",
                "transactions rolled back because the WAL device was full"
            )
            .inc();
            return Err(e.into());
        }
        self.sync_tolerating_full();
        self.open.remove(&h.0);
        self.locks.release_all(TxnId(h.0 as u32));
        self.note_request(client, request);
        bq_obs::counter!("bq_core_txn_commits_total", "transactions committed").inc();
        Ok(())
    }

    /// Has this (client, request) pair already committed here? Consulted
    /// by the server before applying a tagged write, making client
    /// retries after a lost acknowledgement exactly-once.
    pub fn seen_request(&self, client: &str, request: u64) -> bool {
        self.dedup
            .get(client)
            .is_some_and(|reqs| reqs.contains(&request))
    }

    /// Note a committed (client, request) pair in the bounded dedup
    /// table: FIFO eviction per client and across clients.
    fn note_request(&mut self, client: &str, request: u64) {
        if !self.dedup.contains_key(client) {
            if self.dedup_order.len() >= MAX_DEDUP_CLIENTS {
                if let Some(evicted) = self.dedup_order.pop_front() {
                    self.dedup.remove(&evicted);
                }
            }
            self.dedup_order.push_back(client.to_string());
            self.dedup.insert(client.to_string(), VecDeque::new());
        }
        let reqs = self.dedup.get_mut(client).expect("just inserted");
        if reqs.len() >= MAX_DEDUP_REQUESTS {
            reqs.pop_front();
        }
        reqs.push_back(request);
    }

    /// Abort: undo inserts, log ABORT, release locks.
    pub fn abort(&mut self, h: TxnHandle) -> Result<()> {
        self.check_open(h)?;
        self.rollback_effects(h)?;
        // Best-effort logging: on a full device the ABORT record is
        // dropped — recovery rolls the commit-less transaction back
        // anyway, so the in-memory rollback above is still correct.
        if self.wal.append(&LogRecord::Abort(h.0)).is_ok() {
            // Synced so the abort ships to subscribers promptly (a
            // replica otherwise holds the transaction open until
            // promotion).
            self.sync_tolerating_full();
        } else {
            bq_obs::counter!(
                "bq_core_wal_sync_enospc_total",
                "WAL syncs refused by a full device (records stay volatile)"
            )
            .inc();
        }
        bq_obs::counter!("bq_core_txn_aborts_total", "transactions aborted").inc();
        Ok(())
    }

    /// Undo a transaction's in-memory effects (in reverse insertion
    /// order) and release its locks. Shared by [`Db::abort`] and the
    /// commit path's disk-full bail-out.
    fn rollback_effects(&mut self, h: TxnHandle) -> Result<()> {
        let txn = self.open.remove(&h.0).expect("checked open");
        for (table, rid, tuple) in txn.undo.into_iter().rev() {
            if let Some(heap) = self.heaps.get_mut(&table) {
                heap.delete(&mut self.store, rid)?;
            }
            self.catalog.get_mut(&table)?.remove(&tuple);
            self.index_remove(&table, &tuple);
        }
        self.locks.release_all(TxnId(h.0 as u32));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Resource governance
    // ------------------------------------------------------------------

    /// Current session limits.
    pub fn limits(&self) -> SessionLimits {
        self.limits
    }

    /// Set session-level defaults applied to every statement that does not
    /// bring its own [`QueryContext`].
    pub fn set_limits(&mut self, limits: SessionLimits) {
        self.limits = limits;
    }

    /// Bound concurrent statements: at most `slots` run at once, at most
    /// `queue_limit` wait; beyond that, statements are shed with
    /// [`bq_governor::GovernorError::Overloaded`].
    pub fn set_admission(&mut self, slots: usize, queue_limit: usize) {
        self.admission = AdmissionController::new(slots, queue_limit);
    }

    /// Snapshot of the admission controller's counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Configured admission bounds: `(slots, queue_limit)`.
    pub fn admission_limits(&self) -> (usize, usize) {
        (self.admission.slots(), self.admission.queue_limit())
    }

    /// A handle that cancels the statements currently in flight on this
    /// engine. Cloneable and `Send`: obtain it before launching a query,
    /// hand it to another thread, and call
    /// [`CancelRegistry::cancel_all`] to stop them. Statements started
    /// *after* the call are unaffected (each registers a fresh token).
    pub fn cancel_handle(&self) -> CancelRegistry {
        self.cancels.clone()
    }

    /// Build a per-statement [`QueryContext`] from the session limits.
    /// All-`None` limits yield [`QueryContext::unlimited`], whose checks
    /// compile down to one relaxed atomic load.
    pub fn govern(&self) -> QueryContext {
        self.limits.context()
    }

    /// Statement wrapper: admission slot, cancel registration, trace-id
    /// stamping, the `bq.queries` running entry, latency timer, and the
    /// once-per-statement governor metrics. Returns the result paired
    /// with the statement's wall time in microseconds.
    fn run_governed<T>(
        &self,
        kind: &'static str,
        stmt: &str,
        ctx: &QueryContext,
        f: impl FnOnce() -> Result<T>,
    ) -> Result<(T, u64)> {
        let _permit = self.admission.admit(ctx)?;
        let reg = self.cancels.register(ctx.cancel_token());
        // Admission assigns the trace/query id unless a front-end (the
        // server) stamped one already; either way the id stays KILL-able
        // through the registry for exactly this statement's lifetime,
        // because both registrations share the context's cancel token.
        if ctx.query_id().is_none() {
            ctx.set_query_id(reg.id());
        }
        let qid = ctx.query_id().unwrap_or(0);
        let session = ctx.session_id().unwrap_or(0);
        let _run = self.queries.track(qid, session, kind, stmt);
        let start_us = bq_obs::now_us();
        let _t = Self::stmt_timer(kind);
        let out = f();
        let elapsed_us = bq_obs::now_us().saturating_sub(start_us);
        bq_governor::record_statement(ctx, out.as_ref().err().and_then(CoreError::governor));
        out.map(|v| (v, elapsed_us))
    }

    /// Feed one completed statement into the slow log.
    fn note_slow(
        &self,
        ctx: &QueryContext,
        text: &str,
        elapsed_us: u64,
        rows: u64,
        stats: &ExecStats,
    ) {
        if elapsed_us < self.slow.threshold_us() {
            return;
        }
        self.slow.record(SlowEntry {
            query: ctx.query_id().unwrap_or(0),
            session: ctx.session_id().unwrap_or(0),
            sql: text.to_string(),
            elapsed_us,
            rows,
            fingerprint: plan_fingerprint(stats),
            plan: stats.render(),
        });
    }

    // ------------------------------------------------------------------
    // Virtual system catalog (`bq.*`)
    // ------------------------------------------------------------------

    /// Names of the queryable virtual tables.
    pub fn virtual_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.vtabs.keys().cloned().collect();
        names.push("bq.locks".to_string());
        names.sort();
        names
    }

    /// Register (or replace) a virtual-table provider under its
    /// [`VirtualTable::name`].
    pub fn register_virtual(&mut self, vt: Arc<dyn VirtualTable>) {
        self.vtabs.insert(vt.name().to_string(), vt);
    }

    /// The slow-query log, shared with the `bq.slow_log` virtual table.
    pub fn slow_log(&self) -> Arc<SlowLog> {
        Arc::clone(&self.slow)
    }

    /// Only statements at or above this wall time (µs) enter the slow
    /// log; 0 (the default) logs every completed statement.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow.set_threshold_us(us);
    }

    /// The registry behind `bq.sessions`; a server front-end clones it
    /// and publishes its connections there.
    pub fn session_registry(&self) -> SessionRegistry {
        self.sessions.clone()
    }

    /// `bq.locks` materialised from the live lock table: one row per
    /// held lock, one (with `waiting = true`) per outstanding request.
    fn locks_relation(&self) -> Result<Relation> {
        let names: BTreeMap<usize, &str> = self
            .table_ids
            .iter()
            .map(|(name, &id)| (id, name.as_str()))
            .collect();
        let mut rel = Relation::with_schema(&[
            ("item", Type::Str),
            ("txn", Type::Int),
            ("mode", Type::Str),
            ("waiting", Type::Bool),
        ])?;
        for (item, txn, mode, waiting) in self.locks.entries() {
            rel.insert(Tuple::new(vec![
                Value::str(names.get(&item).copied().unwrap_or("?")),
                Value::Int(i64::from(txn.0)),
                Value::str(match mode {
                    Mode::Shared => "shared",
                    Mode::Exclusive => "exclusive",
                }),
                Value::Bool(waiting),
            ]))?;
        }
        Ok(rel)
    }

    /// If `expr` reads any `bq.*` relation, build the ephemeral catalog
    /// overlay for it: point-in-time snapshots of the referenced virtual
    /// tables plus copies of the referenced user tables, so joins across
    /// the boundary see one consistent instant. Plain queries return
    /// `None` and run against the real catalog, paying nothing.
    fn overlay_for(&self, expr: &Expr) -> Result<Option<Database>> {
        let rels = expr.relations();
        if !rels.iter().any(|n| n.starts_with(VTAB_PREFIX)) {
            return Ok(None);
        }
        let mut overlay = Database::new();
        for name in &rels {
            if let Some(vt) = self.vtabs.get(name.as_str()) {
                overlay.add(name, vt.snapshot()?);
            } else if name == "bq.locks" {
                overlay.add(name, self.locks_relation()?);
            } else if name.starts_with(VTAB_PREFIX) {
                return Err(CoreError::NoSuchTable(name.clone()));
            } else {
                overlay.add(
                    name,
                    self.catalog
                        .get(name)
                        .map_err(|_| CoreError::NoSuchTable(name.clone()))?
                        .clone(),
                );
            }
        }
        Ok(Some(overlay))
    }

    /// Run `f` against the catalog `expr` should see: the virtual-table
    /// overlay when it reads `bq.*`, the real catalog otherwise.
    fn with_catalog_for<T>(
        &self,
        expr: &Expr,
        f: impl FnOnce(&Database) -> Result<T>,
    ) -> Result<T> {
        match self.overlay_for(expr)? {
            Some(overlay) => f(&overlay),
            None => f(&self.catalog),
        }
    }

    // ------------------------------------------------------------------
    // Query surfaces
    // ------------------------------------------------------------------

    /// Run a SQL-ish query: parsed, optimized, then executed by the
    /// morsel-driven physical engine (`bq-exec`). Governed by the session
    /// limits; see [`Db::sql_with_ctx`] for per-statement control.
    pub fn sql(&self, text: &str) -> Result<Relation> {
        self.sql_with_ctx(text, &self.govern())
    }

    /// Run a SQL-ish query under an explicit [`QueryContext`]: the deadline,
    /// cancel token, and memory budget it carries are honoured at every
    /// morsel boundary and allocation site inside the engine.
    pub fn sql_with_ctx(&self, text: &str, ctx: &QueryContext) -> Result<Relation> {
        self.sql_governed(text, ctx, &self.exec)
    }

    /// Run a SQL-ish query under an explicit [`QueryContext`] *and* an
    /// explicit [`ExecMode`], independent of the engine-wide mode. This is
    /// the entry point for multi-session frontends (bq-server), where each
    /// session carries its own mode but shares one `Db`.
    pub fn sql_with_ctx_mode(
        &self,
        text: &str,
        ctx: &QueryContext,
        mode: ExecMode,
    ) -> Result<Relation> {
        self.sql_governed(text, ctx, &Executor::new(mode))
    }

    /// Shared body of the SQL surfaces: parse, resolve (virtual-table
    /// overlay or real catalog), execute with per-operator stats, and
    /// feed the slow log.
    fn sql_governed(&self, text: &str, ctx: &QueryContext, exec: &Executor) -> Result<Relation> {
        let ((rel, stats), elapsed_us) = self.run_governed("sql", text, ctx, || {
            let expr = sqlish::parse(text)?;
            self.with_catalog_for(&expr, |cat| {
                let optimized = optimize(&expr, cat)?;
                Ok(exec.execute_with_stats_ctx(&optimized, cat, ctx)?)
            })
        })?;
        self.note_slow(ctx, text, elapsed_us, rel.len() as u64, &stats);
        Ok(rel)
    }

    /// Execute an already-parsed-and-optimized plan (a prepared statement)
    /// under an explicit context and mode. Prepared plans skip parse and
    /// optimize on every execution; governance — and the slow-log entry,
    /// filed under `text` — is identical to [`Db::sql_with_ctx_mode`].
    pub fn run_prepared(
        &self,
        text: &str,
        expr: &Expr,
        ctx: &QueryContext,
        mode: ExecMode,
    ) -> Result<Relation> {
        let exec = Executor::new(mode);
        let ((rel, stats), elapsed_us) = self.run_governed("sql", text, ctx, || {
            self.with_catalog_for(expr, |cat| Ok(exec.execute_with_stats_ctx(expr, cat, ctx)?))
        })?;
        self.note_slow(ctx, text, elapsed_us, rel.len() as u64, &stats);
        Ok(rel)
    }

    /// Parse and optimize a SQL-ish query into a plan suitable for
    /// [`Db::run_prepared`], without executing it. Statements over
    /// `bq.*` tables optimize against a snapshot overlay; each later
    /// execution still snapshots fresh state.
    pub fn prepare_sql(&self, text: &str) -> Result<Expr> {
        let expr = sqlish::parse(text)?;
        self.with_catalog_for(&expr, |cat| Ok(optimize(&expr, cat)?))
    }

    /// Evaluate a relational-algebra expression through the physical
    /// engine. (The original recursive interpreter survives as
    /// [`bq_relational::algebra::eval`], the differential-testing oracle.)
    pub fn algebra(&self, expr: &Expr) -> Result<Relation> {
        self.algebra_with_ctx(expr, &self.govern())
    }

    /// Evaluate an algebra expression under an explicit [`QueryContext`].
    pub fn algebra_with_ctx(&self, expr: &Expr, ctx: &QueryContext) -> Result<Relation> {
        self.run_governed("algebra", "(algebra)", ctx, || {
            self.with_catalog_for(expr, |cat| {
                Ok(self.exec.execute_with_ctx(expr, cat, ctx)?)
            })
        })
        .map(|(rel, _)| rel)
    }

    /// Evaluate a tuple-calculus query: translated to algebra via Codd's
    /// Theorem and executed physically. Queries the constructive
    /// translation cannot handle fall back to the direct active-domain
    /// interpreter.
    pub fn calculus(&self, query: &CalcQuery) -> Result<Relation> {
        let ctx = self.govern();
        self.run_governed(
            "calculus",
            "(calculus)",
            &ctx,
            || match calculus_to_algebra(query, &self.catalog) {
                Ok(expr) => Ok(self.exec.execute_with_ctx(&expr, &self.catalog, &ctx)?),
                Err(_) => Ok(eval_query(query, &self.catalog)?),
            },
        )
        .map(|(rel, _)| rel)
    }

    /// EXPLAIN a SQL-ish query: run it and render the physical plan tree
    /// annotated with per-operator rows, batches, and wall time.
    pub fn explain_sql(&self, text: &str) -> Result<String> {
        let expr = sqlish::parse(text)?;
        let (_, stats) = self.with_catalog_for(&expr, |cat| {
            let optimized = optimize(&expr, cat)?;
            Ok(self.exec.execute_with_stats(&optimized, cat)?)
        })?;
        Ok(format!("mode: {}\n{}", self.exec.mode(), stats.render()))
    }

    /// `EXPLAIN ANALYZE`: run the statement fully governed (admission,
    /// trace id, `bq.queries`, slow log) and render the physical plan
    /// annotated with per-operator rows, batches, wall time, and memory
    /// charged against the governor budget.
    pub fn explain_analyze(&self, text: &str) -> Result<String> {
        self.explain_analyze_with_ctx_mode(text, &self.govern(), self.exec.mode())
    }

    /// [`Db::explain_analyze`] under an explicit context and mode — the
    /// entry point for server sessions. When the context brings no
    /// memory budget, an effectively-unlimited one is attached so the
    /// engine estimates allocation sizes and `mem=` is populated.
    pub fn explain_analyze_with_ctx_mode(
        &self,
        text: &str,
        ctx: &QueryContext,
        mode: ExecMode,
    ) -> Result<String> {
        // Large enough to never interfere, present so sizes are charged.
        const ANALYZE_BUDGET: u64 = 1 << 40;
        let analyzed;
        let ctx = if ctx.budget().is_none() {
            // The clone shares the cancel token and trace-id cells, so
            // cancellation and id stamping behave exactly as ungoverned.
            analyzed = ctx.clone().with_memory_budget(ANALYZE_BUDGET);
            &analyzed
        } else {
            ctx
        };
        let exec = Executor::new(mode);
        let ((rel, stats), elapsed_us) = self.run_governed("sql", text, ctx, || {
            let expr = sqlish::parse(text)?;
            self.with_catalog_for(&expr, |cat| {
                let optimized = optimize(&expr, cat)?;
                Ok(exec.execute_with_stats_ctx(&optimized, cat, ctx)?)
            })
        })?;
        self.note_slow(ctx, text, elapsed_us, rel.len() as u64, &stats);
        Ok(format!(
            "mode: {mode}\nquery: {}\nelapsed: {elapsed_us}us\nrows: {}\n{}",
            ctx.query_id().unwrap_or(0),
            rel.len(),
            stats.render()
        ))
    }

    /// Execute an algebra expression and return both the result and the
    /// per-operator [`ExecStats`] tree.
    pub fn explain(&self, expr: &Expr) -> Result<(Relation, ExecStats)> {
        self.with_catalog_for(expr, |cat| Ok(self.exec.execute_with_stats(expr, cat)?))
    }

    /// Run a Datalog program against the tables (tables are the EDB) and
    /// answer a query atom. Example:
    /// `db.datalog("ancestor(X,Y) :- parent(X,Y). …", "ancestor(ann, X)")`.
    pub fn datalog(&self, program: &str, query: &str) -> Result<Vec<Vec<Value>>> {
        self.datalog_with_ctx(program, query, &self.govern())
    }

    /// Run a Datalog program under an explicit [`QueryContext`]: the EDB
    /// copy is charged against the memory budget, the fixpoint checks the
    /// deadline/cancel/iteration cap every round, and — crucially — the
    /// program is **validated before** the EDB is materialised, so an
    /// unsafe or unstratifiable program costs parsing, not a full copy of
    /// every table.
    pub fn datalog_with_ctx(
        &self,
        program: &str,
        query: &str,
        ctx: &QueryContext,
    ) -> Result<Vec<Vec<Value>>> {
        self.run_governed("datalog", program, ctx, || {
            let program = parse_program(program)?;
            let atom = parse_atom(query)?;
            bq_datalog::safety::check_program(&program)?;
            bq_datalog::stratify(&program)?;
            let mut edb = FactStore::new();
            let mut charger = Charger::new(ctx);
            for name in self.catalog.names() {
                ctx.check().map_err(bq_datalog::DlError::from)?;
                let rel = self.catalog.get(name)?;
                for t in rel.iter() {
                    if charger.is_enabled() {
                        charger
                            .charge(t.approx_bytes())
                            .map_err(bq_datalog::DlError::from)?;
                    }
                    edb.insert(name, t.values().to_vec());
                }
            }
            charger.flush().map_err(bq_datalog::DlError::from)?;
            let (store, _) = SemiNaive::run_with_ctx(&program, &edb, ctx)?;
            Ok(bq_datalog::interp::query(&store, &atom))
        })
        .map(|(rows, _)| rows)
    }

    /// Borrow the logical catalog (for the algebra/calculus builders).
    pub fn catalog(&self) -> &Database {
        &self.catalog
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Per-statement-kind latency histogram timer. Each kind gets its own
    /// registered histogram so `.stats` separates SQL from Datalog etc.
    fn stmt_timer(kind: &'static str) -> bq_obs::HistTimer<'static> {
        let h: &'static bq_obs::Histogram = match kind {
            "sql" => bq_obs::histogram!(
                "bq_core_stmt_latency_us_sql",
                "SQL statement latency (us)",
                bq_obs::LATENCY_BUCKETS_US
            ),
            "algebra" => bq_obs::histogram!(
                "bq_core_stmt_latency_us_algebra",
                "algebra statement latency (us)",
                bq_obs::LATENCY_BUCKETS_US
            ),
            "calculus" => bq_obs::histogram!(
                "bq_core_stmt_latency_us_calculus",
                "calculus statement latency (us)",
                bq_obs::LATENCY_BUCKETS_US
            ),
            "datalog" => bq_obs::histogram!(
                "bq_core_stmt_latency_us_datalog",
                "datalog statement latency (us)",
                bq_obs::LATENCY_BUCKETS_US
            ),
            "insert" => bq_obs::histogram!(
                "bq_core_stmt_latency_us_insert",
                "autocommit insert latency (us)",
                bq_obs::LATENCY_BUCKETS_US
            ),
            _ => bq_obs::histogram!(
                "bq_core_stmt_latency_us_other",
                "other statement latency (us)",
                bq_obs::LATENCY_BUCKETS_US
            ),
        };
        h.start_timer()
    }

    /// Prometheus-style text dump of the global metrics registry —
    /// counters from every instrumented crate (storage, txn, datalog,
    /// exec, core) in one page.
    pub fn metrics_text(&self) -> String {
        bq_obs::global().text()
    }

    /// JSON dump of the global metrics registry.
    pub fn metrics_json(&self) -> String {
        bq_obs::global().json()
    }

    /// Zero every metric in the global registry. The registry is
    /// process-wide, so this resets counters for all `Db` instances.
    pub fn reset_metrics(&self) {
        bq_obs::global().reset();
    }

    /// Turn the span tracer on or off (process-wide).
    pub fn set_tracing(&self, on: bool) {
        bq_obs::set_enabled(on);
    }

    /// Is span tracing currently enabled?
    pub fn tracing(&self) -> bool {
        bq_obs::enabled()
    }

    /// Run a SQL-ish query under a profile session: returns the result and
    /// a [`bq_obs::QueryProfile`] with wall time, the rendered physical
    /// plan, metric deltas, and the span flame captured during execution.
    pub fn profile_sql(&self, text: &str) -> Result<(Relation, bq_obs::QueryProfile)> {
        self.profile_sql_with_ctx_mode(text, &self.govern(), self.exec.mode())
    }

    /// [`Db::profile_sql`] under an explicit context and mode: governed
    /// statements profile identically to plain [`Db::sql`] — same
    /// admission, trace-id stamping, `bq.queries` entry, and slow-log
    /// record — and the profile is tagged with the trace/query id.
    pub fn profile_sql_with_ctx_mode(
        &self,
        text: &str,
        ctx: &QueryContext,
        mode: ExecMode,
    ) -> Result<(Relation, bq_obs::QueryProfile)> {
        let exec = Executor::new(mode);
        let ((rel, stats, profile), elapsed_us) = self.run_governed("sql", text, ctx, || {
            let session =
                bq_obs::ProfileSession::start_with_query(text, ctx.query_id().unwrap_or(0));
            let outcome = (|| -> Result<(Relation, ExecStats)> {
                let expr = sqlish::parse(text)?;
                self.with_catalog_for(&expr, |cat| {
                    let optimized = optimize(&expr, cat)?;
                    Ok(exec.execute_with_stats_ctx(&optimized, cat, ctx)?)
                })
            })();
            match outcome {
                Ok((rel, stats)) => {
                    let profile = session.finish(stats.render());
                    Ok((rel, stats, profile))
                }
                Err(e) => {
                    session.finish(String::new());
                    Err(e)
                }
            }
        })?;
        self.note_slow(ctx, text, elapsed_us, rel.len() as u64, &stats);
        Ok((rel, profile))
    }

    /// Profile an already-prepared plan under an explicit context and
    /// mode, exactly as [`Db::profile_sql_with_ctx_mode`] does for text
    /// statements; the profile and slow-log entry are filed under `text`.
    pub fn profile_prepared(
        &self,
        text: &str,
        expr: &Expr,
        ctx: &QueryContext,
        mode: ExecMode,
    ) -> Result<(Relation, bq_obs::QueryProfile)> {
        let exec = Executor::new(mode);
        let ((rel, stats, profile), elapsed_us) = self.run_governed("sql", text, ctx, || {
            let session =
                bq_obs::ProfileSession::start_with_query(text, ctx.query_id().unwrap_or(0));
            let outcome =
                self.with_catalog_for(expr, |cat| Ok(exec.execute_with_stats_ctx(expr, cat, ctx)?));
            match outcome {
                Ok((rel, stats)) => {
                    let profile = session.finish(stats.render());
                    Ok((rel, stats, profile))
                }
                Err(e) => {
                    session.finish(String::new());
                    Err(e)
                }
            }
        })?;
        self.note_slow(ctx, text, elapsed_us, rel.len() as u64, &stats);
        Ok((rel, profile))
    }

    // ------------------------------------------------------------------
    // Crash / recovery demonstration
    // ------------------------------------------------------------------

    /// Simulate a crash: drop the logical layer and every open
    /// transaction, then rebuild the catalog from the heap files, undoing
    /// loser transactions via the WAL (records of transactions with no
    /// COMMIT are removed again). Returns the ids of rolled-back
    /// transactions.
    pub fn simulate_crash_and_recover(&mut self) -> Result<Vec<u64>> {
        // The crash: logical state and volatile txn state vanish.
        self.open.clear();
        self.locks = LockTable::new();
        let schemas: Vec<(String, Schema)> = self
            .catalog
            .names()
            .iter()
            .map(|n| {
                self.catalog
                    .get(n)
                    .map(|r| (n.to_string(), r.schema().clone()))
            })
            .collect::<std::result::Result<_, _>>()?;
        self.catalog = Database::new();

        // Analysis over the WAL: who committed?
        let records = self.wal.iter()?;
        let mut committed: Vec<u64> = Vec::new();
        let mut started: Vec<u64> = Vec::new();
        let mut owner: BTreeMap<(u32, u16), u64> = BTreeMap::new();
        for rec in &records {
            match rec {
                LogRecord::Begin(t) => started.push(*t),
                LogRecord::Commit(t) => committed.push(*t),
                LogRecord::TaggedCommit { txn, .. } => committed.push(*txn),
                LogRecord::RowInsert {
                    txn, page, slot, ..
                } => {
                    owner.insert((page.0, *slot), *txn);
                }
                LogRecord::Update {
                    txn, page, offset, ..
                } => {
                    owner.insert((page.0, *offset as u16), *txn);
                }
                _ => {}
            }
        }
        let losers: Vec<u64> = started
            .iter()
            .copied()
            .filter(|t| !committed.contains(t))
            .collect();

        // Rebuild: scan heaps; keep records owned by winners (or pre-WAL),
        // physically delete loser records.
        for (name, schema) in schemas {
            let mut rel = Relation::new(schema);
            let heap = self.heaps.get_mut(&name).expect("heap exists");
            let entries = heap.scan(&mut self.store)?;
            for (rid, bytes) in entries {
                let who = owner.get(&(rid.page.0, rid.slot)).copied();
                if who.is_some_and(|t| losers.contains(&t)) {
                    heap.delete(&mut self.store, rid)?;
                    continue;
                }
                rel.insert(codec::decode(&bytes)?)?;
            }
            self.catalog.add(&name, rel);
        }
        self.rebuild_indexes()?;
        Ok(losers)
    }

    // ------------------------------------------------------------------
    // Replication: snapshot export/import, record apply, promotion
    // ------------------------------------------------------------------

    /// The registry behind `bq.replicas`; a primary's shipping loops
    /// clone it and publish per-subscriber progress there.
    pub fn replica_registry(&self) -> ReplicaRegistry {
        self.replicas.clone()
    }

    /// The registry behind `bq.backups`; a backup engine clones it and
    /// publishes one row per archived backup attempt.
    pub fn backup_registry(&self) -> BackupRegistry {
        self.backups.clone()
    }

    /// Force the WAL and return the durable horizon in bytes: every
    /// commit logged so far sits inside the durable prefix afterwards.
    /// The incremental-backup cut point.
    pub fn sync_wal(&mut self) -> Result<u64> {
        self.wal.sync()?;
        Ok(self.wal.synced_len() as u64)
    }

    /// Bytes of the WAL guaranteed durable — the shipping horizon.
    pub fn wal_durable_len(&self) -> u64 {
        self.wal.synced_len() as u64
    }

    /// Up to `max` durable WAL bytes starting at byte offset `from`, for
    /// shipping to a subscriber. Empty when `from` is at the horizon.
    pub fn wal_durable_bytes(&self, from: u64, max: usize) -> Vec<u8> {
        let chunk = self.wal.durable_bytes_from(from as usize);
        chunk[..chunk.len().min(max)].to_vec()
    }

    /// Per-table pending (uncommitted) tuples of every open transaction,
    /// in insertion order: the rows a bootstrap must ship as in-flight
    /// rather than committed.
    fn pending_by_table(&self) -> BTreeMap<&str, Vec<&Tuple>> {
        let mut pending: BTreeMap<&str, Vec<&Tuple>> = BTreeMap::new();
        for txn in self.open.values() {
            for (table, _, tuple) in &txn.undo {
                pending.entry(table.as_str()).or_default().push(tuple);
            }
        }
        pending
    }

    /// Encoded committed rows of `table`: the catalog multiset minus one
    /// occurrence per pending open-transaction tuple.
    fn committed_rows(&self, table: &str) -> Result<Vec<Vec<u8>>> {
        let rel = self
            .catalog
            .get(table)
            .map_err(|_| CoreError::NoSuchTable(table.to_string()))?;
        let mut rows: Vec<&Tuple> = rel.iter().collect();
        if let Some(pending) = self.pending_by_table().get(table) {
            for p in pending {
                if let Some(i) = rows.iter().position(|t| t == p) {
                    rows.swap_remove(i);
                }
            }
        }
        Ok(rows.into_iter().map(codec::encode).collect())
    }

    /// Serialize the full engine state for replica bootstrap: schemas,
    /// committed rows, open transactions with their pending rows, index
    /// definitions, the write-dedup table, and the durable WAL offset
    /// the snapshot corresponds to (shipping resumes from there). The
    /// WAL is synced first so the offset sits on a record boundary; a
    /// full log device fails the export typed (an image claiming a stale
    /// horizon while carrying newer commits would restore wrongly).
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>> {
        self.wal.sync()?;
        let mut buf = Vec::new();
        buf.push(SNAPSHOT_VERSION);
        snap_u64(&mut buf, self.next_txn);

        let tables: Vec<&String> = self.heaps.keys().collect();
        snap_u32(&mut buf, tables.len() as u32);
        for name in tables {
            snap_str(&mut buf, name);
            let schema = self
                .catalog
                .get(name)
                .map(|r| r.schema().clone())
                .unwrap_or_default();
            snap_u32(&mut buf, schema.arity() as u32);
            for attr in schema.attrs() {
                snap_str(&mut buf, &attr.name);
                buf.push(type_to_byte(attr.ty));
            }
            let rows = self.committed_rows(name).unwrap_or_default();
            snap_u32(&mut buf, rows.len() as u32);
            for row in rows {
                snap_bytes(&mut buf, &row);
            }
        }

        snap_u32(&mut buf, self.open.len() as u32);
        for (txn, state) in &self.open {
            snap_u64(&mut buf, *txn);
            snap_u32(&mut buf, state.undo.len() as u32);
            for (table, _, tuple) in &state.undo {
                snap_str(&mut buf, table);
                snap_bytes(&mut buf, &codec::encode(tuple));
            }
        }

        snap_u32(&mut buf, self.indexes.len() as u32);
        for (table, column) in self.indexes.keys() {
            snap_str(&mut buf, table);
            snap_str(&mut buf, column);
        }

        snap_u32(&mut buf, self.dedup.len() as u32);
        for (client, reqs) in &self.dedup {
            snap_str(&mut buf, client);
            snap_u32(&mut buf, reqs.len() as u32);
            for r in reqs {
                snap_u64(&mut buf, *r);
            }
        }

        snap_u64(&mut buf, self.wal.synced_len() as u64);
        bq_obs::counter!("bq_core_snapshots_total", "bootstrap snapshots exported").inc();
        Ok(buf)
    }

    /// Rebuild this engine in place from a [`Db::snapshot_bytes`] image,
    /// returning the primary WAL offset the snapshot corresponds to.
    /// The whole image is decoded before any state is replaced, so a
    /// corrupt snapshot leaves the engine untouched; virtual-table,
    /// session, and cancel registries keep their identities so a serving
    /// front-end survives a re-bootstrap.
    pub fn apply_snapshot(&mut self, bytes: &[u8]) -> Result<u64> {
        let mut r = SnapReader { buf: bytes, pos: 0 };
        if r.u8()? != SNAPSHOT_VERSION {
            return Err(CoreError::Codec("unknown snapshot version".to_string()));
        }
        let next_txn = r.u64()?;

        // Decoded-but-not-yet-applied image pieces: a table is its name,
        // columns, and encoded rows; an open transaction is its id plus
        // pending (table, row-bytes) writes.
        type SnapTable = (String, Vec<(String, Type)>, Vec<Vec<u8>>);
        type SnapTxn = (u64, Vec<(String, Vec<u8>)>);

        let ntables = r.u32()? as usize;
        let mut tables: Vec<SnapTable> = Vec::new();
        for _ in 0..ntables {
            let name = r.string()?;
            let ncols = r.u32()? as usize;
            let mut cols = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let col = r.string()?;
                cols.push((col, type_from_byte(r.u8()?)?));
            }
            let nrows = r.u32()? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                rows.push(r.bytes()?);
            }
            tables.push((name, cols, rows));
        }

        let nopen = r.u32()? as usize;
        let mut open: Vec<SnapTxn> = Vec::new();
        for _ in 0..nopen {
            let txn = r.u64()?;
            let npending = r.u32()? as usize;
            let mut pending = Vec::with_capacity(npending.min(1 << 20));
            for _ in 0..npending {
                let table = r.string()?;
                pending.push((table, r.bytes()?));
            }
            open.push((txn, pending));
        }

        let nindexes = r.u32()? as usize;
        let mut index_defs = Vec::with_capacity(nindexes.min(1 << 16));
        for _ in 0..nindexes {
            let table = r.string()?;
            index_defs.push((table, r.string()?));
        }

        let ndedup = r.u32()? as usize;
        let mut dedup_entries: Vec<(String, Vec<u64>)> = Vec::new();
        for _ in 0..ndedup {
            let client = r.string()?;
            let nreqs = r.u32()? as usize;
            let mut reqs = Vec::with_capacity(nreqs.min(MAX_DEDUP_REQUESTS));
            for _ in 0..nreqs {
                reqs.push(r.u64()?);
            }
            dedup_entries.push((client, reqs));
        }

        let wal_offset = r.u64()?;

        // Decode succeeded: swap the storage state in.
        self.catalog = Database::new();
        self.store = PageStore::new();
        self.heaps = BTreeMap::new();
        self.table_ids = BTreeMap::new();
        self.indexes = BTreeMap::new();
        self.locks = LockTable::new();
        self.wal = Wal::new();
        self.open = BTreeMap::new();
        self.next_txn = next_txn;
        self.dedup = BTreeMap::new();
        self.dedup_order = VecDeque::new();

        for (name, cols, rows) in tables {
            let attrs: Vec<(&str, Type)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = Schema::new(&attrs)?;
            self.catalog.add(&name, Relation::new(schema));
            self.heaps.insert(name.clone(), HeapFile::new());
            let id = self.table_ids.len();
            self.table_ids.insert(name.clone(), id);
            for bytes in rows {
                let tuple = codec::decode(&bytes)?;
                let heap = self.heaps.get_mut(&name).expect("just inserted");
                heap.insert(&mut self.store, &bytes)?;
                self.catalog.get_mut(&name)?.insert(tuple)?;
            }
        }

        for (txn, pending) in open {
            let mut undo = Vec::with_capacity(pending.len());
            for (table, bytes) in pending {
                let tuple = codec::decode(&bytes)?;
                let heap = self
                    .heaps
                    .get_mut(&table)
                    .ok_or_else(|| CoreError::NoSuchTable(table.clone()))?;
                let rid = heap.insert(&mut self.store, &bytes)?;
                self.catalog.get_mut(&table)?.insert(tuple.clone())?;
                undo.push((table, rid, tuple));
            }
            self.open.insert(txn, OpenTxn { undo });
        }

        for (table, column) in index_defs {
            self.create_index(&table, &column)?;
        }

        for (client, reqs) in dedup_entries {
            for r in reqs {
                self.note_request(&client, r);
            }
        }

        bq_obs::counter!(
            "bq_core_snapshots_applied_total",
            "bootstrap snapshots applied"
        )
        .inc();
        Ok(wal_offset)
    }

    /// Apply one shipped log record on a replica: transactions are keyed
    /// by the primary's ids, the lock table is bypassed (replication is
    /// single-writer by construction), and each record is re-logged into
    /// the local WAL so the replica's own durability story stays intact.
    pub fn apply_record(&mut self, rec: &LogRecord) -> Result<()> {
        match rec {
            LogRecord::Begin(t) => {
                self.next_txn = self.next_txn.max(t + 1);
                self.open.insert(*t, OpenTxn { undo: Vec::new() });
                self.wal.append(rec)?;
            }
            LogRecord::Commit(t) => {
                self.open.remove(t);
                self.wal.append(rec)?;
                self.wal.sync()?;
            }
            LogRecord::TaggedCommit {
                txn,
                client,
                request,
            } => {
                self.open.remove(txn);
                self.wal.append(rec)?;
                self.wal.sync()?;
                let client = client.clone();
                self.note_request(&client, *request);
            }
            LogRecord::Abort(t) => {
                if let Some(state) = self.open.remove(t) {
                    for (table, rid, tuple) in state.undo.into_iter().rev() {
                        if let Some(heap) = self.heaps.get_mut(&table) {
                            heap.delete(&mut self.store, rid)?;
                        }
                        self.catalog.get_mut(&table)?.remove(&tuple);
                        self.index_remove(&table, &tuple);
                    }
                }
                self.wal.append(rec)?;
            }
            LogRecord::CreateTable { name, cols } => {
                // Idempotent: a resent segment may replay DDL we hold.
                if !self.heaps.contains_key(name) {
                    let typed: Vec<(String, Type)> = cols
                        .iter()
                        .map(|(n, t)| Ok((n.clone(), type_from_byte(*t)?)))
                        .collect::<Result<_>>()?;
                    let attrs: Vec<(&str, Type)> =
                        typed.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                    let schema = Schema::new(&attrs)?;
                    self.catalog.add(name, Relation::new(schema));
                    self.heaps.insert(name.clone(), HeapFile::new());
                    let id = self.table_ids.len();
                    self.table_ids.insert(name.clone(), id);
                    self.wal.append(rec)?;
                    self.wal.sync()?;
                }
            }
            LogRecord::RowInsert {
                txn, table, bytes, ..
            } => {
                let tuple = codec::decode(bytes)?;
                let heap = self
                    .heaps
                    .get_mut(table)
                    .ok_or_else(|| CoreError::NoSuchTable(table.clone()))?;
                // The replica's heap chooses its own location; re-log
                // with it so local crash recovery stays consistent.
                let rid = heap.insert(&mut self.store, bytes)?;
                self.wal.append(&LogRecord::RowInsert {
                    txn: *txn,
                    page: rid.page,
                    slot: rid.slot,
                    table: table.clone(),
                    bytes: bytes.clone(),
                })?;
                self.catalog.get_mut(table)?.insert(tuple.clone())?;
                self.index_insert(table, &tuple);
                self.open
                    .entry(*txn)
                    .or_insert_with(|| OpenTxn { undo: Vec::new() })
                    .undo
                    .push((table.clone(), rid, tuple));
            }
            LogRecord::Update { .. } | LogRecord::Checkpoint(_) => {
                // Physical records do not participate in logical
                // replication; nothing to apply.
            }
        }
        bq_obs::counter!(
            "bq_repl_records_applied_total",
            "replicated records applied"
        )
        .inc();
        Ok(())
    }

    /// Promote a replica to primary: abort every transaction that was
    /// shipped a `Begin` but never a commit (the old primary died
    /// mid-transaction), returning the aborted ids. After promotion the
    /// engine accepts writes like any primary.
    pub fn promote(&mut self) -> Result<Vec<u64>> {
        let open: Vec<u64> = self.open.keys().copied().collect();
        for t in &open {
            self.abort(TxnHandle(*t))?;
        }
        bq_obs::counter!("bq_core_promotions_total", "replica promotions").inc();
        Ok(open)
    }

    /// Order-insensitive FNV-1a fingerprint of the committed logical
    /// contents: table names, schemas, and the sorted multiset of
    /// committed row encodings. Primary and replica converge to the
    /// same fingerprint even though their heap locations differ.
    pub fn content_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let names: Vec<&String> = self.heaps.keys().collect();
        for name in names {
            mix(name.as_bytes());
            if let Ok(rel) = self.catalog.get(name) {
                for attr in rel.schema().attrs() {
                    mix(attr.name.as_bytes());
                    mix(&[type_to_byte(attr.ty)]);
                }
            }
            let mut rows = self.committed_rows(name).unwrap_or_default();
            rows.sort_unstable();
            for row in rows {
                mix(&(row.len() as u32).to_le_bytes());
                mix(&row);
            }
        }
        h
    }

    // ------------------------------------------------------------------
    // Integrity scrubbing
    // ------------------------------------------------------------------

    /// Walk every heap page verifying its checksum; if any page is
    /// corrupt, rebuild the whole physical layer (pages + heaps) from the
    /// intact logical layer — the same replay discipline
    /// [`bq_storage::wal::Wal::recover`]'s `pages_restored` machinery
    /// applies to physical logs, lifted to this engine's logical WAL:
    /// committed rows re-enter their heaps and pending rows of open
    /// transactions are re-placed with their undo entries re-pointed.
    /// Returns `(pages_checked, pages_restored)`.
    pub fn scrub_pages(&mut self) -> Result<(usize, usize)> {
        let n = self.store.len();
        let mut corrupt = 0usize;
        for i in 0..n {
            match self.store.read(PageId(i as u32)) {
                Ok(_) => {}
                Err(StorageError::Corruption { .. }) => corrupt += 1,
                Err(e) => return Err(e.into()),
            }
        }
        bq_obs::counter!(
            "bq_scrub_pages_checked_total",
            "heap pages checksum-verified by scrub"
        )
        .add(n as u64);
        if corrupt > 0 {
            self.rebuild_storage()?;
            bq_obs::counter!(
                "bq_scrub_pages_restored_total",
                "corrupt heap pages rebuilt by scrub from the logical layer"
            )
            .add(corrupt as u64);
        }
        Ok((n, corrupt))
    }

    /// Rebuild pages and heaps from the logical layer: committed rows
    /// per table, then the pending rows of every open transaction (whose
    /// undo entries are re-pointed at the fresh locations). Heap
    /// placements may differ from the originals — like a replica's —
    /// which [`Db::content_fingerprint`] is insensitive to by design.
    fn rebuild_storage(&mut self) -> Result<()> {
        let tables: Vec<String> = self.heaps.keys().cloned().collect();
        let mut store = PageStore::new();
        let mut heaps: BTreeMap<String, HeapFile> = BTreeMap::new();
        for name in &tables {
            let mut heap = HeapFile::new();
            for bytes in self.committed_rows(name)? {
                heap.insert(&mut store, &bytes)?;
            }
            heaps.insert(name.clone(), heap);
        }
        let mut open = std::mem::take(&mut self.open);
        for state in open.values_mut() {
            for (table, rid, tuple) in state.undo.iter_mut() {
                let heap = heaps
                    .get_mut(table)
                    .ok_or_else(|| CoreError::NoSuchTable(table.clone()))?;
                *rid = heap.insert(&mut store, &codec::encode(tuple))?;
            }
        }
        self.open = open;
        self.store = store;
        self.heaps = heaps;
        Ok(())
    }

    /// Number of pages in the backing store.
    pub fn page_count(&self) -> usize {
        self.store.len()
    }

    /// Chaos hook: flip a byte of a stored page so its checksum fails —
    /// the damage [`Db::scrub_pages`] exists to find and repair.
    pub fn corrupt_page(&mut self, page: u32) -> Result<()> {
        self.store.corrupt(PageId(page), 0)?;
        Ok(())
    }
}

fn snap_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn snap_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn snap_str(buf: &mut Vec<u8>, s: &str) {
    snap_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn snap_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    snap_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

/// Bounds-checked reader over a snapshot image; every failure is a
/// typed [`CoreError::Codec`].
struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CoreError::Codec("snapshot length overflow".to_string()))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| CoreError::Codec(format!("snapshot truncated at {}", self.pos)))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        // lint: allow(panic) slice is exactly 4 bytes by construction
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        // lint: allow(panic) slice is exactly 8 bytes by construction
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|e| CoreError::Codec(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bq_relational::tup;

    fn emp_db() -> Db {
        let mut db = Db::new();
        db.create_table(
            "emp",
            &[("name", Type::Str), ("dept", Type::Str), ("sal", Type::Int)],
        )
        .unwrap();
        db.insert(
            "emp",
            vec![Value::str("ann"), Value::str("cs"), Value::Int(90)],
        )
        .unwrap();
        db.insert(
            "emp",
            vec![Value::str("bob"), Value::str("cs"), Value::Int(70)],
        )
        .unwrap();
        db.insert(
            "emp",
            vec![Value::str("eve"), Value::str("ee"), Value::Int(80)],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let db = emp_db();
        assert_eq!(db.row_count("emp").unwrap(), 3);
        let out = db.sql("select e.name from emp e where e.sal > 75").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = emp_db();
        assert!(matches!(
            db.create_table("emp", &[("x", Type::Int)]),
            Err(CoreError::TableExists(_))
        ));
    }

    #[test]
    fn schema_mismatch_rejected_and_rolled_back() {
        let mut db = emp_db();
        let before = db.row_count("emp").unwrap();
        assert!(db.insert("emp", vec![Value::Int(1)]).is_err());
        assert_eq!(db.row_count("emp").unwrap(), before);
    }

    #[test]
    fn abort_rolls_back_inserts() {
        let mut db = emp_db();
        let h = db.begin().unwrap();
        db.insert_in(
            h,
            "emp",
            vec![Value::str("zoe"), Value::str("cs"), Value::Int(50)],
        )
        .unwrap();
        assert_eq!(db.row_count("emp").unwrap(), 4);
        db.abort(h).unwrap();
        assert_eq!(db.row_count("emp").unwrap(), 3);
    }

    #[test]
    fn table_locks_conflict() {
        let mut db = emp_db();
        let h1 = db.begin().unwrap();
        let h2 = db.begin().unwrap();
        db.insert_in(
            h1,
            "emp",
            vec![Value::str("zoe"), Value::str("cs"), Value::Int(50)],
        )
        .unwrap();
        // h2 cannot read or write emp while h1 holds the X lock.
        assert!(matches!(
            db.scan_in(h2, "emp"),
            Err(CoreError::Locked { .. })
        ));
        db.commit(h1).unwrap();
        assert_eq!(db.scan_in(h2, "emp").unwrap().len(), 4);
        db.commit(h2).unwrap();
    }

    #[test]
    fn shared_locks_allow_concurrent_readers() {
        let mut db = emp_db();
        let h1 = db.begin().unwrap();
        let h2 = db.begin().unwrap();
        assert!(db.scan_in(h1, "emp").is_ok());
        assert!(db.scan_in(h2, "emp").is_ok());
        db.commit(h1).unwrap();
        db.commit(h2).unwrap();
    }

    #[test]
    fn crash_recovery_keeps_winners_drops_losers() {
        let mut db = emp_db();
        let h = db.begin().unwrap();
        db.insert_in(
            h,
            "emp",
            vec![Value::str("zoe"), Value::str("cs"), Value::Int(50)],
        )
        .unwrap();
        // Crash before commit.
        let losers = db.simulate_crash_and_recover().unwrap();
        assert_eq!(losers, vec![h.0]);
        assert_eq!(db.row_count("emp").unwrap(), 3, "loser insert removed");
        let out = db
            .sql("select e.name from emp e where e.name = 'zoe'")
            .unwrap();
        assert!(out.is_empty());
        // Committed data survived.
        assert!(db
            .sql("select e.name from emp e")
            .unwrap()
            .contains(&tup!["ann"]));
    }

    #[test]
    fn recovery_is_idempotent_and_preserves_counts() {
        let mut db = emp_db();
        db.simulate_crash_and_recover().unwrap();
        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.row_count("emp").unwrap(), 3);
    }

    #[test]
    fn datalog_over_tables() {
        let mut db = Db::new();
        db.create_table("parent", &[("p", Type::Str), ("c", Type::Str)])
            .unwrap();
        for (p, c) in [("ann", "bob"), ("bob", "cid"), ("cid", "dee")] {
            db.insert("parent", vec![Value::str(p), Value::str(c)])
                .unwrap();
        }
        let answers = db
            .datalog(
                "ancestor(X, Y) :- parent(X, Y).\n\
                 ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
                "ancestor(ann, X)",
            )
            .unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn algebra_and_calculus_surfaces_agree() {
        use bq_relational::algebra::expr::Predicate;
        use bq_relational::calculus::ast::{Formula, Query, Term};
        use bq_relational::value::CmpOp;

        let db = emp_db();
        let via_algebra = db
            .algebra(
                &Expr::rel("emp")
                    .select(Predicate::eq_const("dept", "cs"))
                    .project(&["name"]),
            )
            .unwrap();
        let q = Query::new(
            &[("e", "emp")],
            &[("e", "name", "name")],
            Formula::cmp(
                Term::attr("e", "dept"),
                CmpOp::Eq,
                Term::Const(Value::str("cs")),
            ),
        );
        let via_calculus = db.calculus(&q).unwrap();
        assert_eq!(via_algebra.tuples(), via_calculus.tuples());
    }

    #[test]
    fn index_lookup_matches_scan() {
        let mut db = emp_db();
        // Scan answer before the index exists…
        let scan = db.lookup("emp", "dept", &Value::str("cs")).unwrap();
        db.create_index("emp", "dept").unwrap();
        assert!(db.has_index("emp", "dept"));
        // …equals the indexed answer after.
        let mut indexed = db.lookup("emp", "dept", &Value::str("cs")).unwrap();
        indexed.sort();
        let mut scan = scan;
        scan.sort();
        assert_eq!(indexed, scan);
        assert_eq!(indexed.len(), 2);
    }

    #[test]
    fn index_tracks_inserts_and_aborts() {
        let mut db = emp_db();
        db.create_index("emp", "dept").unwrap();
        let h = db.begin().unwrap();
        db.insert_in(
            h,
            "emp",
            vec![Value::str("zoe"), Value::str("cs"), Value::Int(50)],
        )
        .unwrap();
        assert_eq!(
            db.lookup("emp", "dept", &Value::str("cs")).unwrap().len(),
            3
        );
        db.abort(h).unwrap();
        assert_eq!(
            db.lookup("emp", "dept", &Value::str("cs")).unwrap().len(),
            2
        );
    }

    #[test]
    fn index_survives_recovery() {
        let mut db = emp_db();
        db.create_index("emp", "sal").unwrap();
        let h = db.begin().unwrap();
        db.insert_in(
            h,
            "emp",
            vec![Value::str("zoe"), Value::str("cs"), Value::Int(50)],
        )
        .unwrap();
        db.simulate_crash_and_recover().unwrap();
        // Loser gone from the index too.
        assert!(db.lookup("emp", "sal", &Value::Int(50)).unwrap().is_empty());
        assert_eq!(db.lookup("emp", "sal", &Value::Int(90)).unwrap().len(), 1);
    }

    #[test]
    fn range_lookup_via_index() {
        let mut db = emp_db();
        db.create_index("emp", "sal").unwrap();
        let mid = db
            .lookup_range("emp", "sal", &Value::Int(75), &Value::Int(92))
            .unwrap();
        assert_eq!(mid.len(), 2); // 80 and 90
                                  // And the unindexed path agrees.
        let mut db2 = emp_db();
        let scan = db2
            .lookup_range("emp", "sal", &Value::Int(75), &Value::Int(92))
            .unwrap();
        assert_eq!(mid.len(), scan.len());
        let _ = &mut db2;
    }

    #[test]
    fn exec_mode_is_switchable_and_answers_stay_put() {
        use bq_relational::algebra::expr::Predicate;
        let mut db = emp_db();
        let expr = Expr::rel("emp")
            .select(Predicate::eq_const("dept", "cs"))
            .project(&["name"]);
        let oracle = bq_relational::algebra::eval::eval(&expr, db.catalog()).unwrap();
        for mode in [
            ExecMode::Sequential,
            ExecMode::Parallel(1),
            ExecMode::Parallel(4),
        ] {
            db.set_exec_mode(mode);
            assert_eq!(db.exec_mode(), mode);
            assert_eq!(db.algebra(&expr).unwrap(), oracle, "{mode}");
            assert_eq!(
                db.sql("select e.name from emp e where e.dept = 'cs'")
                    .unwrap(),
                oracle,
                "{mode}"
            );
        }
    }

    #[test]
    fn explain_renders_the_physical_plan() {
        let db = emp_db();
        let out = db
            .explain_sql("select e.name from emp e where e.sal > 75")
            .unwrap();
        assert!(out.contains("SeqScan [emp]"), "{out}");
        assert!(out.contains("Filter"), "{out}");
        assert!(out.contains("rows="), "{out}");
        assert!(out.starts_with("mode:"), "{out}");
    }

    #[test]
    fn explain_analyze_reports_runtime_and_memory() {
        let db = emp_db();
        let out = db
            .explain_analyze("select e.name from emp e where e.sal > 75")
            .unwrap();
        assert!(out.starts_with("mode:"), "{out}");
        assert!(out.contains("query: "), "{out}");
        assert!(out.contains("elapsed: "), "{out}");
        assert!(out.contains("rows: 2"), "{out}");
        assert!(out.contains("SeqScan [emp]"), "{out}");
        assert!(out.contains("time="), "{out}");
        // The synthetic analyze budget makes allocation sites charge, so
        // per-operator memory is populated even for ungoverned sessions.
        assert!(out.contains("mem="), "{out}");
    }

    #[test]
    fn virtual_tables_answer_ordinary_sql() {
        let db = emp_db();
        db.sql("select e.name from emp e").unwrap();

        let metrics = db
            .sql("select m.name from bq.metrics m where m.kind = 'counter'")
            .unwrap();
        assert!(!metrics.is_empty());

        let failpoints = db.sql("select f.site from bq.failpoints f").unwrap();
        assert_eq!(failpoints.len(), bq_faults::CATALOG.len());

        // The statement reading `bq.queries` sees itself in flight.
        let queries = db
            .sql("select q.query, q.sql, q.state from bq.queries q")
            .unwrap();
        assert_eq!(queries.len(), 1);

        let slow = db.sql("select s.query, s.sql from bq.slow_log s").unwrap();
        assert!(!slow.is_empty(), "default threshold logs everything");

        // Embedded engines have no sessions and hold no locks.
        assert!(db
            .sql("select x.session from bq.sessions x")
            .unwrap()
            .is_empty());
        assert!(db.sql("select l.item from bq.locks l").unwrap().is_empty());

        // Joins across the virtual boundary go through the normal planner.
        let joined = db
            .sql(
                "select q.sql, m.name from bq.queries q, bq.metrics m \
                 where m.name = 'bq_exec_operators_total'",
            )
            .unwrap();
        assert_eq!(joined.len(), 1);

        assert!(matches!(
            db.sql("select z.a from bq.nope z"),
            Err(CoreError::NoSuchTable(_))
        ));
    }

    #[test]
    fn slow_log_records_completed_statements() {
        let db = emp_db();
        db.sql("select e.name from emp e where e.sal > 75").unwrap();
        let entries = db.slow_log().entries();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.sql, "select e.name from emp e where e.sal > 75");
        assert_eq!(e.rows, 2);
        assert!(e.plan.contains("SeqScan [emp]"), "{}", e.plan);

        // Raising the threshold filters fast statements out.
        db.set_slow_threshold_us(60_000_000);
        db.sql("select e.name from emp e").unwrap();
        let after = db.slow_log().entries().len();
        assert_eq!(after, 1, "only the statement run before the raise");
    }

    #[test]
    fn locks_table_shows_held_locks() {
        let mut db = emp_db();
        let h = db.begin().unwrap();
        db.insert_in(
            h,
            "emp",
            vec![Value::str("kim"), Value::str("cs"), Value::Int(60)],
        )
        .unwrap();
        let locks = db
            .sql("select l.item, l.mode, l.txn from bq.locks l")
            .unwrap();
        assert_eq!(locks.len(), 1);
        let row = locks.iter().next().unwrap();
        assert_eq!(row.get(0), &Value::str("emp"));
        assert_eq!(row.get(1), &Value::str("exclusive"));
        db.commit(h).unwrap();
        assert!(db.sql("select l.item from bq.locks l").unwrap().is_empty());
    }

    #[test]
    fn prepared_statements_resolve_virtual_tables() {
        let db = emp_db();
        let plan = db
            .prepare_sql("select q.query, q.state from bq.queries q")
            .unwrap();
        let ctx = db.govern();
        let out = db
            .run_prepared(
                "select q.query, q.state from bq.queries q",
                &plan,
                &ctx,
                db.exec_mode(),
            )
            .unwrap();
        assert_eq!(out.len(), 1, "the prepared execution sees itself");
    }

    #[test]
    fn calculus_surface_runs_through_the_engine() {
        use bq_relational::calculus::ast::{Formula, Query, Term};
        use bq_relational::value::CmpOp;
        let db = emp_db();
        let q = Query::new(
            &[("e", "emp")],
            &[("e", "name", "name")],
            Formula::cmp(
                Term::attr("e", "sal"),
                CmpOp::Gt,
                Term::Const(Value::Int(75)),
            ),
        );
        let via_engine = db.calculus(&q).unwrap();
        let direct = eval_query(&q, db.catalog()).unwrap();
        assert_eq!(via_engine.tuples(), direct.tuples());
    }

    #[test]
    fn metrics_and_profile_surfaces_work() {
        let db = emp_db();
        db.sql("select e.name from emp e").unwrap();
        let text = db.metrics_text();
        // Liveness only (the registry is process-global and shared across
        // test threads): the names exist and the exec path counted.
        assert!(text.contains("bq_exec_operators_total"), "{text}");
        assert!(text.contains("bq_core_stmt_latency_us_sql"), "{text}");
        assert!(db.metrics_json().starts_with('{'));

        let (rel, profile) = db
            .profile_sql("select e.name from emp e where e.sal > 75")
            .unwrap();
        assert_eq!(rel.len(), 2);
        assert!(profile.plan.contains("SeqScan [emp]"), "{}", profile.plan);
        assert!(!profile.deltas.is_empty(), "query must move counters");
        assert!(
            profile.spans.iter().any(|s| s.name == "exec.plan"),
            "profile captures the executor span"
        );
        // Errors restore state and still surface.
        assert!(db.profile_sql("select nonsense").is_err());
    }

    #[test]
    fn session_memory_budget_stops_a_cross_product() {
        use bq_governor::GovernorError;
        let mut db = emp_db();
        db.set_limits(SessionLimits {
            memory_bytes: Some(512),
            ..SessionLimits::default()
        });
        let err = db
            .sql("select e.name, f.dept, g.sal from emp e, emp f, emp g")
            .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Governor(GovernorError::MemoryExceeded { .. })
            ),
            "{err:?}"
        );
        // Lifting the limit restores the seed behaviour on the same Db.
        db.set_limits(SessionLimits::default());
        assert_eq!(
            db.sql("select e.name, f.dept, g.sal from emp e, emp f, emp g")
                .unwrap()
                .len(),
            18
        );
    }

    #[test]
    fn zero_deadline_times_out_typed() {
        use bq_governor::GovernorError;
        let mut db = emp_db();
        db.set_limits(SessionLimits {
            deadline_ms: Some(0),
            ..SessionLimits::default()
        });
        let err = db.sql("select e.name from emp e").unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Governor(GovernorError::DeadlineExceeded { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn iteration_cap_stops_a_recursive_fixpoint() {
        use bq_governor::GovernorError;
        let mut db = Db::new();
        db.create_table("edge", &[("a", Type::Int), ("b", Type::Int)])
            .unwrap();
        for i in 0..32i64 {
            db.insert("edge", vec![Value::Int(i), Value::Int(i + 1)])
                .unwrap();
        }
        db.set_limits(SessionLimits {
            max_iterations: Some(3),
            ..SessionLimits::default()
        });
        let err = db
            .datalog(
                "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).",
                "path(0, X)",
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Governor(GovernorError::IterationLimit { limit: 3 })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn invalid_datalog_is_rejected_before_any_evaluation() {
        let db = emp_db();
        // Unsafe rule: head variable Y never bound in the body.
        let err = db.datalog("weird(X, Y) :- emp(X, D, S).", "weird(a, Y)");
        assert!(
            matches!(err, Err(CoreError::Datalog(bq_datalog::DlError::Unsafe(_)))),
            "{err:?}"
        );
    }

    #[test]
    fn cancel_handle_reaches_in_flight_statements() {
        let db = emp_db();
        let handle = db.cancel_handle();
        assert_eq!(handle.in_flight(), 0);
        // No statement in flight: nothing cancelled, and the next
        // statement is unaffected by a past cancel_all.
        assert_eq!(handle.cancel_all(), 0);
        assert_eq!(db.sql("select e.name from emp e").unwrap().len(), 3);
    }

    #[test]
    fn admission_sheds_when_slots_and_queue_are_full() {
        use bq_governor::GovernorError;
        let mut db = emp_db();
        db.set_admission(1, 0);
        // Hold the only slot by admitting a context manually.
        let ctx = db.govern();
        let permit = db.admission.admit(&ctx).unwrap();
        let err = db.sql("select e.name from emp e").unwrap_err();
        assert!(
            matches!(err, CoreError::Governor(GovernorError::Overloaded { .. })),
            "{err:?}"
        );
        drop(permit);
        assert!(db.sql("select e.name from emp e").is_ok());
        let stats = db.admission_stats();
        assert!(stats.shed >= 1 && stats.admitted >= 2, "{stats:?}");
    }

    /// Ship every durable WAL byte past `from` into `dst`, returning the
    /// new offset — the in-process equivalent of one replication stream.
    fn ship(src: &Db, dst: &mut Db, from: u64) -> u64 {
        let chunk = src.wal_durable_bytes(from, usize::MAX);
        let (records, consumed) = bq_storage::wal::Wal::decode_stream(&chunk).unwrap();
        for rec in &records {
            dst.apply_record(rec).unwrap();
        }
        from + consumed as u64
    }

    #[test]
    fn snapshot_roundtrip_preserves_contents_and_dedup() {
        let mut primary = emp_db();
        let h = primary.begin().unwrap();
        primary
            .insert_in(
                h,
                "emp",
                vec![Value::str("tag"), Value::str("cs"), Value::Int(1)],
            )
            .unwrap();
        primary.commit_tagged(h, "client-a", 7).unwrap();
        assert!(primary.seen_request("client-a", 7));
        primary.create_index("emp", "dept").unwrap();

        // An open transaction's pending row is not committed content.
        let open = primary.begin().unwrap();
        primary
            .insert_in(
                open,
                "emp",
                vec![Value::str("pending"), Value::str("ee"), Value::Int(2)],
            )
            .unwrap();

        let snap = primary.snapshot_bytes().unwrap();
        let mut replica = Db::new();
        let offset = replica.apply_snapshot(&snap).unwrap();
        assert_eq!(offset, primary.wal_durable_len());
        assert_eq!(replica.row_count("emp").unwrap(), 5, "pending row ships");
        assert!(replica.seen_request("client-a", 7));
        assert!(!replica.seen_request("client-a", 8));
        assert!(replica.has_index("emp", "dept"));
        assert_eq!(
            replica.content_fingerprint(),
            primary.content_fingerprint(),
            "fingerprints ignore the pending row on both sides"
        );

        // The shipped open transaction aborts on promotion.
        let aborted = replica.promote().unwrap();
        assert_eq!(aborted, vec![open.0]);
        assert_eq!(replica.row_count("emp").unwrap(), 4);

        // A corrupt snapshot leaves the engine untouched.
        let mut other = Db::new();
        assert!(other.apply_snapshot(&snap[..snap.len() / 2]).is_err());
        assert!(other.tables().is_empty());
    }

    #[test]
    fn shipped_records_converge_with_the_primary() {
        let mut primary = Db::new();
        let mut replica = Db::new();
        let mut offset = replica
            .apply_snapshot(&primary.snapshot_bytes().unwrap())
            .unwrap();

        primary
            .create_table("t", &[("a", Type::Int), ("b", Type::Str)])
            .unwrap();
        for i in 0..10i64 {
            primary
                .insert("t", vec![Value::Int(i), Value::str(format!("r{i}"))])
                .unwrap();
        }
        // An aborted transaction ships too and leaves no trace.
        let h = primary.begin().unwrap();
        primary
            .insert_in(h, "t", vec![Value::Int(99), Value::str("gone")])
            .unwrap();
        primary.abort(h).unwrap();

        offset = ship(&primary, &mut replica, offset);
        assert_eq!(offset, primary.wal_durable_len());
        assert_eq!(replica.row_count("t").unwrap(), 10);
        assert_eq!(replica.content_fingerprint(), primary.content_fingerprint());
        // Re-applying the same bytes is the dup-segment case the stream
        // guards against; the replica position logic prevents it, so no
        // assertion here — but a tagged retry on the promoted replica
        // must dedup:
        let h = primary.begin().unwrap();
        primary
            .insert_in(h, "t", vec![Value::Int(100), Value::str("tagged")])
            .unwrap();
        primary.commit_tagged(h, "cli", 1).unwrap();
        offset = ship(&primary, &mut replica, offset);
        let _ = offset;
        replica.promote().unwrap();
        assert!(replica.seen_request("cli", 1), "dedup survives promotion");
        assert_eq!(replica.content_fingerprint(), primary.content_fingerprint());
    }

    #[test]
    fn dedup_table_is_bounded() {
        let mut db = Db::new();
        db.create_table("t", &[("a", Type::Int)]).unwrap();
        for i in 0..(super::MAX_DEDUP_REQUESTS as u64 + 10) {
            let h = db.begin().unwrap();
            db.insert_in(h, "t", vec![Value::Int(i as i64)]).unwrap();
            db.commit_tagged(h, "one-client", i).unwrap();
        }
        assert!(!db.seen_request("one-client", 0), "oldest ids evicted");
        assert!(db.seen_request("one-client", super::MAX_DEDUP_REQUESTS as u64));

        for c in 0..(super::MAX_DEDUP_CLIENTS + 5) {
            let h = db.begin().unwrap();
            db.insert_in(h, "t", vec![Value::Int(c as i64)]).unwrap();
            db.commit_tagged(h, &format!("client-{c}"), 1).unwrap();
        }
        assert!(
            !db.seen_request("one-client", super::MAX_DEDUP_REQUESTS as u64),
            "oldest client evicted"
        );
    }

    #[test]
    fn bad_txn_handle_rejected() {
        let mut db = emp_db();
        assert!(matches!(
            db.commit(TxnHandle(999)),
            Err(CoreError::BadTxn(999))
        ));
        let h = db.begin().unwrap();
        db.commit(h).unwrap();
        assert!(db.abort(h).is_err(), "handle is gone after commit");
    }
}
