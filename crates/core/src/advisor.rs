//! The schema-design advisor — the facade over `bq-design` playing the
//! role of the "more than twenty database design tools that do some form
//! of normalization" ([BCN], §6).

use bq_design::chase::chase_decomposition;
use bq_design::decompose::bcnf_decompose;
use bq_design::fd::FdSet;
use bq_design::keys::candidate_keys;
use bq_design::nf::{classify, NormalForm};
use bq_design::synthesize::synthesize_3nf;

/// Everything a design tool reports about a schema.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Candidate keys (rendered attribute sets).
    pub keys: Vec<String>,
    /// Highest satisfied normal form.
    pub normal_form: NormalForm,
    /// A 3NF synthesis (lossless + dependency preserving), rendered.
    pub synthesis_3nf: Vec<String>,
    /// A BCNF decomposition (lossless), rendered.
    pub decomposition_bcnf: Vec<String>,
    /// Chase-verified losslessness of both decompositions.
    pub lossless_verified: bool,
}

/// Analyse a schema described by its FDs.
pub fn advise(fds: &FdSet) -> DesignReport {
    let keys = candidate_keys(fds)
        .into_iter()
        .map(|k| fds.universe.render(k))
        .collect();
    let normal_form = classify(fds);
    let synth = synthesize_3nf(fds);
    let bcnf = bcnf_decompose(fds);
    let lossless_verified = chase_decomposition(&synth, fds) && chase_decomposition(&bcnf, fds);
    DesignReport {
        keys,
        normal_form,
        synthesis_3nf: synth.into_iter().map(|s| fds.universe.render(s)).collect(),
        decomposition_bcnf: bcnf.into_iter().map(|s| fds.universe.render(s)).collect(),
        lossless_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advisor_on_textbook_schema() {
        // A→B, B→C over ABC: key {A}, 2NF, splits into {AB},{BC}.
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A"], &["B"]), (&["B"], &["C"])]);
        let report = advise(&fds);
        assert_eq!(report.keys, vec!["{A}"]);
        assert_eq!(report.normal_form, NormalForm::Second);
        assert!(report.lossless_verified);
        assert_eq!(report.synthesis_3nf.len(), 2);
        assert!(report.decomposition_bcnf.len() >= 2);
    }

    #[test]
    fn advisor_on_bcnf_schema_reports_no_split() {
        let fds = FdSet::from_named(&["A", "B"], &[(&["A"], &["B"])]);
        let report = advise(&fds);
        assert_eq!(report.normal_form, NormalForm::BoyceCodd);
        assert_eq!(report.decomposition_bcnf, vec!["{AB}"]);
        assert!(report.lossless_verified);
    }

    #[test]
    fn advisor_multi_key_schema() {
        let fds = FdSet::from_named(&["A", "B", "C"], &[(&["A", "B"], &["C"]), (&["C"], &["A"])]);
        let report = advise(&fds);
        assert_eq!(report.keys.len(), 2);
        assert_eq!(report.normal_form, NormalForm::Third);
    }
}
