//! Error type for the facade engine.

use std::fmt;

/// Errors surfaced by the [`crate::Db`] facade.
#[derive(Debug)]
pub enum CoreError {
    /// Relational-layer error (schema, evaluation, parsing).
    Rel(bq_relational::RelError),
    /// Datalog-layer error.
    Datalog(bq_datalog::DlError),
    /// Storage-layer error.
    Storage(bq_storage::StorageError),
    /// A table with this name already exists.
    TableExists(String),
    /// The named table does not exist.
    NoSuchTable(String),
    /// The transaction handle is unknown or already finished.
    BadTxn(u64),
    /// A lock conflict: another active transaction holds the table.
    Locked {
        /// The table that is locked.
        table: String,
    },
    /// Record bytes could not be decoded into a tuple.
    Codec(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rel(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "{e}"),
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::TableExists(t) => write!(f, "table `{t}` already exists"),
            CoreError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            CoreError::BadTxn(h) => write!(f, "unknown transaction handle {h}"),
            CoreError::Locked { table } => write!(f, "table `{table}` is locked"),
            CoreError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<bq_relational::RelError> for CoreError {
    fn from(e: bq_relational::RelError) -> Self {
        CoreError::Rel(e)
    }
}

impl From<bq_datalog::DlError> for CoreError {
    fn from(e: bq_datalog::DlError) -> Self {
        CoreError::Datalog(e)
    }
}

impl From<bq_storage::StorageError> for CoreError {
    fn from(e: bq_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = bq_relational::RelError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains("`r`"));
        assert!(CoreError::Locked { table: "t".into() }
            .to_string()
            .contains("locked"));
    }
}
