//! Error type for the facade engine.

use std::fmt;

/// Errors surfaced by the [`crate::Db`] facade.
#[derive(Debug)]
pub enum CoreError {
    /// Relational-layer error (schema, evaluation, parsing).
    Rel(bq_relational::RelError),
    /// Datalog-layer error.
    Datalog(bq_datalog::DlError),
    /// Storage-layer error.
    Storage(bq_storage::StorageError),
    /// A table with this name already exists.
    TableExists(String),
    /// The named table does not exist.
    NoSuchTable(String),
    /// The transaction handle is unknown or already finished.
    BadTxn(u64),
    /// A lock conflict: another active transaction holds the table.
    Locked {
        /// The table that is locked.
        table: String,
    },
    /// Record bytes could not be decoded into a tuple.
    Codec(String),
    /// The resource governor stopped the statement: deadline, cancellation,
    /// memory budget, iteration cap, or admission shedding. Layer-specific
    /// `Governed` wrappers ([`bq_relational::RelError::Governed`] etc.) are
    /// normalised to this variant so callers match one place.
    Governor(bq_governor::GovernorError),
}

impl CoreError {
    /// The governor error behind this failure, if it was a governed stop.
    pub fn governor(&self) -> Option<&bq_governor::GovernorError> {
        match self {
            CoreError::Governor(g) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rel(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "{e}"),
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::TableExists(t) => write!(f, "table `{t}` already exists"),
            CoreError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            CoreError::BadTxn(h) => write!(f, "unknown transaction handle {h}"),
            CoreError::Locked { table } => write!(f, "table `{table}` is locked"),
            CoreError::Codec(m) => write!(f, "codec error: {m}"),
            CoreError::Governor(g) => write!(f, "{g}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<bq_relational::RelError> for CoreError {
    fn from(e: bq_relational::RelError) -> Self {
        match e {
            bq_relational::RelError::Governed(g) => CoreError::Governor(g),
            other => CoreError::Rel(other),
        }
    }
}

impl From<bq_datalog::DlError> for CoreError {
    fn from(e: bq_datalog::DlError) -> Self {
        match e {
            bq_datalog::DlError::Governed(g) => CoreError::Governor(g),
            other => CoreError::Datalog(other),
        }
    }
}

impl From<bq_storage::StorageError> for CoreError {
    fn from(e: bq_storage::StorageError) -> Self {
        match e {
            bq_storage::StorageError::Governed(g) => CoreError::Governor(g),
            other => CoreError::Storage(other),
        }
    }
}

impl From<bq_governor::GovernorError> for CoreError {
    fn from(g: bq_governor::GovernorError) -> Self {
        CoreError::Governor(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = bq_relational::RelError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains("`r`"));
        assert!(CoreError::Locked { table: "t".into() }
            .to_string()
            .contains("locked"));
    }
}
