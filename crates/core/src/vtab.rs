//! Virtual system-catalog tables — the `bq.*` namespace.
//!
//! A [`VirtualTable`] snapshots one slice of engine state into an
//! ordinary [`Relation`]; query evaluation then proceeds through the
//! normal parse → optimize → execute path against an ephemeral catalog
//! overlay, so joins, filters, set operations, EXPLAIN, and the wire
//! protocol all work on system state with zero special cases past name
//! resolution. Snapshots are point-in-time: a query sees the state as of
//! its own name-resolution step, not a live view.
//!
//! Built-in tables: `bq.metrics`, `bq.queries`, `bq.slow_log`,
//! `bq.failpoints`, `bq.sessions` (populated by a server front-end via
//! [`SessionRegistry`]), and `bq.locks` (materialised directly by `Db`,
//! which owns the lock table).

use crate::slowlog::SlowLog;
use crate::Result;
use bq_relational::{Relation, Tuple, Type, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Name prefix that routes a relation to the virtual catalog.
pub const VTAB_PREFIX: &str = "bq.";

/// Cap on SQL text retained per `bq.queries` row, so the running-query
/// registry stays allocation-bounded no matter what clients send.
const MAX_TRACKED_SQL: usize = 512;

/// A provider of one virtual table: snapshots engine state into a
/// relation on demand.
pub trait VirtualTable: Send + Sync + fmt::Debug {
    /// Fully qualified name (`bq.metrics`).
    fn name(&self) -> &'static str;
    /// Materialise the current state as a relation.
    fn snapshot(&self) -> Result<Relation>;
}

// ---------------------------------------------------------------------
// bq.metrics
// ---------------------------------------------------------------------

/// `bq.metrics(name, kind, value, p50, p95, p99)` over the global
/// observability registry. Counters and gauges carry their value;
/// histograms carry their observation count plus bucket-estimated
/// percentiles (in the unit the histogram observes, typically µs).
#[derive(Debug, Default)]
pub struct MetricsTable;

impl VirtualTable for MetricsTable {
    fn name(&self) -> &'static str {
        "bq.metrics"
    }

    fn snapshot(&self) -> Result<Relation> {
        let mut rel = Relation::with_schema(&[
            ("name", Type::Str),
            ("kind", Type::Str),
            ("value", Type::Int),
            ("p50", Type::Int),
            ("p95", Type::Int),
            ("p99", Type::Int),
        ])?;
        for row in bq_obs::global().rows() {
            rel.insert(Tuple::new(vec![
                Value::str(row.name),
                Value::str(row.kind),
                Value::Int(row.value),
                Value::Int(row.p50),
                Value::Int(row.p95),
                Value::Int(row.p99),
            ]))?;
        }
        Ok(rel)
    }
}

// ---------------------------------------------------------------------
// bq.failpoints
// ---------------------------------------------------------------------

/// `bq.failpoints(site, description, armed, policy, hits, fires)`: the
/// full fault-injection catalog joined with live arming state.
#[derive(Debug, Default)]
pub struct FailpointsTable;

impl VirtualTable for FailpointsTable {
    fn name(&self) -> &'static str {
        "bq.failpoints"
    }

    fn snapshot(&self) -> Result<Relation> {
        let armed: BTreeMap<String, bq_faults::SiteInfo> = bq_faults::list()
            .into_iter()
            .map(|s| (s.site.clone(), s))
            .collect();
        let mut rel = Relation::with_schema(&[
            ("site", Type::Str),
            ("description", Type::Str),
            ("armed", Type::Bool),
            ("policy", Type::Str),
            ("hits", Type::Int),
            ("fires", Type::Int),
        ])?;
        for (site, description) in bq_faults::CATALOG {
            let info = armed.get(*site);
            rel.insert(Tuple::new(vec![
                Value::str(*site),
                Value::str(*description),
                Value::Bool(info.is_some()),
                Value::str(info.map_or("", |i| i.policy.as_str())),
                Value::Int(info.map_or(0, |i| i.hits as i64)),
                Value::Int(info.map_or(0, |i| i.fires as i64)),
            ]))?;
        }
        Ok(rel)
    }
}

// ---------------------------------------------------------------------
// bq.queries
// ---------------------------------------------------------------------

/// One in-flight statement, as tracked by [`RunningQueries`].
#[derive(Debug, Clone)]
pub struct RunningQuery {
    /// Owning session id (0 when embedded/untagged).
    pub session: u64,
    /// Statement kind (`sql`, `datalog`, …).
    pub kind: &'static str,
    /// Statement text, truncated to a fixed cap.
    pub sql: String,
    /// Start time from [`bq_obs::now_us`].
    pub start_us: u64,
}

/// Registry of statements currently in flight, keyed by trace/query id —
/// the same id [`bq_governor::CancelRegistry`] hands out, so every row of
/// `bq.queries` is KILL-able by construction. Cloning shares the map.
#[derive(Debug, Clone, Default)]
pub struct RunningQueries {
    inner: Arc<Mutex<BTreeMap<u64, RunningQuery>>>,
}

impl RunningQueries {
    /// An empty registry.
    pub fn new() -> RunningQueries {
        RunningQueries::default()
    }

    /// Track a statement for the lifetime of the returned guard.
    pub fn track(&self, query: u64, session: u64, kind: &'static str, sql: &str) -> RunningGuard {
        let mut text = String::with_capacity(sql.len().min(MAX_TRACKED_SQL));
        for c in sql.chars() {
            if text.len() + c.len_utf8() > MAX_TRACKED_SQL {
                break;
            }
            text.push(c);
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).insert(
            query,
            RunningQuery {
                session,
                kind,
                sql: text,
                start_us: bq_obs::now_us(),
            },
        );
        RunningGuard {
            inner: Arc::clone(&self.inner),
            query,
        }
    }

    /// Snapshot of the in-flight statements, by query id.
    pub fn snapshot(&self) -> Vec<(u64, RunningQuery)> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&q, r)| (q, r.clone()))
            .collect()
    }
}

/// Removes its statement from [`RunningQueries`] on drop, so a finished
/// statement can never linger in `bq.queries`.
#[derive(Debug)]
pub struct RunningGuard {
    inner: Arc<Mutex<BTreeMap<u64, RunningQuery>>>,
    query: u64,
}

impl Drop for RunningGuard {
    fn drop(&mut self) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.query);
    }
}

/// `bq.queries(query, session, kind, sql, elapsed_ms, state)`: the
/// KILL-able statement registry as a relation.
#[derive(Debug)]
pub struct QueriesTable {
    queries: RunningQueries,
}

impl QueriesTable {
    /// A view over `queries`.
    pub fn new(queries: RunningQueries) -> QueriesTable {
        QueriesTable { queries }
    }
}

impl VirtualTable for QueriesTable {
    fn name(&self) -> &'static str {
        "bq.queries"
    }

    fn snapshot(&self) -> Result<Relation> {
        let now = bq_obs::now_us();
        let mut rel = Relation::with_schema(&[
            ("query", Type::Int),
            ("session", Type::Int),
            ("kind", Type::Str),
            ("sql", Type::Str),
            ("elapsed_ms", Type::Int),
            ("state", Type::Str),
        ])?;
        for (query, run) in self.queries.snapshot() {
            rel.insert(Tuple::new(vec![
                Value::Int(query as i64),
                Value::Int(run.session as i64),
                Value::str(run.kind),
                Value::str(run.sql),
                Value::Int((now.saturating_sub(run.start_us) / 1000) as i64),
                Value::str("running"),
            ]))?;
        }
        Ok(rel)
    }
}

// ---------------------------------------------------------------------
// bq.slow_log
// ---------------------------------------------------------------------

/// `bq.slow_log(query, session, sql, elapsed_us, rows, fingerprint,
/// plan)`: the bounded ring of completed statements over the latency
/// threshold, with the rendered per-operator stats tree per entry.
#[derive(Debug)]
pub struct SlowLogTable {
    log: Arc<SlowLog>,
}

impl SlowLogTable {
    /// A view over `log`.
    pub fn new(log: Arc<SlowLog>) -> SlowLogTable {
        SlowLogTable { log }
    }
}

impl VirtualTable for SlowLogTable {
    fn name(&self) -> &'static str {
        "bq.slow_log"
    }

    fn snapshot(&self) -> Result<Relation> {
        let mut rel = Relation::with_schema(&[
            ("query", Type::Int),
            ("session", Type::Int),
            ("sql", Type::Str),
            ("elapsed_us", Type::Int),
            ("rows", Type::Int),
            ("fingerprint", Type::Str),
            ("plan", Type::Str),
        ])?;
        for e in self.log.entries() {
            rel.insert(Tuple::new(vec![
                Value::Int(e.query as i64),
                Value::Int(e.session as i64),
                Value::str(e.sql),
                Value::Int(e.elapsed_us as i64),
                Value::Int(e.rows as i64),
                Value::str(format!("{:016x}", e.fingerprint)),
                Value::str(e.plan),
            ]))?;
        }
        Ok(rel)
    }
}

// ---------------------------------------------------------------------
// bq.sessions
// ---------------------------------------------------------------------

/// One connected session, as published by a front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRow {
    /// Session (connection) id.
    pub session: u64,
    /// Peer address, or a marker like `embedded`.
    pub peer: String,
    /// Execution mode the session runs under.
    pub mode: String,
    /// Rendered session limits (`mem=64MiB deadline=500ms` or `none`).
    pub limits: String,
    /// Is a transaction open on this session?
    pub txn: bool,
}

/// Shared registry behind `bq.sessions`. The engine owns one; a server
/// front-end clones it and upserts/removes rows as connections come and
/// go. Embedded-only processes simply leave it empty.
#[derive(Debug, Clone, Default)]
pub struct SessionRegistry {
    inner: Arc<Mutex<BTreeMap<u64, SessionRow>>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Insert or update one session's row.
    pub fn upsert(&self, row: SessionRow) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(row.session, row);
    }

    /// Remove a closed session.
    pub fn remove(&self, session: u64) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session);
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the live sessions, by id.
    pub fn snapshot(&self) -> Vec<SessionRow> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }
}

/// `bq.sessions(session, peer, mode, limits, txn)` over a
/// [`SessionRegistry`].
#[derive(Debug)]
pub struct SessionsTable {
    registry: SessionRegistry,
}

impl SessionsTable {
    /// A view over `registry`.
    pub fn new(registry: SessionRegistry) -> SessionsTable {
        SessionsTable { registry }
    }
}

impl VirtualTable for SessionsTable {
    fn name(&self) -> &'static str {
        "bq.sessions"
    }

    fn snapshot(&self) -> Result<Relation> {
        let mut rel = Relation::with_schema(&[
            ("session", Type::Int),
            ("peer", Type::Str),
            ("mode", Type::Str),
            ("limits", Type::Str),
            ("txn", Type::Bool),
        ])?;
        for row in self.registry.snapshot() {
            rel.insert(Tuple::new(vec![
                Value::Int(row.session as i64),
                Value::str(row.peer),
                Value::str(row.mode),
                Value::str(row.limits),
                Value::Bool(row.txn),
            ]))?;
        }
        Ok(rel)
    }
}

// ---------------------------------------------------------------------
// bq.replicas
// ---------------------------------------------------------------------

/// One subscribed replica, as published by the primary's shipping loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaRow {
    /// Subscriber id (the server session id of the replication stream).
    pub id: u64,
    /// Peer address of the replica connection.
    pub endpoint: String,
    /// Stream state: `bootstrapping`, `streaming`, or `stalled`.
    pub state: String,
    /// Highest WAL byte offset the replica has acknowledged as applied.
    pub acked: u64,
    /// Highest WAL byte offset shipped to the replica.
    pub shipped: u64,
    /// [`bq_obs::now_us`] timestamp of the last acknowledgement.
    pub last_ack_us: u64,
}

/// Shared registry behind `bq.replicas`. The primary's subscriber loops
/// upsert rows as segments ship and acks arrive; the semi-sync commit
/// wait polls [`ReplicaRegistry::all_acked`].
#[derive(Debug, Clone, Default)]
pub struct ReplicaRegistry {
    inner: Arc<Mutex<BTreeMap<u64, ReplicaRow>>>,
}

impl ReplicaRegistry {
    /// An empty registry.
    pub fn new() -> ReplicaRegistry {
        ReplicaRegistry::default()
    }

    /// Insert or update one replica's row.
    pub fn upsert(&self, row: ReplicaRow) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(row.id, row);
    }

    /// Remove a departed replica.
    pub fn remove(&self, id: u64) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    /// Number of subscribed replicas.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Have all subscribed replicas acknowledged at least `offset`?
    /// Vacuously true with no replicas — the semi-sync commit wait
    /// degrades to primary-only durability when nothing is subscribed.
    pub fn all_acked(&self, offset: u64) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .all(|r| r.acked >= offset)
    }

    /// Snapshot of the subscribed replicas, by id.
    pub fn snapshot(&self) -> Vec<ReplicaRow> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }
}

/// `bq.replicas(replica, endpoint, state, acked_lsn, lag_bytes, lag_ms)`
/// over a [`ReplicaRegistry`]. Lag is computed at snapshot time: bytes
/// shipped but unacknowledged, and wall time since the last ack.
#[derive(Debug)]
pub struct ReplicasTable {
    registry: ReplicaRegistry,
}

impl ReplicasTable {
    /// A view over `registry`.
    pub fn new(registry: ReplicaRegistry) -> ReplicasTable {
        ReplicasTable { registry }
    }
}

impl VirtualTable for ReplicasTable {
    fn name(&self) -> &'static str {
        "bq.replicas"
    }

    fn snapshot(&self) -> Result<Relation> {
        let now = bq_obs::now_us();
        let mut rel = Relation::with_schema(&[
            ("replica", Type::Int),
            ("endpoint", Type::Str),
            ("state", Type::Str),
            ("acked_lsn", Type::Int),
            ("lag_bytes", Type::Int),
            ("lag_ms", Type::Int),
        ])?;
        for row in self.registry.snapshot() {
            let lag_ms = if row.last_ack_us == 0 {
                0
            } else {
                (now.saturating_sub(row.last_ack_us) / 1000) as i64
            };
            rel.insert(Tuple::new(vec![
                Value::Int(row.id as i64),
                Value::str(row.endpoint),
                Value::str(row.state),
                Value::Int(row.acked as i64),
                Value::Int(row.shipped.saturating_sub(row.acked) as i64),
                Value::Int(lag_ms),
            ]))?;
        }
        Ok(rel)
    }
}

// ---------------------------------------------------------------------
// bq.backups
// ---------------------------------------------------------------------

/// One archived backup, as published by the backup engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupRow {
    /// Chain sequence number (also the archive object prefix).
    pub seq: u64,
    /// `full` or `incremental`.
    pub kind: String,
    /// First WAL byte offset the backup covers (equals `wal_end` for a
    /// full backup — the snapshot image subsumes everything before it).
    pub wal_start: u64,
    /// WAL horizon the backup restores to.
    pub wal_end: u64,
    /// Archived payload size in bytes (snapshot image or WAL segment).
    pub bytes: u64,
    /// `complete`, or `failed:<reason>` for an aborted attempt.
    pub state: String,
    /// [`crate::Db::content_fingerprint`] at the backup horizon.
    pub fingerprint: u64,
    /// [`bq_obs::now_us`] timestamp of the attempt.
    pub created_us: u64,
}

/// Shared registry behind `bq.backups`: the backup engine upserts one
/// row per attempt, keyed by chain sequence number.
#[derive(Debug, Clone, Default)]
pub struct BackupRegistry {
    inner: Arc<Mutex<BTreeMap<u64, BackupRow>>>,
}

impl BackupRegistry {
    /// An empty registry.
    pub fn new() -> BackupRegistry {
        BackupRegistry::default()
    }

    /// Insert or update one backup's row.
    pub fn upsert(&self, row: BackupRow) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(row.seq, row);
    }

    /// Number of recorded backup attempts.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded backups, by sequence number.
    pub fn snapshot(&self) -> Vec<BackupRow> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }
}

/// `bq.backups(backup, kind, wal_start, wal_end, bytes, state,
/// fingerprint, age_ms)` over a [`BackupRegistry`]. The fingerprint is
/// rendered in hex like `bq.slow_log` plan fingerprints.
#[derive(Debug)]
pub struct BackupsTable {
    registry: BackupRegistry,
}

impl BackupsTable {
    /// A view over `registry`.
    pub fn new(registry: BackupRegistry) -> BackupsTable {
        BackupsTable { registry }
    }
}

impl VirtualTable for BackupsTable {
    fn name(&self) -> &'static str {
        "bq.backups"
    }

    fn snapshot(&self) -> Result<Relation> {
        let now = bq_obs::now_us();
        let mut rel = Relation::with_schema(&[
            ("backup", Type::Int),
            ("kind", Type::Str),
            ("wal_start", Type::Int),
            ("wal_end", Type::Int),
            ("bytes", Type::Int),
            ("state", Type::Str),
            ("fingerprint", Type::Str),
            ("age_ms", Type::Int),
        ])?;
        for row in self.registry.snapshot() {
            let age_ms = (now.saturating_sub(row.created_us) / 1000) as i64;
            rel.insert(Tuple::new(vec![
                Value::Int(row.seq as i64),
                Value::str(row.kind),
                Value::Int(row.wal_start as i64),
                Value::Int(row.wal_end as i64),
                Value::Int(row.bytes as i64),
                Value::str(row.state),
                Value::str(format!("{:016x}", row.fingerprint)),
                Value::Int(age_ms),
            ]))?;
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slowlog::SlowEntry;

    #[test]
    fn metrics_snapshot_has_rows_and_schema() {
        bq_obs::counter!("bq_core_vtab_selftest_total", "vtab self-test").inc();
        let rel = MetricsTable.snapshot().unwrap();
        assert_eq!(rel.schema().arity(), 6);
        assert!(rel
            .iter()
            .any(|t| t.get(0) == &Value::str("bq_core_vtab_selftest_total")));
    }

    #[test]
    fn failpoints_snapshot_covers_the_catalog() {
        let rel = FailpointsTable.snapshot().unwrap();
        assert_eq!(rel.len(), bq_faults::CATALOG.len());
    }

    #[test]
    fn running_queries_guard_removes_on_drop() {
        let rq = RunningQueries::new();
        let guard = rq.track(7, 3, "sql", "select x from r");
        assert_eq!(rq.snapshot().len(), 1);
        let rel = QueriesTable::new(rq.clone()).snapshot().unwrap();
        assert_eq!(rel.len(), 1);
        let row = rel.iter().next().unwrap();
        assert_eq!(row.get(0), &Value::Int(7));
        assert_eq!(row.get(5), &Value::str("running"));
        drop(guard);
        assert!(rq.snapshot().is_empty());
    }

    #[test]
    fn tracked_sql_is_truncated() {
        let rq = RunningQueries::new();
        let long = "s".repeat(10_000);
        let _g = rq.track(1, 0, "sql", &long);
        let (_, run) = rq.snapshot().pop().unwrap();
        assert!(run.sql.len() <= MAX_TRACKED_SQL);
    }

    #[test]
    fn slow_log_table_renders_entries() {
        let log = Arc::new(SlowLog::new());
        log.record(SlowEntry {
            query: 42,
            session: 1,
            sql: "select a from r".to_string(),
            elapsed_us: 1234,
            rows: 10,
            fingerprint: 0xdead_beef,
            plan: "SeqScan [r]  (rows=10)".to_string(),
        });
        let rel = SlowLogTable::new(log).snapshot().unwrap();
        assert_eq!(rel.len(), 1);
        let row = rel.iter().next().unwrap();
        assert_eq!(row.get(0), &Value::Int(42));
        assert_eq!(row.get(5), &Value::str("00000000deadbeef"));
    }

    #[test]
    fn replica_registry_tracks_acks_and_lag() {
        let reg = ReplicaRegistry::new();
        assert!(reg.all_acked(u64::MAX), "vacuously true with no replicas");
        reg.upsert(ReplicaRow {
            id: 3,
            endpoint: "127.0.0.1:5000".to_string(),
            state: "streaming".to_string(),
            acked: 100,
            shipped: 164,
            last_ack_us: bq_obs::now_us(),
        });
        assert!(reg.all_acked(100));
        assert!(!reg.all_acked(101));
        let rel = ReplicasTable::new(reg.clone()).snapshot().unwrap();
        assert_eq!(rel.len(), 1);
        let row = rel.iter().next().unwrap();
        assert_eq!(row.get(0), &Value::Int(3));
        assert_eq!(row.get(3), &Value::Int(100));
        assert_eq!(row.get(4), &Value::Int(64));
        reg.remove(3);
        assert!(reg.is_empty());
    }

    #[test]
    fn session_registry_round_trips() {
        let reg = SessionRegistry::new();
        reg.upsert(SessionRow {
            session: 1,
            peer: "127.0.0.1:9".to_string(),
            mode: "parallel".to_string(),
            limits: "none".to_string(),
            txn: false,
        });
        let rel = SessionsTable::new(reg.clone()).snapshot().unwrap();
        assert_eq!(rel.len(), 1);
        reg.remove(1);
        assert!(reg.is_empty());
    }
}
