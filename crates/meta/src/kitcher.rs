//! Footnote 11 — Kitcher's population-genetics argument for research
//! diversity.
//!
//! "Natural scientists are known to hold on to paradigms even after they
//! have been undeniably falsified; Philip Kitcher [Ki] uses a simple
//! population genetics model to argue that such diversity is beneficial
//! and inevitable."
//!
//! Model: a community of researchers splits effort between two paradigms.
//! The expected payoff of working on paradigm `i` has *diminishing
//! returns* in the fraction already working on it (credit is shared), so
//! the replicator dynamics converge to an interior equilibrium: some
//! researchers keep working on the "worse" paradigm — diversity persists,
//! and the community-optimal allocation is interior too.

/// The two-paradigm Kitcher model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KitcherModel {
    /// Intrinsic promise of paradigm A (probability-of-success scale).
    pub value_a: f64,
    /// Intrinsic promise of paradigm B.
    pub value_b: f64,
}

impl KitcherModel {
    /// Expected *per-capita* payoff of a paradigm with promise `v` when a
    /// fraction `x` of the community works on it: the paradigm succeeds
    /// with probability `v·(1 − e^{−κx})` (more workers, more likely, with
    /// saturation) and the credit is shared among the `x` workers.
    fn per_capita(v: f64, x: f64) -> f64 {
        const KAPPA: f64 = 3.0;
        if x <= 0.0 {
            // Marginal payoff of being the first worker.
            v * KAPPA
        } else {
            v * (1.0 - (-KAPPA * x).exp()) / x
        }
    }

    /// Per-capita payoffs `(A, B)` at allocation `x` (fraction on A).
    pub fn payoffs(&self, x: f64) -> (f64, f64) {
        (
            Self::per_capita(self.value_a, x),
            Self::per_capita(self.value_b, 1.0 - x),
        )
    }

    /// Community success probability at allocation `x` (what a planner
    /// would maximize): either paradigm delivering counts.
    pub fn community_value(&self, x: f64) -> f64 {
        const KAPPA: f64 = 3.0;
        let pa = self.value_a * (1.0 - (-KAPPA * x).exp());
        let pb = self.value_b * (1.0 - (-KAPPA * (1.0 - x)).exp());
        pa + pb - pa * pb
    }

    /// The planner's optimal allocation (grid search).
    pub fn optimal_allocation(&self) -> f64 {
        (0..=1000)
            .map(|i| i as f64 / 1000.0)
            .max_by(|&a, &b| {
                self.community_value(a)
                    .partial_cmp(&self.community_value(b))
                    .expect("finite")
            })
            .expect("nonempty grid")
    }
}

/// One replicator step: researchers drift toward the paradigm with the
/// higher per-capita payoff. Returns the new fraction on A.
pub fn replicator_step(model: &KitcherModel, x: f64, rate: f64) -> f64 {
    let (pa, pb) = model.payoffs(x);
    let avg = x * pa + (1.0 - x) * pb;
    if avg == 0.0 {
        return x;
    }
    let next = x + rate * x * (pa - avg);
    next.clamp(0.0, 1.0)
}

/// Iterate the replicator dynamics to (approximate) convergence.
pub fn equilibrium(model: &KitcherModel, x0: f64) -> f64 {
    let mut x = x0;
    for _ in 0..100_000 {
        let next = replicator_step(model, x, 0.01);
        if (next - x).abs() < 1e-12 {
            return next;
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_paradigms_split_evenly() {
        let m = KitcherModel {
            value_a: 0.5,
            value_b: 0.5,
        };
        let eq = equilibrium(&m, 0.3);
        assert!((eq - 0.5).abs() < 0.01, "symmetric equilibrium, got {eq}");
    }

    #[test]
    fn diversity_persists_even_with_a_clearly_better_paradigm() {
        // The core Kitcher point: the falsified/worse paradigm keeps a
        // nonzero share of the community.
        let m = KitcherModel {
            value_a: 0.8,
            value_b: 0.3,
        };
        let eq = equilibrium(&m, 0.5);
        assert!(eq > 0.55, "the better paradigm attracts a majority: {eq}");
        assert!(eq < 0.98, "but the worse one retains workers: {eq}");
    }

    #[test]
    fn equilibrium_is_independent_of_start() {
        let m = KitcherModel {
            value_a: 0.7,
            value_b: 0.4,
        };
        let a = equilibrium(&m, 0.1);
        let b = equilibrium(&m, 0.9);
        assert!((a - b).abs() < 0.02, "interior attractor: {a} vs {b}");
    }

    #[test]
    fn planner_also_prefers_an_interior_allocation() {
        let m = KitcherModel {
            value_a: 0.8,
            value_b: 0.3,
        };
        let opt = m.optimal_allocation();
        assert!(
            opt > 0.05 && opt < 0.95,
            "hedging is community-optimal too: {opt}"
        );
    }

    #[test]
    fn payoffs_have_diminishing_returns() {
        let m = KitcherModel {
            value_a: 0.6,
            value_b: 0.6,
        };
        let (few, _) = m.payoffs(0.1);
        let (many, _) = m.payoffs(0.9);
        assert!(few > many, "per-capita payoff falls with crowding");
    }

    #[test]
    fn replicator_moves_toward_better_payoff() {
        let m = KitcherModel {
            value_a: 0.9,
            value_b: 0.1,
        };
        let x = 0.2; // A underpopulated relative to its promise
        let next = replicator_step(&m, x, 0.05);
        assert!(next > x, "flow toward the more promising paradigm");
    }
}
