//! # bq-meta
//!
//! The paper's *own* quantitative content: executable versions of its
//! figures and of the models it sketches in prose and footnotes.
//!
//! * [`kuhn`] — **Figure 1**: the stages of the scientific process as a
//!   stochastic stage machine (immature science → normal science → crisis
//!   → revolution → …), with anomaly accumulation driving transitions.
//! * [`graph`] — **Figure 2**: applied science as a random
//!   research-interaction graph over a theory↔practice spectrum; healthy =
//!   one giant, small-diameter component (Erdős–Rényi [ER]); crisis = same
//!   average degree, low connectivity, long theory→practice paths.
//! * [`pods`] — **Figure 3**: PODS paper counts in five areas, 1982–1995,
//!   as two-year moving averages; footnote 10's raw Logic-Databases series
//!   is the embedded ground truth.
//! * [`series`] — time-series utilities (moving averages, autocorrelation,
//!   DFT) shared by the retrospective analyses.
//! * [`harmonic`] — footnote 10's two-year harmonic and the
//!   program-committee overcorrection model that explains it.
//! * [`volterra`] — §6's Volterra analogy: a Lotka–Volterra multi-species
//!   integrator whose successive peaks mirror the succession of research
//!   traditions.
//! * [`kitcher`] — footnote 11: Kitcher's population-genetics argument
//!   that a community hedging across paradigms is beneficial and
//!   inevitable, as replicator dynamics.

pub mod graph;
pub mod harmonic;
pub mod kitcher;
pub mod kuhn;
pub mod pods;
pub mod series;
pub mod volterra;

pub use graph::{GraphHealth, ResearchGraph};
pub use harmonic::{fit_pc_model, PcModel};
pub use kitcher::{replicator_step, KitcherModel};
pub use kuhn::{KuhnModel, Stage};
pub use pods::{Area, PodsDataset};
pub use series::{autocorrelation, dft_magnitude, moving_average};
pub use volterra::{LotkaVolterra, Species};
