//! Time-series utilities: moving averages, autocorrelation, and a small
//! DFT — the toolkit behind the Figure-3 and footnote-10 analyses.

/// Centered-on-the-right moving average of window `w`: element `i` of the
/// output averages inputs `i-w+1 ..= i`. The paper plots "averages for the
/// two-year period ending in the year indicated", i.e. `w = 2`.
pub fn moving_average(series: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1);
    let mut out = Vec::with_capacity(series.len().saturating_sub(w - 1));
    for i in (w - 1)..series.len() {
        let sum: f64 = series[i + 1 - w..=i].iter().sum();
        out.push(sum / w as f64);
    }
    out
}

/// Sample autocorrelation at lag `k` (biased estimator, standard form).
pub fn autocorrelation(series: &[f64], k: usize) -> f64 {
    let n = series.len();
    assert!(k < n, "lag must be below series length");
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - k)
        .map(|i| (series[i] - mean) * (series[i + k] - mean))
        .sum();
    num / denom
}

/// Magnitude of the DFT at integer frequency `freq` (cycles over the whole
/// series). `freq = n/2` is the Nyquist (period-2) component.
pub fn dft_magnitude(series: &[f64], freq: usize) -> f64 {
    let n = series.len() as f64;
    let mut re = 0.0;
    let mut im = 0.0;
    for (t, &x) in series.iter().enumerate() {
        let angle = -2.0 * std::f64::consts::PI * freq as f64 * t as f64 / n;
        re += x * angle.cos();
        im += x * angle.sin();
    }
    (re * re + im * im).sqrt()
}

/// The dominant nonzero frequency of a (mean-removed) series.
pub fn dominant_frequency(series: &[f64]) -> usize {
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let centered: Vec<f64> = series.iter().map(|x| x - mean).collect();
    (1..=series.len() / 2)
        .max_by(|&a, &b| {
            dft_magnitude(&centered, a)
                .partial_cmp(&dft_magnitude(&centered, b))
                .expect("finite magnitudes")
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_window_two() {
        let s = [10.0, 14.0, 9.0, 18.0];
        let ma = moving_average(&s, 2);
        assert_eq!(ma, vec![12.0, 11.5, 13.5]);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&s, 1), s.to_vec());
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative_at_lag_one() {
        let s = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&s, 1) < -0.8);
        assert!(autocorrelation(&s, 2) > 0.6);
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_autocorrelation() {
        let s = [5.0; 6];
        assert_eq!(autocorrelation(&s, 1), 0.0);
    }

    #[test]
    fn dft_finds_period_two() {
        let s = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        // Period 2 over 6 samples = frequency 3 (Nyquist).
        assert_eq!(dominant_frequency(&s), 3);
        assert!(dft_magnitude(&s, 3) > dft_magnitude(&s, 1));
    }

    #[test]
    fn dft_finds_slow_cycle() {
        let n = 16;
        let s: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / n as f64).sin())
            .collect();
        assert_eq!(dominant_frequency(&s), 1);
    }

    #[test]
    fn smoothing_kills_the_two_year_harmonic() {
        // The paper smooths precisely because the period-2 component is
        // "too jerky to display".
        let s = [10.0, 14.0, 9.0, 18.0, 13.0, 16.0, 14.0, 11.0];
        let raw_nyquist = {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let c: Vec<f64> = s.iter().map(|x| x - mean).collect();
            dft_magnitude(&c, c.len() / 2)
        };
        let smooth = moving_average(&s, 2);
        let mean = smooth.iter().sum::<f64>() / smooth.len() as f64;
        let c: Vec<f64> = smooth.iter().map(|x| x - mean).collect();
        // Compare the same (period-2) component; the smoothed series is
        // one shorter, so use magnitude at its own Nyquist-equivalent.
        let smooth_nyquist = dft_magnitude(&c, c.len() / 2);
        assert!(
            smooth_nyquist < raw_nyquist / 2.0,
            "2-year averaging suppresses the harmonic: {smooth_nyquist} vs {raw_nyquist}"
        );
    }
}
