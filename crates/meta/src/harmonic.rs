//! Footnote 10 — the two-year harmonic and the program-committee
//! correction model.
//!
//! "What has a one-year memory in science? Program committees! I think we
//! are seeing here the work of committees trying to correct 'excesses' (in
//! one direction or the other) of the previous committee."
//!
//! We model a committee that targets a drifting trend but *overcorrects*
//! against last year's deviation:
//!
//! ```text
//! count(t) = trend(t) − γ · (count(t−1) − trend(t−1)) + noise
//! ```
//!
//! With γ > 0 the deviations alternate in sign, producing exactly the
//! period-2 harmonic the footnote describes. [`fit_pc_model`] recovers γ
//! from a series by regressing successive detrended deviations; on the
//! footnote-10 series the fitted γ is strongly positive, and the model's
//! simulated series reproduces the alternation.

use crate::series::{autocorrelation, dominant_frequency};

/// A fitted program-committee overcorrection model.
#[derive(Debug, Clone, PartialEq)]
pub struct PcModel {
    /// Overcorrection strength γ (positive = alternation).
    pub gamma: f64,
    /// The linear trend `a + b·t` the committee tracks.
    pub trend: (f64, f64),
    /// Lag-1 autocorrelation of the detrended series (diagnostic;
    /// strongly negative when the harmonic is present).
    pub lag1_autocorr: f64,
    /// Dominant DFT frequency of the detrended series (in periods:
    /// `len / freq`); 2.0 means the two-year harmonic dominates.
    pub dominant_period: f64,
}

/// Least-squares linear trend `a + b·t`.
fn linear_trend(series: &[f64]) -> (f64, f64) {
    let n = series.len() as f64;
    let tbar = (n - 1.0) / 2.0;
    let ybar = series.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &y) in series.iter().enumerate() {
        num += (t as f64 - tbar) * (y - ybar);
        den += (t as f64 - tbar).powi(2);
    }
    let b = if den == 0.0 { 0.0 } else { num / den };
    (ybar - b * tbar, b)
}

/// Fit the overcorrection model to a series.
pub fn fit_pc_model(series: &[f64]) -> PcModel {
    assert!(series.len() >= 4, "need at least 4 points");
    let trend = linear_trend(series);
    let detrended: Vec<f64> = series
        .iter()
        .enumerate()
        .map(|(t, &y)| y - (trend.0 + trend.1 * t as f64))
        .collect();
    // Regress d(t) on d(t-1): slope = −γ.
    let mut num = 0.0;
    let mut den = 0.0;
    for t in 1..detrended.len() {
        num += detrended[t] * detrended[t - 1];
        den += detrended[t - 1] * detrended[t - 1];
    }
    // Guard against numerically-zero residuals (a perfect linear trend).
    let gamma = if den < 1e-9 { 0.0 } else { -(num / den) };
    let lag1 = autocorrelation(&detrended, 1);
    let freq = dominant_frequency(&detrended).max(1);
    PcModel {
        gamma,
        trend,
        lag1_autocorr: lag1,
        dominant_period: detrended.len() as f64 / freq as f64,
    }
}

impl PcModel {
    /// Simulate `len` years from the fitted model (deterministic: no noise
    /// term), starting from an initial deviation.
    pub fn simulate(&self, len: usize, initial_deviation: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        let mut dev = initial_deviation;
        for t in 0..len {
            let trend = self.trend.0 + self.trend.1 * t as f64;
            out.push(trend + dev);
            dev *= -self.gamma;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pods::PodsDataset;

    #[test]
    fn footnote10_has_the_two_year_harmonic() {
        let series = PodsDataset::embedded().footnote10();
        let model = fit_pc_model(&series);
        assert!(
            model.lag1_autocorr < -0.3,
            "strong alternation expected, lag-1 = {}",
            model.lag1_autocorr
        );
        assert!(
            model.gamma > 0.3,
            "committees overcorrect: γ = {}",
            model.gamma
        );
        assert!(
            (model.dominant_period - 2.0).abs() < 0.5,
            "dominant period ≈ 2 years, got {}",
            model.dominant_period
        );
    }

    #[test]
    fn pure_alternation_fits_gamma_one() {
        let s = [10.0, 6.0, 10.0, 6.0, 10.0, 6.0, 10.0, 6.0];
        let m = fit_pc_model(&s);
        // Finite-sample detrending bias keeps this a bit under 1.
        assert!((m.gamma - 1.0).abs() < 0.15, "γ = {}", m.gamma);
    }

    #[test]
    fn smooth_trend_fits_gamma_near_zero_or_negative() {
        let s: Vec<f64> = (0..10).map(|t| 5.0 + 0.8 * t as f64).collect();
        let m = fit_pc_model(&s);
        assert!(
            m.gamma.abs() < 0.3,
            "no harmonic in a clean trend: γ = {}",
            m.gamma
        );
    }

    #[test]
    fn simulation_reproduces_alternation() {
        let series = PodsDataset::embedded().footnote10();
        let model = fit_pc_model(&series);
        let sim = model.simulate(7, series[0] - model.trend.0);
        // Deviations alternate in sign.
        let devs: Vec<f64> = sim
            .iter()
            .enumerate()
            .map(|(t, &y)| y - (model.trend.0 + model.trend.1 * t as f64))
            .collect();
        for w in devs.windows(2) {
            assert!(
                w[0] * w[1] <= 1e-9,
                "consecutive deviations alternate: {devs:?}"
            );
        }
    }

    #[test]
    fn linear_trend_recovery() {
        let s: Vec<f64> = (0..8).map(|t| 3.0 + 2.0 * t as f64).collect();
        let m = fit_pc_model(&s);
        assert!((m.trend.0 - 3.0).abs() < 1e-9);
        assert!((m.trend.1 - 2.0).abs() < 1e-9);
    }
}
