//! Figure 2 — applied science as a research-interaction graph.
//!
//! Research units sit on a theory↔practice spectrum (`theoriness ∈ [0,1]`)
//! and influence each other along edges. The *healthy* snapshot is "any
//! decent random graph [ER]": a giant component of reasonably small
//! diameter spanning the whole spectrum, with "most of theory within a few
//! hops from practice". The *crisis* snapshot "differs only in subtle
//! global aspects": the same average degree, but edges drawn within narrow
//! theoriness bands, so connectivity is low and the little that exists is
//! via long paths. Experiment **E2** measures exactly the quantities the
//! figure narrates: giant-component fraction, diameter, and mean
//! theory→practice distance.

use bq_util::{Rng, SplitMix64};
use std::collections::VecDeque;

/// A research-interaction graph.
#[derive(Debug, Clone)]
pub struct ResearchGraph {
    /// Number of research units.
    pub n: usize,
    /// Position of each unit on the theory(1.0)↔practice(0.0) spectrum.
    pub theoriness: Vec<f64>,
    /// Undirected influence edges.
    pub edges: Vec<(usize, usize)>,
    adj: Vec<Vec<usize>>,
}

/// The health metrics Figure 2 contrasts.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphHealth {
    /// Fraction of units inside the largest component.
    pub giant_fraction: f64,
    /// Diameter of the largest component (longest shortest path).
    pub giant_diameter: usize,
    /// Mean shortest-path hops from theoretical units (theoriness > 0.8)
    /// to their nearest practical unit (theoriness < 0.2); `None` when
    /// some theoretical unit cannot reach practice at all.
    pub mean_theory_practice_hops: Option<f64>,
    /// Fraction of theory units with *no* path to practice ("autistic
    /// theories", in the paper's words).
    pub disconnected_theory_fraction: f64,
    /// Average degree (the quantity held equal between the snapshots).
    pub avg_degree: f64,
}

impl ResearchGraph {
    fn build(n: usize, theoriness: Vec<f64>, edges: Vec<(usize, usize)>) -> ResearchGraph {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        ResearchGraph {
            n,
            theoriness,
            edges,
            adj,
        }
    }

    /// The healthy snapshot: Erdős–Rényi `G(n, p)` with `p` chosen for the
    /// given expected average degree; theoriness uniform over the spectrum.
    pub fn healthy(n: usize, avg_degree: f64, seed: u64) -> ResearchGraph {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let theoriness: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
        let p = avg_degree / (n as f64 - 1.0);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_f64() < p {
                    edges.push((u, v));
                }
            }
        }
        ResearchGraph::build(n, theoriness, edges)
    }

    /// The crisis snapshot: same expected average degree, but units huddle
    /// in `n_clusters` introverted communities along the theoriness
    /// spectrum — "tangents and introverted components are the rule". A
    /// sparse set of bridges between *adjacent* clusters supplies "the
    /// little connectivity that exists … via long paths": each adjacent
    /// pair gets one bridge with probability `bridge_pct`%.
    pub fn crisis(
        n: usize,
        avg_degree: f64,
        n_clusters: usize,
        bridge_pct: u32,
        seed: u64,
    ) -> ResearchGraph {
        let mut rng = SplitMix64::seed_from_u64(seed);
        // Theoriness clustered: cluster c owns the band [c/k, (c+1)/k).
        let cluster: Vec<usize> = (0..n).map(|i| i * n_clusters / n).collect();
        let theoriness: Vec<f64> = cluster
            .iter()
            .map(|&c| (c as f64 + rng.gen_f64()) / n_clusters as f64)
            .collect();
        // Intra-cluster edge probability chosen to keep avg degree equal.
        let cluster_size = (n / n_clusters).max(2) as f64;
        let p_in = (avg_degree / (cluster_size - 1.0)).min(1.0);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if cluster[u] == cluster[v] && rng.gen_f64() < p_in {
                    edges.push((u, v));
                }
            }
        }
        // Sparse bridges between adjacent clusters only.
        for c in 0..n_clusters.saturating_sub(1) {
            if rng.gen_pct(bridge_pct) {
                let members_a: Vec<usize> = (0..n).filter(|&i| cluster[i] == c).collect();
                let members_b: Vec<usize> = (0..n).filter(|&i| cluster[i] == c + 1).collect();
                if let (Some(&a), Some(&b)) = (members_a.first(), members_b.first()) {
                    edges.push((a, b));
                }
            }
        }
        ResearchGraph::build(n, theoriness, edges)
    }

    /// Add exploratory research units: each new unit sits at a random
    /// point of the spectrum and draws `edges_each` edges to uniformly
    /// random existing units — the paper's "value of a modest level of
    /// exploratory activity … fill[ing] previously uncharted regions of
    /// the space by nodes and, more importantly, edges in all directions".
    pub fn with_explorers(&self, n_units: usize, edges_each: usize, seed: u64) -> ResearchGraph {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut theoriness = self.theoriness.clone();
        let mut edges = self.edges.clone();
        let old_n = self.n;
        for i in 0..n_units {
            let id = old_n + i;
            theoriness.push(rng.gen_f64());
            for _ in 0..edges_each {
                let target = rng.gen_index(old_n);
                edges.push((target, id));
            }
        }
        ResearchGraph::build(old_n + n_units, theoriness, edges)
    }

    /// Connected components (as lists of vertex ids).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in &self.adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            out.push(comp);
        }
        out.sort_by_key(|c| std::cmp::Reverse(c.len()));
        out
    }

    /// BFS distances from `start` (usize::MAX = unreachable).
    pub fn bfs(&self, start: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Exact diameter of the largest component (all-pairs BFS; fine for
    /// the n ≤ a few thousand this model uses).
    pub fn giant_diameter(&self) -> usize {
        let comps = self.components();
        let Some(giant) = comps.first() else { return 0 };
        let mut diameter = 0;
        for &u in giant {
            let dist = self.bfs(u);
            for &v in giant {
                if dist[v] != usize::MAX {
                    diameter = diameter.max(dist[v]);
                }
            }
        }
        diameter
    }

    /// Compute the Figure-2 health report.
    pub fn health(&self) -> GraphHealth {
        let comps = self.components();
        let giant = comps.first().map_or(0, Vec::len);
        let theory_units: Vec<usize> = (0..self.n).filter(|&u| self.theoriness[u] > 0.8).collect();
        let practice_units: Vec<usize> =
            (0..self.n).filter(|&u| self.theoriness[u] < 0.2).collect();

        let mut hops = Vec::new();
        let mut disconnected = 0usize;
        for &t in &theory_units {
            let dist = self.bfs(t);
            let nearest = practice_units
                .iter()
                .map(|&p| dist[p])
                .min()
                .unwrap_or(usize::MAX);
            if nearest == usize::MAX {
                disconnected += 1;
            } else {
                hops.push(nearest as f64);
            }
        }
        GraphHealth {
            giant_fraction: giant as f64 / self.n.max(1) as f64,
            giant_diameter: self.giant_diameter(),
            mean_theory_practice_hops: if hops.is_empty() {
                None
            } else {
                // Mean over the theory units that *can* reach practice;
                // the stranded ones are reported separately.
                Some(hops.iter().sum::<f64>() / hops.len() as f64)
            },
            disconnected_theory_fraction: if theory_units.is_empty() {
                0.0
            } else {
                disconnected as f64 / theory_units.len() as f64
            },
            avg_degree: 2.0 * self.edges.len() as f64 / self.n.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_graph_has_giant_component() {
        // ER with avg degree 4 >> 1: giant component w.h.p.
        let g = ResearchGraph::healthy(400, 4.0, 42);
        let h = g.health();
        assert!(
            h.giant_fraction > 0.9,
            "giant fraction {}",
            h.giant_fraction
        );
        assert!(
            h.giant_diameter <= 20,
            "small diameter, got {}",
            h.giant_diameter
        );
    }

    #[test]
    fn crisis_graph_fragments_at_equal_degree() {
        let healthy = ResearchGraph::healthy(400, 4.0, 7).health();
        let crisis = ResearchGraph::crisis(400, 4.0, 20, 30, 7).health();
        // Degrees comparable (within 50%).
        assert!(
            (crisis.avg_degree - healthy.avg_degree).abs() < healthy.avg_degree * 0.5,
            "avg degrees: healthy {} vs crisis {}",
            healthy.avg_degree,
            crisis.avg_degree
        );
        // But connectivity collapses.
        assert!(
            crisis.giant_fraction < healthy.giant_fraction - 0.3,
            "crisis {} vs healthy {}",
            crisis.giant_fraction,
            healthy.giant_fraction
        );
        assert!(
            crisis.disconnected_theory_fraction > healthy.disconnected_theory_fraction,
            "theory gets stranded in crisis"
        );
    }

    #[test]
    fn crisis_paths_are_long_when_bridged() {
        // With every bridge present, the giant component is a chain of
        // clusters: connected but with a far larger diameter than ER.
        let healthy = ResearchGraph::healthy(400, 4.0, 11).health();
        let crisis = ResearchGraph::crisis(400, 4.0, 20, 100, 11).health();
        assert!(
            crisis.giant_diameter > 2 * healthy.giant_diameter,
            "long paths in crisis: {} vs {}",
            crisis.giant_diameter,
            healthy.giant_diameter
        );
    }

    #[test]
    fn theory_reaches_practice_quickly_when_healthy() {
        let h = ResearchGraph::healthy(500, 6.0, 3).health();
        let hops = h.mean_theory_practice_hops.expect("connected");
        assert!(hops < 6.0, "most of theory within a few hops: {hops}");
    }

    #[test]
    fn components_partition_vertices() {
        let g = ResearchGraph::healthy(100, 2.0, 9);
        let comps = g.components();
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        // sorted by size descending
        for w in comps.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = ResearchGraph::build(3, vec![0.0, 0.5, 1.0], vec![(0, 1), (1, 2)]);
        let d = g.bfs(0);
        assert_eq!(d, vec![0, 1, 2]);
        assert_eq!(g.giant_diameter(), 2);
    }

    #[test]
    fn empty_graph_health_is_degenerate() {
        let g = ResearchGraph::build(3, vec![0.1, 0.5, 0.9], vec![]);
        let h = g.health();
        assert!((h.giant_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.giant_diameter, 0);
        assert_eq!(h.disconnected_theory_fraction, 1.0);
        assert_eq!(h.mean_theory_practice_hops, None);
    }

    #[test]
    fn exploration_reconnects_a_crisis_graph() {
        // "Well-targeted exploratory theory connects several of [the small
        // research traditions], and a new healthy state emerges."
        let crisis = ResearchGraph::crisis(400, 4.0, 20, 20, 3);
        let before = crisis.health();
        // 5% exploratory units, each wiring 6 random edges.
        let after = crisis.with_explorers(20, 6, 3).health();
        assert!(
            after.giant_fraction > before.giant_fraction + 0.3,
            "exploration heals connectivity: {} -> {}",
            before.giant_fraction,
            after.giant_fraction
        );
        assert!(
            after.disconnected_theory_fraction < before.disconnected_theory_fraction,
            "stranded theory reconnects"
        );
    }

    #[test]
    fn determinism_by_seed() {
        let a = ResearchGraph::healthy(50, 3.0, 5);
        let b = ResearchGraph::healthy(50, 3.0, 5);
        assert_eq!(a.edges, b.edges);
        let c = ResearchGraph::healthy(50, 3.0, 6);
        assert_ne!(a.edges, c.edges);
    }
}
