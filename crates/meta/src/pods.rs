//! Figure 3 — the PODS retrospective: paper counts in five areas,
//! 1982–1995, plotted as two-year averages.
//!
//! Ground truth exposed by the paper itself:
//!
//! * footnote 10: the raw Logic-Databases series 1986–1992 is
//!   `… 10, 14, 9, 18, 13, 16, 14 …`, with a "strong two-year harmonic";
//! * §6 narrative: 1982–83 are dominated by *relational theory* and
//!   *transaction processing* "almost to the exclusion of anything else";
//!   logic databases erupt in 1986 with "a block of ten papers", rising to
//!   "fourteen the following year", and by 1995 "show definite signs of
//!   waning"; transaction processing declines (with the same two-year
//!   wobble); *complex objects* grows into "the currently important
//!   category"; *access methods* keep "the modest presence they would
//!   maintain throughout the fourteen years".
//!
//! Points not pinned by the text are synthesized to match those shapes and
//! are marked [`Provenance::Synthesized`]; the anchored points are
//! [`Provenance::PaperText`]. EXPERIMENTS.md reports which is which.

use crate::series::moving_average;

/// The five areas of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Area {
    /// Relational theory (dependencies, normalization, views, acyclicity…).
    RelationalTheory,
    /// Transaction processing (concurrency control, recovery, distribution).
    TransactionProcessing,
    /// Logic databases (Datalog, negation, recursive query optimization).
    LogicDatabases,
    /// Complex objects (object-oriented, spatial, constraint databases).
    ComplexObjects,
    /// Data structures and access methods (plus sampling/statistics).
    AccessMethods,
}

impl Area {
    /// All areas, in the order Figure 3 lists them.
    pub const ALL: [Area; 5] = [
        Area::RelationalTheory,
        Area::TransactionProcessing,
        Area::LogicDatabases,
        Area::ComplexObjects,
        Area::AccessMethods,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Area::RelationalTheory => "relational theory",
            Area::TransactionProcessing => "transaction processing",
            Area::LogicDatabases => "logic databases",
            Area::ComplexObjects => "complex objects",
            Area::AccessMethods => "access methods",
        }
    }
}

/// Whether a data point is anchored in the paper's text or synthesized to
/// match the described curve shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Printed in the paper (footnote 10 or explicit narrative numbers).
    PaperText,
    /// Synthesized to match the narrated shape.
    Synthesized,
}

/// The embedded dataset.
#[derive(Debug, Clone)]
pub struct PodsDataset {
    /// First year of the series.
    pub start_year: u32,
    /// Per area: counts per year, with provenance.
    pub counts: Vec<(Area, Vec<(u32, Provenance)>)>,
}

impl Default for PodsDataset {
    fn default() -> Self {
        Self::embedded()
    }
}

use Provenance::{PaperText as P, Synthesized as S};

impl PodsDataset {
    /// The 1982–1995 dataset described above.
    pub fn embedded() -> PodsDataset {
        PodsDataset {
            start_year: 1982,
            counts: vec![
                (
                    Area::RelationalTheory,
                    // Dominant early, "very large but still finite",
                    // declining through the decade.
                    vec![
                        (14, S),
                        (13, S),
                        (12, S),
                        (10, S),
                        (9, S),
                        (7, S),
                        (8, S),
                        (6, S),
                        (5, S),
                        (5, S),
                        (4, S),
                        (3, S),
                        (3, S),
                        (2, S),
                    ],
                ),
                (
                    Area::TransactionProcessing,
                    // Co-dominant early; declines with a two-year wobble.
                    vec![
                        (12, S),
                        (13, S),
                        (10, S),
                        (11, S),
                        (7, S),
                        (9, S),
                        (5, S),
                        (7, S),
                        (4, S),
                        (6, S),
                        (3, S),
                        (4, S),
                        (2, S),
                        (3, S),
                    ],
                ),
                (
                    Area::LogicDatabases,
                    // Near-absent before 1986; then the footnote-10 series
                    // 10,14,9,18,13,16,14 for 1986–1992; waning after.
                    vec![
                        (1, P),
                        (1, S),
                        (2, S),
                        (3, S),
                        (10, P),
                        (14, P),
                        (9, P),
                        (18, P),
                        (13, P),
                        (16, P),
                        (14, P),
                        (9, S),
                        (7, S),
                        (5, S),
                    ],
                ),
                (
                    Area::ComplexObjects,
                    // "Timid and scattered" precursors growing into "the
                    // currently important category".
                    vec![
                        (1, S),
                        (1, S),
                        (2, S),
                        (2, S),
                        (3, S),
                        (3, S),
                        (4, S),
                        (5, S),
                        (6, S),
                        (7, S),
                        (9, S),
                        (10, S),
                        (12, S),
                        (13, S),
                    ],
                ),
                (
                    Area::AccessMethods,
                    // "The modest presence they would maintain throughout".
                    vec![
                        (3, S),
                        (2, S),
                        (3, S),
                        (3, S),
                        (2, S),
                        (3, S),
                        (3, S),
                        (2, S),
                        (3, S),
                        (3, S),
                        (3, S),
                        (2, S),
                        (3, S),
                        (3, S),
                    ],
                ),
            ],
        }
    }

    /// Number of years covered.
    pub fn years(&self) -> usize {
        self.counts.first().map_or(0, |(_, c)| c.len())
    }

    /// Raw yearly series for an area.
    pub fn raw(&self, area: Area) -> Vec<f64> {
        self.counts
            .iter()
            .find(|(a, _)| *a == area)
            .map(|(_, c)| c.iter().map(|&(v, _)| v as f64).collect())
            .unwrap_or_default()
    }

    /// The Figure-3 curve: two-year averages ("averages for the two-year
    /// period ending in the year indicated"), so the series starts one
    /// year later.
    pub fn figure3(&self, area: Area) -> Vec<(u32, f64)> {
        let raw = self.raw(area);
        moving_average(&raw, 2)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (self.start_year + 1 + i as u32, v))
            .collect()
    }

    /// The raw footnote-10 Logic-Databases window (1986–1992).
    pub fn footnote10(&self) -> Vec<f64> {
        let raw = self.raw(Area::LogicDatabases);
        raw[4..11].to_vec()
    }

    /// Year of the smoothed peak for an area.
    pub fn peak_year(&self, area: Area) -> u32 {
        self.figure3(area)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(y, _)| y)
            .expect("nonempty series")
    }

    /// Year of the maximum year-over-year *increase* of the smoothed
    /// curve — footnote 9's observation: "PODS invited talks coincide in
    /// three distinct instances with the maximum derivative in the volume
    /// of the corresponding area."
    pub fn max_derivative_year(&self, area: Area) -> u32 {
        let fig = self.figure3(area);
        fig.windows(2)
            .max_by(|a, b| {
                (a[1].1 - a[0].1)
                    .partial_cmp(&(b[1].1 - b[0].1))
                    .expect("finite")
            })
            .map(|w| w[1].0)
            .expect("series has at least two points")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote10_series_is_verbatim() {
        let d = PodsDataset::embedded();
        assert_eq!(
            d.footnote10(),
            vec![10.0, 14.0, 9.0, 18.0, 13.0, 16.0, 14.0],
            "the only raw series the paper prints must be embedded exactly"
        );
    }

    #[test]
    fn all_series_cover_fourteen_years() {
        let d = PodsDataset::embedded();
        assert_eq!(d.years(), 14, "1982–1995 inclusive");
        for area in Area::ALL {
            assert_eq!(d.raw(area).len(), 14, "{}", area.name());
        }
    }

    #[test]
    fn early_years_dominated_by_two_traditions() {
        let d = PodsDataset::embedded();
        for year in 0..2 {
            let rel = d.raw(Area::RelationalTheory)[year];
            let txn = d.raw(Area::TransactionProcessing)[year];
            let rest: f64 = [
                Area::LogicDatabases,
                Area::ComplexObjects,
                Area::AccessMethods,
            ]
            .iter()
            .map(|&a| d.raw(a)[year])
            .sum();
            assert!(
                rel + txn > 3.0 * rest,
                "1982–83 'almost to the exclusion of anything else'"
            );
        }
    }

    #[test]
    fn logic_db_block_of_ten_in_1986_fourteen_in_1987() {
        let d = PodsDataset::embedded();
        let raw = d.raw(Area::LogicDatabases);
        assert_eq!(raw[4], 10.0, "1986: a block of ten papers");
        assert_eq!(raw[5], 14.0, "1987: fourteen");
    }

    #[test]
    fn peak_ordering_tells_the_succession_story() {
        let d = PodsDataset::embedded();
        let rel = d.peak_year(Area::RelationalTheory);
        let logic = d.peak_year(Area::LogicDatabases);
        let objects = d.peak_year(Area::ComplexObjects);
        assert!(
            rel < logic,
            "relational peaks before logic ({rel} vs {logic})"
        );
        assert!(
            logic < objects,
            "logic peaks before complex objects ({logic} vs {objects})"
        );
    }

    #[test]
    fn logic_db_wanes_by_1995() {
        let d = PodsDataset::embedded();
        let fig = d.figure3(Area::LogicDatabases);
        let peak = fig.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        let last = fig.last().expect("nonempty").1;
        assert!(
            last < peak * 0.5,
            "definite signs of waning: {last} vs peak {peak}"
        );
    }

    #[test]
    fn access_methods_stay_modest_and_flat() {
        let d = PodsDataset::embedded();
        let raw = d.raw(Area::AccessMethods);
        let max = raw.iter().copied().fold(0.0, f64::max);
        let min = raw.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max <= 4.0 && min >= 2.0, "modest presence throughout");
    }

    #[test]
    fn figure3_years_are_offset_by_one() {
        let d = PodsDataset::embedded();
        let fig = d.figure3(Area::LogicDatabases);
        assert_eq!(fig.first().expect("nonempty").0, 1983);
        assert_eq!(fig.last().expect("nonempty").0, 1995);
    }

    #[test]
    fn max_derivative_lands_at_the_logic_db_eruption() {
        // Footnote 9: the 1986/87 invited talk coincides with the maximum
        // derivative of the logic-databases curve.
        let d = PodsDataset::embedded();
        let y = d.max_derivative_year(Area::LogicDatabases);
        assert!(
            (1986..=1988).contains(&y),
            "steepest climb at the eruption, got {y}"
        );
    }

    #[test]
    fn smoothing_matches_hand_computation() {
        let d = PodsDataset::embedded();
        let fig = d.figure3(Area::LogicDatabases);
        // 1987 value = (1986 + 1987)/2 = (10+14)/2 = 12.
        let v1987 = fig.iter().find(|&&(y, _)| y == 1987).expect("1987").1;
        assert_eq!(v1987, 12.0);
    }
}
