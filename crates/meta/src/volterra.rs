//! §6's ecosystem analogy — "the graphs very much recall solutions to
//! Volterra equations for an isolated ecosystem with very aggressive
//! predators [Sig]. The decline of the prey brings about the decline of
//! the predator, who then becomes the prey of the next species."
//!
//! A generalized Lotka–Volterra integrator (fourth-order Runge–Kutta) over
//! an interaction matrix. [`research_succession`] instantiates the
//! food-chain the quote describes — relational theory as the initial prey,
//! logic databases as its aggressive predator, complex objects preying on
//! that — and experiment **E5** checks the successive peaks land in the
//! same order as the Figure-3 curves.

/// One species' parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Species {
    /// Display name.
    pub name: String,
    /// Intrinsic growth rate (positive = grows alone; negative = decays).
    pub growth: f64,
    /// Initial population.
    pub initial: f64,
}

/// A generalized Lotka–Volterra system
/// `dx_i/dt = x_i (growth_i + Σ_j interaction[i][j] · x_j)`.
#[derive(Debug, Clone)]
pub struct LotkaVolterra {
    /// The species.
    pub species: Vec<Species>,
    /// Interaction matrix (`interaction[i][j]` = effect of j on i).
    pub interaction: Vec<Vec<f64>>,
}

impl LotkaVolterra {
    /// Build a system; the matrix must be square and match the species.
    pub fn new(species: Vec<Species>, interaction: Vec<Vec<f64>>) -> LotkaVolterra {
        assert_eq!(species.len(), interaction.len());
        assert!(interaction.iter().all(|row| row.len() == species.len()));
        LotkaVolterra {
            species,
            interaction,
        }
    }

    fn derivatives(&self, x: &[f64]) -> Vec<f64> {
        (0..x.len())
            .map(|i| {
                let inter: f64 = (0..x.len()).map(|j| self.interaction[i][j] * x[j]).sum();
                x[i] * (self.species[i].growth + inter)
            })
            .collect()
    }

    /// Integrate with RK4; returns the trajectory sampled every step
    /// (row = time, column = species).
    pub fn integrate(&self, dt: f64, steps: usize) -> Vec<Vec<f64>> {
        let mut x: Vec<f64> = self.species.iter().map(|s| s.initial).collect();
        let mut out = Vec::with_capacity(steps + 1);
        out.push(x.clone());
        for _ in 0..steps {
            let k1 = self.derivatives(&x);
            let x2: Vec<f64> = x.iter().zip(&k1).map(|(a, k)| a + dt / 2.0 * k).collect();
            let k2 = self.derivatives(&x2);
            let x3: Vec<f64> = x.iter().zip(&k2).map(|(a, k)| a + dt / 2.0 * k).collect();
            let k3 = self.derivatives(&x3);
            let x4: Vec<f64> = x.iter().zip(&k3).map(|(a, k)| a + dt * k).collect();
            let k4 = self.derivatives(&x4);
            for i in 0..x.len() {
                x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                x[i] = x[i].max(0.0); // populations stay nonnegative
            }
            out.push(x.clone());
        }
        out
    }

    /// Time step at which each species peaks (global maximum).
    pub fn peak_times(&self, dt: f64, steps: usize) -> Vec<usize> {
        let traj = self.integrate(dt, steps);
        (0..self.species.len())
            .map(|i| {
                traj.iter()
                    .enumerate()
                    .max_by(|a, b| a.1[i].partial_cmp(&b.1[i]).expect("finite"))
                    .map(|(t, _)| t)
                    .expect("nonempty trajectory")
            })
            .collect()
    }

    /// Time step of each species' *first* peak: the first local maximum
    /// after the population has grown at least 20% above its start. This
    /// is the "succession" reading — Lotka–Volterra systems may oscillate
    /// and re-peak, but the wave fronts arrive in food-chain order.
    pub fn first_peak_times(&self, dt: f64, steps: usize) -> Vec<usize> {
        let traj = self.integrate(dt, steps);
        (0..self.species.len())
            .map(|i| {
                let start = traj[0][i];
                let mut risen = false;
                for t in 1..traj.len() - 1 {
                    risen |= traj[t][i] > start * 1.2;
                    if risen && traj[t][i] >= traj[t - 1][i] && traj[t][i] > traj[t + 1][i] {
                        return t;
                    }
                }
                traj.len() - 1
            })
            .collect()
    }
}

/// The classic two-species predator–prey system.
pub fn classic_predator_prey() -> LotkaVolterra {
    LotkaVolterra::new(
        vec![
            Species {
                name: "prey".into(),
                growth: 1.0,
                initial: 1.0,
            },
            Species {
                name: "predator".into(),
                growth: -1.0,
                initial: 0.5,
            },
        ],
        vec![
            vec![0.0, -1.0], // prey eaten by predator
            vec![1.0, 0.0],  // predator grows on prey
        ],
    )
}

/// The research-tradition food chain of §6: relational theory (growing on
/// the "extensive but finite" problem supply), logic databases preying on
/// it, complex objects preying on logic databases.
pub fn research_succession() -> LotkaVolterra {
    LotkaVolterra::new(
        vec![
            Species {
                name: "relational theory".into(),
                growth: 0.9,
                initial: 1.2,
            },
            Species {
                name: "logic databases".into(),
                growth: -0.4,
                initial: 0.08,
            },
            Species {
                name: "complex objects".into(),
                growth: -0.3,
                initial: 0.04,
            },
        ],
        vec![
            vec![-0.12, -0.9, 0.0], // self-limited (finite problem supply), preyed on
            vec![0.8, -0.05, -0.9], // grows on relational, preyed on by objects
            vec![0.0, 0.7, -0.05],  // grows on logic databases
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_system_oscillates() {
        let sys = classic_predator_prey();
        let traj = sys.integrate(0.01, 3000);
        let prey: Vec<f64> = traj.iter().map(|x| x[0]).collect();
        // Count direction changes: oscillation means several.
        let mut turns = 0;
        for w in prey.windows(3) {
            if (w[1] - w[0]) * (w[2] - w[1]) < 0.0 {
                turns += 1;
            }
        }
        assert!(turns >= 3, "prey population oscillates, turns = {turns}");
    }

    #[test]
    fn predator_peak_lags_prey_peak() {
        let sys = classic_predator_prey();
        let peaks = sys.peak_times(0.01, 800);
        assert!(peaks[1] > peaks[0], "predator peaks after prey: {peaks:?}");
    }

    #[test]
    fn conserved_quantity_roughly_stable() {
        // The classic LV invariant V = x − ln x + y − ln y stays bounded
        // under RK4 with a small step.
        let sys = classic_predator_prey();
        let traj = sys.integrate(0.001, 20_000);
        let v = |x: f64, y: f64| x - x.ln() + y - y.ln();
        let v0 = v(traj[0][0], traj[0][1]);
        for row in traj.iter().step_by(1000) {
            let vi = v(row[0], row[1]);
            assert!((vi - v0).abs() < 0.05, "invariant drifted: {vi} vs {v0}");
        }
    }

    #[test]
    fn succession_peaks_in_order() {
        // Relational → logic databases → complex objects, like Figure 3:
        // the first wave of each tradition arrives in food-chain order.
        let sys = research_succession();
        let peaks = sys.first_peak_times(0.01, 4000);
        assert!(
            peaks[0] < peaks[1] && peaks[1] < peaks[2],
            "succession order violated: {peaks:?}"
        );
    }

    #[test]
    fn decline_of_prey_brings_decline_of_predator() {
        let sys = research_succession();
        let traj = sys.integrate(0.01, 4000);
        let peaks = sys.first_peak_times(0.01, 4000);
        // After logic databases' first peak, its curve declines markedly
        // within the following stretch (before any later oscillation).
        let logic_at_peak = traj[peaks[1]][1];
        let window_end = (peaks[1] + 1500).min(traj.len() - 1);
        let logic_later = traj[peaks[1]..=window_end]
            .iter()
            .map(|row| row[1])
            .fold(f64::INFINITY, f64::min);
        assert!(
            logic_later < logic_at_peak * 0.7,
            "the predator declines after its prey: {logic_later} vs {logic_at_peak}"
        );
    }

    #[test]
    fn populations_stay_nonnegative() {
        let sys = research_succession();
        let traj = sys.integrate(0.05, 2000);
        assert!(traj.iter().flatten().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_matrix_panics() {
        LotkaVolterra::new(
            vec![Species {
                name: "x".into(),
                growth: 1.0,
                initial: 1.0,
            }],
            vec![vec![0.0, 1.0]],
        );
    }
}
