//! Figure 1 — Kuhn's stages of the scientific process, as a stochastic
//! stage machine.
//!
//! The figure shows: *immature science* → *normal science* → (anomalies
//! accumulate) → *science in crisis* → *scientific revolution* → back to
//! normal science. We model anomaly accumulation explicitly: normal
//! science accrues anomalies at a rate; crossing a tolerance threshold
//! tips the field into crisis; crises either resolve into a revolution
//! (which resets the anomaly count and the paradigm) or grind on. The
//! paper conjectures the cycle is *much accelerated* in computer science
//! because the artifact changes while studied — modelled as a multiplier
//! on the anomaly rate ([`KuhnModel::accelerated`]).

/// The stages of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Pre-paradigmatic ("immature") science.
    Immature,
    /// Normal science under an accepted paradigm.
    Normal,
    /// Science in crisis: anomalies outweigh the paradigm's credit.
    Crisis,
    /// Scientific revolution: a new paradigm is being established.
    Revolution,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Immature => write!(f, "immature science"),
            Stage::Normal => write!(f, "normal science"),
            Stage::Crisis => write!(f, "science in crisis"),
            Stage::Revolution => write!(f, "scientific revolution"),
        }
    }
}

/// Parameters and state of the stage machine.
#[derive(Debug, Clone)]
pub struct KuhnModel {
    /// Current stage.
    pub stage: Stage,
    /// Accumulated anomalies.
    pub anomalies: f64,
    /// Anomalies accrued per step of normal science (per mille chance
    /// scale: deterministic accumulation plus stochastic spikes).
    pub anomaly_rate: f64,
    /// Anomaly level at which normal science tips into crisis.
    pub tolerance: f64,
    /// Chance (per mille) that a crisis step produces the winning new idea.
    pub revolution_chance_pm: u32,
    /// Chance (per mille) that immature science coalesces into a paradigm.
    pub maturation_chance_pm: u32,
    /// Steps a revolution takes to settle into normal science.
    pub revolution_length: u32,
    revolution_progress: u32,
    /// Number of completed paradigm shifts.
    pub paradigm_count: u32,
    rng_state: u64,
}

impl KuhnModel {
    /// A field starting as immature science.
    pub fn new(seed: u64) -> KuhnModel {
        KuhnModel {
            stage: Stage::Immature,
            anomalies: 0.0,
            anomaly_rate: 1.0,
            tolerance: 100.0,
            revolution_chance_pm: 50,
            maturation_chance_pm: 100,
            revolution_length: 5,
            revolution_progress: 0,
            paradigm_count: 0,
            rng_state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    /// The computer-science variant: the artifact co-evolves with the
    /// science, multiplying the anomaly rate (§5: "the stages of Figure 1
    /// are much accelerated in the case of computer science").
    pub fn accelerated(seed: u64, factor: f64) -> KuhnModel {
        let mut m = KuhnModel::new(seed);
        m.anomaly_rate *= factor;
        m
    }

    fn next_pm(&mut self) -> u32 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        (self.rng_state % 1000) as u32
    }

    /// Advance one step; returns the stage after the step.
    pub fn step(&mut self) -> Stage {
        match self.stage {
            Stage::Immature => {
                if self.next_pm() < self.maturation_chance_pm {
                    self.stage = Stage::Normal;
                    self.paradigm_count += 1;
                    self.anomalies = 0.0;
                }
            }
            Stage::Normal => {
                // Steady accrual plus occasional spikes ("cruel facts").
                self.anomalies += self.anomaly_rate;
                if self.next_pm() < 100 {
                    self.anomalies += self.anomaly_rate * 5.0;
                }
                if self.anomalies >= self.tolerance {
                    self.stage = Stage::Crisis;
                }
            }
            Stage::Crisis => {
                if self.next_pm() < self.revolution_chance_pm {
                    self.stage = Stage::Revolution;
                    self.revolution_progress = 0;
                }
            }
            Stage::Revolution => {
                self.revolution_progress += 1;
                if self.revolution_progress >= self.revolution_length {
                    self.stage = Stage::Normal;
                    self.paradigm_count += 1;
                    self.anomalies = 0.0;
                }
            }
        }
        self.stage
    }

    /// Run `steps` steps, returning per-stage occupancy counts
    /// `[immature, normal, crisis, revolution]`.
    pub fn occupancy(&mut self, steps: usize) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for _ in 0..steps {
            let s = self.step();
            let idx = match s {
                Stage::Immature => 0,
                Stage::Normal => 1,
                Stage::Crisis => 2,
                Stage::Revolution => 3,
            };
            counts[idx] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_immature_then_matures() {
        let mut m = KuhnModel::new(1);
        let mut matured = false;
        for _ in 0..1000 {
            if m.step() == Stage::Normal {
                matured = true;
                break;
            }
        }
        assert!(matured, "maturation chance must eventually fire");
        assert_eq!(m.paradigm_count, 1);
    }

    #[test]
    fn normal_science_dominates_occupancy() {
        let mut m = KuhnModel::new(7);
        let counts = m.occupancy(20_000);
        let normal = counts[1];
        let total: usize = counts.iter().sum();
        assert!(
            normal * 2 > total,
            "normal science should be the majority stage: {counts:?}"
        );
    }

    #[test]
    fn revolutions_recur() {
        let mut m = KuhnModel::new(99);
        m.occupancy(50_000);
        assert!(
            m.paradigm_count >= 3,
            "several paradigm shifts over a long run: {}",
            m.paradigm_count
        );
    }

    #[test]
    fn acceleration_produces_more_revolutions() {
        let steps = 30_000;
        let mut slow = KuhnModel::new(5);
        slow.occupancy(steps);
        let mut fast = KuhnModel::accelerated(5, 5.0);
        fast.occupancy(steps);
        assert!(
            fast.paradigm_count > slow.paradigm_count,
            "co-evolving artifact accelerates the cycle: {} vs {}",
            fast.paradigm_count,
            slow.paradigm_count
        );
    }

    #[test]
    fn crisis_follows_anomaly_threshold() {
        let mut m = KuhnModel::new(3);
        m.stage = Stage::Normal;
        m.anomalies = m.tolerance - 0.5;
        // One step of accrual must tip it (rate 1.0 ≥ 0.5 shortfall).
        let s = m.step();
        assert_eq!(s, Stage::Crisis);
    }

    #[test]
    fn revolution_resets_anomalies() {
        let mut m = KuhnModel::new(11);
        m.stage = Stage::Revolution;
        m.anomalies = 500.0;
        for _ in 0..m.revolution_length {
            m.step();
        }
        assert_eq!(m.stage, Stage::Normal);
        assert_eq!(m.anomalies, 0.0);
    }

    #[test]
    fn stage_display_names() {
        assert_eq!(Stage::Crisis.to_string(), "science in crisis");
        assert_eq!(Stage::Revolution.to_string(), "scientific revolution");
    }
}
