//! Regenerate every experiment table/series for EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run -p bq-bench --bin report            # all experiments
//! cargo run -p bq-bench --bin report -- e9      # one experiment
//! ```

use bq_bench::{chain_edb, emp_db, star_db, star_join_plan};
use bq_datalog::interp::{query, Naive, SemiNaive};
use bq_datalog::magic::magic_rewrite;
use bq_datalog::parser::{parse_atom, parse_program};
use bq_design::attrs::AttrSet;
use bq_design::chase::chase_decomposition;
use bq_design::decompose::bcnf_decompose;
use bq_design::fd::{Fd, FdSet};
use bq_design::nf::{classify, NormalForm};
use bq_design::synthesize::synthesize_3nf;
use bq_design::Universe;
use bq_logic::dpll::solve_with_stats;
use bq_logic::eso::{check_eso, three_colorability_sentence};
use bq_logic::reductions::{color_graph_backtracking, coloring_to_sat, Graph};
use bq_logic::structure::Structure;
use bq_meta::graph::ResearchGraph;
use bq_meta::harmonic::fit_pc_model;
use bq_meta::kitcher::{equilibrium, KitcherModel};
use bq_meta::kuhn::KuhnModel;
use bq_meta::pods::{Area, PodsDataset};
use bq_meta::volterra::research_succession;
use bq_relational::algebra::eval::{eval, eval_with_stats};
use bq_relational::algebra::optimize::optimize;
use bq_relational::calculus::eval_query;
use bq_relational::codd::{calculus_to_algebra, QueryGen};
use bq_txn::occ::Optimistic;
use bq_txn::sim::{run_sim, Scheduler, SimConfig};
use bq_txn::tree::TreeLocking;
use bq_txn::tso::TimestampOrdering;
use bq_txn::twopl::TwoPhaseLocking;
use bq_txn::workload::{generate, Workload, WorkloadConfig};
use bq_txn::woundwait::WoundWait;
use std::time::Instant;

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default().to_lowercase();
    let run = |id: &str| filter.is_empty() || filter == id;
    let obs_before = bq_obs::global().snapshot();

    if run("e1") {
        e1_kuhn();
    }
    if run("e2") {
        e2_research_graph();
    }
    if run("e3") {
        e3_figure3();
    }
    if run("e4") {
        e4_harmonic();
    }
    if run("e5") {
        e5_volterra();
    }
    if run("e6") {
        e6_kitcher();
    }
    if run("e7") {
        e7_codd();
    }
    if run("e8") {
        e8_datalog();
    }
    if run("e9") {
        e9_concurrency();
    }
    if run("e10") {
        e10_normalization();
    }
    if run("e11") {
        e11_cook_fagin();
    }
    if run("e12") {
        e12_nulls();
    }
    if run("e13") {
        e13_optimizer();
    }
    if run("e14") {
        e14_exec();
    }

    // Differential accounting for the whole report run: every counter the
    // experiments above bumped, as before/after deltas from the global
    // registry. A metric that vanishes from this list means some layer's
    // instrumentation was unplugged.
    header("OBS", "Registry counter deltas across this report run");
    registry_deltas(&obs_before);
}

/// Print nonzero metric deltas since `before`, one per line.
fn registry_deltas(before: &bq_obs::Snapshot) {
    let after = bq_obs::global().snapshot();
    let deltas = before.delta(&after);
    if deltas.is_empty() {
        println!("(no metric changed)");
        return;
    }
    for (name, d) in &deltas {
        println!("{name:<44} {d:>14}");
    }
}

fn header(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id} — {title}");
    println!("==================================================================");
}

fn e1_kuhn() {
    header(
        "E1",
        "Figure 1: Kuhn stage occupancy vs anomaly-rate acceleration",
    );
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>11} {:>9}",
        "accel", "immature", "normal", "crisis", "revolution", "shifts"
    );
    for factor in [1.0, 2.0, 4.0, 8.0] {
        let mut m = KuhnModel::accelerated(1995, factor);
        let occ = m.occupancy(50_000);
        println!(
            "{factor:>6} {:>10} {:>9} {:>9} {:>11} {:>9}",
            occ[0], occ[1], occ[2], occ[3], m.paradigm_count
        );
    }
}

fn e2_research_graph() {
    header(
        "E2",
        "Figure 2: healthy vs crisis research graphs (equal avg degree)",
    );
    println!(
        "{:>8} {:>9} {:>7} {:>8} {:>12} {:>14}",
        "config", "degree", "giant%", "diam", "t→p hops", "stranded th.%"
    );
    for n in [200usize, 600, 1200] {
        let h = ResearchGraph::healthy(n, 4.0, 1995).health();
        let c = ResearchGraph::crisis(n, 4.0, n / 20, 35, 1995).health();
        for (name, g) in [("healthy", h), ("crisis", c)] {
            println!(
                "{name:>8} {:>9.2} {:>7.0} {:>8} {:>12} {:>14.0}",
                g.avg_degree,
                g.giant_fraction * 100.0,
                g.giant_diameter,
                g.mean_theory_practice_hops
                    .map_or("∞".to_string(), |h| format!("{h:.1}")),
                g.disconnected_theory_fraction * 100.0
            );
        }
        println!("  (n = {n})");
    }
}

fn e3_figure3() {
    header(
        "E3",
        "Figure 3: PODS papers per area, two-year averages 1983-1995",
    );
    let data = PodsDataset::embedded();
    print!("{:>6}", "year");
    for a in Area::ALL {
        print!(" {:>12}", a.name().split(' ').next().expect("word"));
    }
    println!();
    let series: Vec<Vec<(u32, f64)>> = Area::ALL.iter().map(|&a| data.figure3(a)).collect();
    for i in 0..series[0].len() {
        print!("{:>6}", series[0][i].0);
        for s in &series {
            print!(" {:>12.1}", s[i].1);
        }
        println!();
    }
    println!(
        "peak years: relational {}, transactions {}, logic {}, objects {}",
        data.peak_year(Area::RelationalTheory),
        data.peak_year(Area::TransactionProcessing),
        data.peak_year(Area::LogicDatabases),
        data.peak_year(Area::ComplexObjects),
    );
}

fn e4_harmonic() {
    header(
        "E4",
        "Footnote 10: the two-year harmonic and the PC-correction model",
    );
    let raw = PodsDataset::embedded().footnote10();
    let model = fit_pc_model(&raw);
    println!("raw Logic-DB series 1986-92: {raw:?}");
    println!(
        "lag-1 autocorrelation: {:.3}   dominant period: {:.1} years",
        model.lag1_autocorr, model.dominant_period
    );
    println!(
        "fitted PC overcorrection γ = {:.3} on trend {:.2} + {:.2}·t",
        model.gamma, model.trend.0, model.trend.1
    );
    let sim = model.simulate(7, raw[0] - model.trend.0);
    println!(
        "model-simulated series:      {:?}",
        sim.iter()
            .map(|x| (x * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}

fn e5_volterra() {
    header("E5", "§6: Volterra succession of research traditions");
    let sys = research_succession();
    let peaks = sys.first_peak_times(0.01, 4000);
    let traj = sys.integrate(0.01, 4000);
    println!(
        "{:>20} {:>12} {:>12}",
        "species", "first peak t", "peak level"
    );
    for (i, s) in sys.species.iter().enumerate() {
        println!(
            "{:>20} {:>12} {:>12.2}",
            s.name, peaks[i], traj[peaks[i]][i]
        );
    }
}

fn e6_kitcher() {
    header(
        "E6",
        "Footnote 11: Kitcher diversity under replicator dynamics",
    );
    println!(
        "{:>10} {:>10} {:>14} {:>14}",
        "promise A", "promise B", "equilibrium A", "planner opt A"
    );
    for (a, b) in [(0.5, 0.5), (0.6, 0.4), (0.8, 0.3), (0.9, 0.1)] {
        let m = KitcherModel {
            value_a: a,
            value_b: b,
        };
        println!(
            "{a:>10} {b:>10} {:>14.2} {:>14.2}",
            equilibrium(&m, 0.5),
            m.optimal_allocation()
        );
    }
}

fn e7_codd() {
    header("E7", "Codd's Theorem: calculus ≡ algebra on random queries");
    println!(
        "{:>8} {:>9} {:>10} {:>13} {:>13}",
        "db size", "queries", "agreement", "calculus ms", "algebra ms"
    );
    for size in [20i64, 60, 150] {
        let db = emp_db(size);
        let mut gen = QueryGen::new(2026);
        let n_queries = 40;
        let mut agree = 0;
        let mut t_calc = 0.0;
        let mut t_alg = 0.0;
        for _ in 0..n_queries {
            let q = gen.gen_query(&db).expect("generator");
            let t0 = Instant::now();
            let direct = eval_query(&q, &db).expect("direct eval");
            t_calc += t0.elapsed().as_secs_f64() * 1000.0;
            let expr = calculus_to_algebra(&q, &db).expect("translation");
            let opt = optimize(&expr, &db).expect("optimize");
            let t1 = Instant::now();
            let via = eval(&opt, &db).expect("algebra eval");
            t_alg += t1.elapsed().as_secs_f64() * 1000.0;
            if direct.tuples() == via.tuples() {
                agree += 1;
            }
        }
        println!(
            "{size:>8} {n_queries:>9} {:>9}% {t_calc:>13.1} {t_alg:>13.1}",
            agree * 100 / n_queries
        );
    }
}

fn e8_datalog() {
    header("E8", "Recursive queries: naive vs semi-naive vs magic sets");
    println!(
        "{:>7} {:>11} {:>9} {:>12} {:>12} {:>13} {:>12}",
        "chain n", "strategy", "iters", "firings", "facts", "time ms", "answers"
    );
    for n in [30i64, 60, 120] {
        let edb = chain_edb(n);
        let program = parse_program(
            "ancestor(X, Y) :- parent(X, Y).\n\
             ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
        )
        .expect("program");
        let q = parse_atom(&format!("ancestor({}, X)", n - 5)).expect("atom");

        let t0 = Instant::now();
        let (store_n, st_n) = Naive::run(&program, &edb).expect("naive");
        let ms_n = t0.elapsed().as_secs_f64() * 1000.0;
        let t0 = Instant::now();
        let (store_s, st_s) = SemiNaive::run(&program, &edb).expect("semi");
        let ms_s = t0.elapsed().as_secs_f64() * 1000.0;
        let (magic_prog, ans) = magic_rewrite(&program, &q).expect("magic");
        let t0 = Instant::now();
        let (store_m, st_m) = SemiNaive::run(&magic_prog, &edb).expect("magic eval");
        let ms_m = t0.elapsed().as_secs_f64() * 1000.0;

        let full_answers = query(&store_s, &q).len();
        assert_eq!(store_n, store_s);
        assert_eq!(query(&store_m, &ans).len(), full_answers);
        for (name, st, ms, answers) in [
            ("naive", st_n, ms_n, full_answers),
            ("semi-naive", st_s, ms_s, full_answers),
            ("magic+semi", st_m, ms_m, full_answers),
        ] {
            println!(
                "{n:>7} {name:>11} {:>9} {:>12} {:>12} {ms:>13.1} {answers:>12}",
                st.iterations, st.rule_firings, st.facts_derived
            );
        }
    }
}

fn e9_concurrency() {
    header(
        "E9",
        "Concurrency control: 2PL / TSO / OCC / tree locking sweep",
    );
    println!(
        "{:>6} {:>5} {:>13} {:>8} {:>8} {:>9} {:>10}",
        "write%", "hot%", "scheduler", "commits", "aborts", "ticks", "tput/1k"
    );
    for write_pct in [20u32, 50, 80] {
        for hot in [0u32, 50, 90] {
            let c = WorkloadConfig {
                n_txns: 30,
                n_items: 40,
                txn_len: 4,
                write_pct,
                hot_access_pct: hot,
                hot_item_pct: 10,
                shape: Workload::Plain,
                seed: 99,
            };
            let specs = generate(&c);
            let mut engines: Vec<Box<dyn Scheduler>> = vec![
                Box::new(TwoPhaseLocking::new()),
                Box::new(WoundWait::new()),
                Box::new(TimestampOrdering::new()),
                Box::new(Optimistic::new()),
            ];
            for e in &mut engines {
                let m = run_sim(&specs, e.as_mut(), SimConfig::default());
                println!(
                    "{write_pct:>6} {hot:>5} {:>13} {:>8} {:>8} {:>9} {:>10.2}",
                    m.scheduler,
                    m.committed,
                    m.aborts,
                    m.ticks,
                    m.throughput()
                );
            }
        }
    }
    // Tree locking on its native path workload.
    let c = WorkloadConfig {
        n_txns: 30,
        n_items: 63,
        txn_len: 4,
        write_pct: 100,
        hot_access_pct: 0,
        hot_item_pct: 10,
        shape: Workload::TreePath,
        seed: 99,
    };
    let specs = generate(&c);
    let mut tree = TreeLocking::new();
    let m = run_sim(&specs, &mut tree, SimConfig::default());
    println!(
        "{:>6} {:>5} {:>13} {:>8} {:>8} {:>9} {:>10.2}   (path workload)",
        "-",
        "-",
        m.scheduler,
        m.committed,
        m.aborts,
        m.ticks,
        m.throughput()
    );

    // Distributed commit: the canonical 2PC scenarios.
    use bq_txn::twopc::{run_2pc, Crash, Decision as PcDecision, TwoPcConfig};
    println!("\n2PC scenarios (3 participants):");
    println!(
        "{:>34} {:>10} {:>26} {:>9}",
        "scenario", "decision", "states", "messages"
    );
    let scenarios: Vec<(&str, TwoPcConfig)> = vec![
        (
            "all yes",
            TwoPcConfig {
                votes: vec![true; 3],
                crashes: vec![Crash::None; 3],
                coordinator_crashes: false,
                decision_logged: true,
            },
        ),
        (
            "one no vote",
            TwoPcConfig {
                votes: vec![true, false, true],
                crashes: vec![Crash::None; 3],
                coordinator_crashes: false,
                decision_logged: true,
            },
        ),
        (
            "participant crash before vote",
            TwoPcConfig {
                votes: vec![true; 3],
                crashes: vec![Crash::None, Crash::BeforeVote, Crash::None],
                coordinator_crashes: false,
                decision_logged: true,
            },
        ),
        (
            "coordinator crash, unlogged",
            TwoPcConfig {
                votes: vec![true; 3],
                crashes: vec![Crash::None; 3],
                coordinator_crashes: true,
                decision_logged: false,
            },
        ),
    ];
    for (name, cfg) in scenarios {
        let out = run_2pc(&cfg);
        println!(
            "{name:>34} {:>10} {:>26} {:>9}",
            match out.decision {
                PcDecision::Commit => "COMMIT",
                PcDecision::Abort => "ABORT",
                PcDecision::None => "(crashed)",
            },
            format!("{:?}", out.states),
            out.messages
        );
    }
}

fn e10_normalization() {
    header(
        "E10",
        "Normalization: random schemas through the design tool",
    );
    println!(
        "{:>6} {:>8} {:>7} {:>7} {:>7} {:>9} {:>10} {:>10}",
        "attrs", "schemas", "BCNF%", "3NF%", "2NF%", "synth sz", "bcnf sz", "lossless%"
    );
    let mut state = 2026u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for n in [4usize, 6, 8] {
        let trials = 60;
        let (mut bcnf, mut tnf, mut snf) = (0, 0, 0);
        let mut synth_sz = 0usize;
        let mut bcnf_sz = 0usize;
        let mut lossless = 0;
        for _ in 0..trials {
            let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let mut fds = FdSet::new(Universe::new(&refs));
            for _ in 0..(2 + next() % 3) {
                let lhs = AttrSet((next() % (1 << n)).max(1));
                let rhs = AttrSet((next() % (1 << n)).max(1));
                fds.push(Fd::new(lhs, rhs));
            }
            match classify(&fds) {
                NormalForm::BoyceCodd => {
                    bcnf += 1;
                    tnf += 1;
                    snf += 1;
                }
                NormalForm::Third => {
                    tnf += 1;
                    snf += 1;
                }
                NormalForm::Second => snf += 1,
                NormalForm::First => {}
            }
            let synth = synthesize_3nf(&fds);
            let bd = bcnf_decompose(&fds);
            synth_sz += synth.len();
            bcnf_sz += bd.len();
            if chase_decomposition(&synth, &fds) && chase_decomposition(&bd, &fds) {
                lossless += 1;
            }
        }
        println!(
            "{n:>6} {trials:>8} {:>7} {:>7} {:>7} {:>9.1} {:>10.1} {:>10}",
            bcnf * 100 / trials,
            tnf * 100 / trials,
            snf * 100 / trials,
            synth_sz as f64 / trials as f64,
            bcnf_sz as f64 / trials as f64,
            lossless * 100 / trials
        );
    }
}

fn e11_cook_fagin() {
    header("E11", "Cook vs Fagin vs direct: 3-colorability three ways");
    println!(
        "{:>4} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "n", "edge%", "colorable", "SAT ms", "direct ms", "ESO ms", "decisions"
    );
    for (n, p) in [(5usize, 50u64), (8, 40), (12, 35), (16, 30)] {
        let g = Graph::random(n, p, 7);
        let cnf = coloring_to_sat(&g, 3);
        let t0 = Instant::now();
        let (sat, stats) = solve_with_stats(&cnf);
        let ms_sat = t0.elapsed().as_secs_f64() * 1000.0;
        let t0 = Instant::now();
        let direct = color_graph_backtracking(&g, 3);
        let ms_direct = t0.elapsed().as_secs_f64() * 1000.0;
        let (eso, ms_eso) = if n <= 8 {
            let s = Structure::of_graph(&g);
            let t0 = Instant::now();
            let r = check_eso(&s, &three_colorability_sentence()).is_some();
            (Some(r), t0.elapsed().as_secs_f64() * 1000.0)
        } else {
            (None, f64::NAN)
        };
        assert_eq!(sat.is_some(), direct.is_some());
        if let Some(e) = eso {
            assert_eq!(e, sat.is_some());
        }
        println!(
            "{n:>4} {p:>6} {:>10} {ms_sat:>12.2} {ms_direct:>12.3} {:>12} {:>10}",
            sat.is_some(),
            if ms_eso.is_nan() {
                "-".to_string()
            } else {
                format!("{ms_eso:.1}")
            },
            stats.decisions
        );
    }
}

fn e12_nulls() {
    header(
        "E12",
        "Incomplete information: certain answers on naive tables",
    );
    use bq_relational::algebra::expr::Expr;
    use bq_relational::nulls::{certain_answers, certain_answers_brute_force, null_labels};
    use bq_relational::{Database, Relation, Type, Value};

    println!(
        "{:>7} {:>7} {:>14} {:>14} {:>9}",
        "rows", "nulls", "naive answers", "certain", "agree"
    );
    let mut state = 7u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for rows in [4usize, 8, 12] {
        let mut db = Database::new();
        let mut r = Relation::with_schema(&[("a", Type::Str), ("b", Type::Str)]).expect("schema");
        let mut s = Relation::with_schema(&[("b", Type::Str), ("c", Type::Str)]).expect("schema");
        let mk = |x: u64| {
            if x % 7 < 4 {
                Value::str(format!("c{}", x % 4))
            } else {
                Value::Null((x % 3) as u32)
            }
        };
        for _ in 0..rows {
            r.insert(vec![mk(next()), mk(next())].into()).expect("row");
            s.insert(vec![mk(next()), mk(next())].into()).expect("row");
        }
        db.add("r", r);
        db.add("s", s);
        let q = Expr::rel("r")
            .natural_join(Expr::rel("s"))
            .project(&["a", "c"]);
        let naive = bq_relational::algebra::eval::eval(&q, &db).expect("eval");
        let certain = certain_answers(&q, &db).expect("certain");
        let domain: Vec<Value> = (0..4).map(|i| Value::str(format!("c{i}"))).collect();
        let brute = certain_answers_brute_force(&q, &db, &domain).expect("brute");
        println!(
            "{rows:>7} {:>7} {:>14} {:>14} {:>9}",
            null_labels(&db).len(),
            naive.len(),
            certain.len(),
            certain.tuples() == brute.tuples()
        );
    }
}

fn e14_exec() {
    use bq_exec::{ExecMode, Executor};
    header(
        "E14",
        "Morsel-driven execution: bq-exec vs the recursive oracle",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("available parallelism: {cores} (speedup > 1 needs more than one core)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9} {:>7}",
        "rows", "oracle ms", "seq ms", "par(4) ms", "speedup", "agree"
    );
    let expr = star_join_plan();
    let time = |f: &mut dyn FnMut()| {
        f(); // warmup
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64() * 1000.0
    };
    for n in [10_000u64, 100_000] {
        let db = star_db(n);
        let seq = Executor::new(ExecMode::Sequential);
        let par = Executor::new(ExecMode::Parallel(4));
        let want = eval(&expr, &db).expect("oracle");
        let agree = seq.execute(&expr, &db).expect("seq") == want
            && par.execute(&expr, &db).expect("par") == want;
        let ms_oracle = time(&mut || {
            eval(&expr, &db).expect("oracle");
        });
        let ms_seq = time(&mut || {
            seq.execute(&expr, &db).expect("seq");
        });
        let ms_par = time(&mut || {
            par.execute(&expr, &db).expect("par");
        });
        println!(
            "{n:>8} {ms_oracle:>12.1} {ms_seq:>12.1} {ms_par:>12.1} {:>8.2}x {agree:>7}",
            ms_seq / ms_par
        );
    }
    // The EXPLAIN view: per-operator rows, batches, and wall time.
    let db = star_db(10_000);
    let ex = Executor::new(ExecMode::Parallel(4));
    let before = bq_obs::global().snapshot();
    let (_, stats) = ex.execute_with_stats(&expr, &db).expect("stats");
    println!("\nphysical plan at 10k rows, parallel(4):\n{stats}");
    println!("registry deltas for that single run:");
    registry_deltas(&before);
}

fn e13_optimizer() {
    header(
        "E13",
        "Query optimization: pushdown vs unoptimized intermediates",
    );
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "emps", "naive intermed.", "optimized", "ratio"
    );
    use bq_relational::algebra::expr::{Expr, Predicate};
    for n in [100i64, 400, 1000] {
        let db = emp_db(n);
        let q = Expr::rel("emp")
            .qualify("e")
            .product(Expr::rel("dept").qualify("d"))
            .select(
                Predicate::eq_attrs("e.dept", "d.dept").and(Predicate::eq_const("d.bldg", 3i64)),
            )
            .project(&["e.name"]);
        let (r1, naive) = eval_with_stats(&q, &db).expect("naive eval");
        let opt = optimize(&q, &db).expect("optimize");
        let (r2, optimized) = eval_with_stats(&opt, &db).expect("optimized eval");
        assert_eq!(r1, r2);
        println!(
            "{n:>8} {:>16} {:>16} {:>9.1}",
            naive.intermediate_tuples,
            optimized.intermediate_tuples,
            naive.intermediate_tuples as f64 / optimized.intermediate_tuples as f64
        );
    }
}
