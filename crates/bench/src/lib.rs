//! # bq-bench
//!
//! Shared fixtures for the benchmark harness: workload builders used by
//! both the criterion benches (`benches/`) and the `report` binary that
//! regenerates every experiment table in EXPERIMENTS.md.

use bq_datalog::FactStore;
use bq_relational::{Database, Relation, Type, Value};

/// A chain EDB `parent(0,1), …, parent(n-1, n)` for transitive closure.
pub fn chain_edb(n: i64) -> FactStore {
    let mut edb = FactStore::new();
    for i in 0..n {
        edb.insert("parent", vec![Value::Int(i), Value::Int(i + 1)]);
    }
    edb
}

/// A random-graph EDB with `n` nodes and `m` random edges.
pub fn random_graph_edb(n: i64, m: usize, seed: u64) -> FactStore {
    let mut edb = FactStore::new();
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..m {
        let u = (next() % n as u64) as i64;
        let v = (next() % n as u64) as i64;
        edb.insert("parent", vec![Value::Int(u), Value::Int(v)]);
    }
    edb
}

/// The emp/dept database scaled to `n` employees, for the Codd and
/// optimizer experiments.
pub fn emp_db(n: i64) -> Database {
    let mut db = Database::new();
    let mut emp = Relation::with_schema(&[
        ("name", Type::Str),
        ("dept", Type::Str),
        ("sal", Type::Int),
    ])
    .expect("schema");
    let mut dept = Relation::with_schema(&[("dept", Type::Str), ("bldg", Type::Int)])
        .expect("schema");
    for d in 0..10 {
        dept.insert(vec![Value::str(format!("d{d}")), Value::Int(d)].into())
            .expect("row");
    }
    for i in 0..n {
        emp.insert(
            vec![
                Value::str(format!("e{i}")),
                Value::str(format!("d{}", i % 10)),
                Value::Int(i % 100),
            ]
            .into(),
        )
        .expect("row");
    }
    db.add("emp", emp);
    db.add("dept", dept);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_expected_sizes() {
        assert_eq!(chain_edb(10).count("parent"), 10);
        assert_eq!(emp_db(50).get("emp").unwrap().len(), 50);
        assert!(random_graph_edb(10, 30, 1).count("parent") <= 30);
    }
}
