//! # bq-bench
//!
//! The benchmark harness: workload builders and a dependency-free
//! wall-clock timer shared by the plain-`main` benches (`benches/`) and
//! the `report` binary that regenerates every experiment table in
//! EXPERIMENTS.md.

use bq_datalog::FactStore;
use bq_relational::{Database, Relation, Type, Value};
use std::time::{Duration, Instant};

/// Time `f` with two warmup runs and `samples` measured runs; print and
/// return the median. A deliberately small stand-in for criterion that
/// needs no external crates and runs fully offline.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(samples > 0, "need at least one sample");
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "  {name:<44} {:>12} (median of {samples})",
        fmt_duration(median)
    );
    median
}

/// Render a duration with a unit that keeps 3-4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A chain EDB `parent(0,1), …, parent(n-1, n)` for transitive closure.
pub fn chain_edb(n: i64) -> FactStore {
    let mut edb = FactStore::new();
    for i in 0..n {
        edb.insert("parent", vec![Value::Int(i), Value::Int(i + 1)]);
    }
    edb
}

/// A random-graph EDB with `n` nodes and `m` random edges.
pub fn random_graph_edb(n: i64, m: usize, seed: u64) -> FactStore {
    let mut edb = FactStore::new();
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..m {
        let u = (next() % n as u64) as i64;
        let v = (next() % n as u64) as i64;
        edb.insert("parent", vec![Value::Int(u), Value::Int(v)]);
    }
    edb
}

/// The emp/dept database scaled to `n` employees, for the Codd and
/// optimizer experiments.
pub fn emp_db(n: i64) -> Database {
    let mut db = Database::new();
    let mut emp =
        Relation::with_schema(&[("name", Type::Str), ("dept", Type::Str), ("sal", Type::Int)])
            .expect("schema");
    let mut dept =
        Relation::with_schema(&[("dept", Type::Str), ("bldg", Type::Int)]).expect("schema");
    for d in 0..10 {
        dept.insert(vec![Value::str(format!("d{d}")), Value::Int(d)].into())
            .expect("row");
    }
    for i in 0..n {
        emp.insert(
            vec![
                Value::str(format!("e{i}")),
                Value::str(format!("d{}", i % 10)),
                Value::Int(i % 100),
            ]
            .into(),
        )
        .expect("row");
    }
    db.add("emp", emp);
    db.add("dept", dept);
    db
}

/// A star-ish fact/dim database with `n` fact rows over 500 join keys,
/// for the parallel-execution experiment (E14).
pub fn star_db(n: u64) -> Database {
    use bq_util::{Rng, SplitMix64};
    let mut rng = SplitMix64::seed_from_u64(0xe14);
    let mut db = Database::new();
    let mut fact = Relation::with_schema(&[("id", Type::Int), ("k", Type::Int), ("v", Type::Int)])
        .expect("schema");
    for i in 0..n {
        fact.insert(
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(500) as i64),
                Value::Int(rng.gen_range(1000) as i64),
            ]
            .into(),
        )
        .expect("row");
    }
    db.add("fact", fact);
    let mut dim = Relation::with_schema(&[("k", Type::Int), ("grp", Type::Int)]).expect("schema");
    for k in 0..500i64 {
        dim.insert(vec![Value::Int(k), Value::Int(k % 13)].into())
            .expect("row");
    }
    db.add("dim", dim);
    db
}

/// The E14 workload: join fact to dim, filter, and project.
pub fn star_join_plan() -> bq_relational::algebra::expr::Expr {
    use bq_relational::algebra::expr::{Expr, Operand, Predicate};
    use bq_relational::value::CmpOp;
    Expr::rel("fact")
        .natural_join(Expr::rel("dim"))
        .select(Predicate::cmp(
            Operand::attr("v"),
            CmpOp::Gt,
            Operand::Const(Value::Int(100)),
        ))
        .project(&["id", "grp"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_expected_sizes() {
        assert_eq!(chain_edb(10).count("parent"), 10);
        assert_eq!(emp_db(50).get("emp").unwrap().len(), 50);
        assert!(random_graph_edb(10, 30, 1).count("parent") <= 30);
        let star = star_db(2000);
        assert_eq!(star.get("fact").unwrap().len(), 2000);
        assert_eq!(star.get("dim").unwrap().len(), 500);
        let expr = star_join_plan();
        assert!(
            bq_relational::algebra::eval::eval(&expr, &star)
                .unwrap()
                .len()
                > 100
        );
    }

    #[test]
    fn timer_measures_and_formats() {
        let mut runs = 0u32;
        let d = bench("noop", 3, || runs += 1);
        assert_eq!(runs, 5, "2 warmups + 3 samples");
        assert!(d < std::time::Duration::from_millis(50));
        assert_eq!(fmt_duration(std::time::Duration::from_nanos(900)), "900 ns");
        assert_eq!(
            fmt_duration(std::time::Duration::from_micros(250)),
            "250.0 µs"
        );
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(42)),
            "42.00 ms"
        );
        assert_eq!(fmt_duration(std::time::Duration::from_secs(12)), "12.00 s");
    }
}
