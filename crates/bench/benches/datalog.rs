//! E8 — recursive query evaluation: naive vs semi-naive vs magic sets on
//! transitive closure over chains and random graphs.

use bq_bench::{chain_edb, random_graph_edb};
use bq_datalog::interp::{Naive, SemiNaive};
use bq_datalog::magic::magic_rewrite;
use bq_datalog::parser::{parse_atom, parse_program};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const TC: &str = "ancestor(X, Y) :- parent(X, Y).\n\
                  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).";

fn bench_datalog(c: &mut Criterion) {
    let program = parse_program(TC).expect("program");
    let mut group = c.benchmark_group("datalog_e8");
    group.sample_size(10);
    for n in [40i64, 120] {
        let edb = chain_edb(n);
        group.bench_with_input(BenchmarkId::new("naive_chain", n), &n, |b, _| {
            b.iter(|| Naive::run(&program, &edb).expect("naive"))
        });
        group.bench_with_input(BenchmarkId::new("seminaive_chain", n), &n, |b, _| {
            b.iter(|| SemiNaive::run(&program, &edb).expect("semi"))
        });
        let q = parse_atom(&format!("ancestor({}, X)", n - 5)).expect("atom");
        let (magic_prog, _) = magic_rewrite(&program, &q).expect("magic");
        group.bench_with_input(BenchmarkId::new("magic_chain", n), &n, |b, _| {
            b.iter(|| SemiNaive::run(&magic_prog, &edb).expect("magic eval"))
        });
    }
    // Random graph: denser closure.
    let edb = random_graph_edb(30, 60, 7);
    group.bench_function("seminaive_random_graph", |b| {
        b.iter(|| SemiNaive::run(&program, &edb).expect("semi"))
    });
    group.finish();
}

criterion_group!(benches, bench_datalog);
criterion_main!(benches);
