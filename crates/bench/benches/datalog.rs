//! E8 — recursive query evaluation: naive vs semi-naive vs magic sets on
//! transitive closure over chains and random graphs.

use bq_bench::{bench, chain_edb, random_graph_edb};
use bq_datalog::interp::{Naive, SemiNaive};
use bq_datalog::magic::magic_rewrite;
use bq_datalog::parser::{parse_atom, parse_program};

const TC: &str = "ancestor(X, Y) :- parent(X, Y).\n\
                  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).";

fn main() {
    println!("datalog_e8");
    let program = parse_program(TC).expect("program");
    for n in [40i64, 120] {
        let edb = chain_edb(n);
        bench(&format!("naive_chain/{n}"), 10, || {
            Naive::run(&program, &edb).expect("naive")
        });
        bench(&format!("seminaive_chain/{n}"), 10, || {
            SemiNaive::run(&program, &edb).expect("semi")
        });
        let q = parse_atom(&format!("ancestor({}, X)", n - 5)).expect("atom");
        let (magic_prog, _) = magic_rewrite(&program, &q).expect("magic");
        bench(&format!("magic_chain/{n}"), 10, || {
            SemiNaive::run(&magic_prog, &edb).expect("magic eval")
        });
    }
    // Random graph: denser closure.
    let edb = random_graph_edb(30, 60, 7);
    bench("seminaive_random_graph", 10, || {
        SemiNaive::run(&program, &edb).expect("semi")
    });
}
