//! E10 — dependency-theory workloads: closures, covers, keys, synthesis,
//! decomposition, and the chase, on growing universes.

use bq_bench::bench;
use bq_design::attrs::{AttrSet, Universe};
use bq_design::chase::chase_decomposition;
use bq_design::closure::attr_closure;
use bq_design::cover::minimal_cover;
use bq_design::decompose::bcnf_decompose;
use bq_design::fd::{Fd, FdSet};
use bq_design::keys::candidate_keys;
use bq_design::synthesize::synthesize_3nf;

fn random_fds(n: usize, m: usize, seed: u64) -> FdSet {
    let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut fds = FdSet::new(Universe::new(&refs));
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..m {
        fds.push(Fd::new(
            AttrSet((next() % (1 << n)).max(1)),
            AttrSet((next() % (1 << n)).max(1)),
        ));
    }
    fds
}

fn main() {
    println!("design_e10");
    for n in [6usize, 10, 14] {
        let fds = random_fds(n, n, 42);
        bench(&format!("closure/{n}"), 10, || {
            attr_closure(AttrSet::single(0), &fds)
        });
        bench(&format!("minimal_cover/{n}"), 10, || minimal_cover(&fds));
        bench(&format!("candidate_keys/{n}"), 10, || candidate_keys(&fds));
        bench(&format!("synthesize_3nf/{n}"), 10, || synthesize_3nf(&fds));
    }
    // BCNF decomposition + chase are exponential in the sub-schema size;
    // bench them at design-tool scale.
    let fds = random_fds(8, 6, 7);
    bench("bcnf_decompose_8", 10, || bcnf_decompose(&fds));
    let schemas = synthesize_3nf(&fds);
    bench("chase_lossless_8", 10, || {
        chase_decomposition(&schemas, &fds)
    });
}
