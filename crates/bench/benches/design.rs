//! E10 — dependency-theory workloads: closures, covers, keys, synthesis,
//! decomposition, and the chase, on growing universes.

use bq_design::attrs::{AttrSet, Universe};
use bq_design::chase::chase_decomposition;
use bq_design::closure::attr_closure;
use bq_design::cover::minimal_cover;
use bq_design::decompose::bcnf_decompose;
use bq_design::fd::{Fd, FdSet};
use bq_design::keys::candidate_keys;
use bq_design::synthesize::synthesize_3nf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn random_fds(n: usize, m: usize, seed: u64) -> FdSet {
    let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut fds = FdSet::new(Universe::new(&refs));
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..m {
        fds.push(Fd::new(
            AttrSet((next() % (1 << n)).max(1)),
            AttrSet((next() % (1 << n)).max(1)),
        ));
    }
    fds
}

fn bench_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_e10");
    group.sample_size(10);
    for n in [6usize, 10, 14] {
        let fds = random_fds(n, n, 42);
        group.bench_with_input(BenchmarkId::new("closure", n), &n, |b, _| {
            b.iter(|| attr_closure(AttrSet::single(0), &fds))
        });
        group.bench_with_input(BenchmarkId::new("minimal_cover", n), &n, |b, _| {
            b.iter(|| minimal_cover(&fds))
        });
        group.bench_with_input(BenchmarkId::new("candidate_keys", n), &n, |b, _| {
            b.iter(|| candidate_keys(&fds))
        });
        group.bench_with_input(BenchmarkId::new("synthesize_3nf", n), &n, |b, _| {
            b.iter(|| synthesize_3nf(&fds))
        });
    }
    // BCNF decomposition + chase are exponential in the sub-schema size;
    // bench them at design-tool scale.
    let fds = random_fds(8, 6, 7);
    group.bench_function("bcnf_decompose_8", |b| b.iter(|| bcnf_decompose(&fds)));
    let schemas = synthesize_3nf(&fds);
    group.bench_function("chase_lossless_8", |b| {
        b.iter(|| chase_decomposition(&schemas, &fds))
    });
    group.finish();
}

criterion_group!(benches, bench_design);
criterion_main!(benches);
