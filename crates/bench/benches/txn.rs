//! E9 — concurrency control sweep: scheduler throughput under rising
//! contention.

use bq_txn::occ::Optimistic;
use bq_txn::sim::{run_sim, Scheduler, SimConfig};
use bq_txn::tree::TreeLocking;
use bq_txn::tso::TimestampOrdering;
use bq_txn::twopl::TwoPhaseLocking;
use bq_txn::workload::{generate, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn config(hot: u32) -> WorkloadConfig {
    WorkloadConfig {
        n_txns: 30,
        n_items: 40,
        txn_len: 4,
        write_pct: 50,
        hot_access_pct: hot,
        hot_item_pct: 10,
        shape: Workload::Plain,
        seed: 99,
    }
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_e9");
    group.sample_size(10);
    for hot in [0u32, 50, 90] {
        let specs = generate(&config(hot));
        group.bench_with_input(BenchmarkId::new("strict_2pl", hot), &hot, |b, _| {
            b.iter(|| {
                let mut s = TwoPhaseLocking::new();
                run_sim(&specs, &mut s, SimConfig::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("timestamp", hot), &hot, |b, _| {
            b.iter(|| {
                let mut s = TimestampOrdering::new();
                run_sim(&specs, &mut s, SimConfig::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("optimistic", hot), &hot, |b, _| {
            b.iter(|| {
                let mut s = Optimistic::new();
                run_sim(&specs, &mut s, SimConfig::default())
            })
        });
    }
    let tree_specs = generate(&WorkloadConfig {
        n_items: 63,
        shape: Workload::TreePath,
        ..config(0)
    });
    group.bench_function("tree_locking_paths", |b| {
        b.iter(|| {
            let mut s = TreeLocking::new();
            run_sim(&tree_specs, &mut s, SimConfig::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
