//! E9 — concurrency control sweep: scheduler throughput under rising
//! contention.

use bq_bench::bench;
use bq_txn::occ::Optimistic;
use bq_txn::sim::{run_sim, SimConfig};
use bq_txn::tree::TreeLocking;
use bq_txn::tso::TimestampOrdering;
use bq_txn::twopl::TwoPhaseLocking;
use bq_txn::workload::{generate, Workload, WorkloadConfig};

fn config(hot: u32) -> WorkloadConfig {
    WorkloadConfig {
        n_txns: 30,
        n_items: 40,
        txn_len: 4,
        write_pct: 50,
        hot_access_pct: hot,
        hot_item_pct: 10,
        shape: Workload::Plain,
        seed: 99,
    }
}

fn main() {
    println!("txn_e9");
    for hot in [0u32, 50, 90] {
        let specs = generate(&config(hot));
        bench(&format!("strict_2pl/{hot}"), 10, || {
            let mut s = TwoPhaseLocking::new();
            run_sim(&specs, &mut s, SimConfig::default())
        });
        bench(&format!("timestamp/{hot}"), 10, || {
            let mut s = TimestampOrdering::new();
            run_sim(&specs, &mut s, SimConfig::default())
        });
        bench(&format!("optimistic/{hot}"), 10, || {
            let mut s = Optimistic::new();
            run_sim(&specs, &mut s, SimConfig::default())
        });
    }
    let tree_specs = generate(&WorkloadConfig {
        n_items: 63,
        shape: Workload::TreePath,
        ..config(0)
    });
    bench("tree_locking_paths", 10, || {
        let mut s = TreeLocking::new();
        run_sim(&tree_specs, &mut s, SimConfig::default())
    });
}
