//! E1 / E3–E6 — the paper's own models: Kuhn stage machine, Figure-3
//! smoothing + harmonic fit, Volterra integration, Kitcher equilibrium.

use bq_meta::harmonic::fit_pc_model;
use bq_meta::kitcher::{equilibrium, KitcherModel};
use bq_meta::kuhn::KuhnModel;
use bq_meta::pods::{Area, PodsDataset};
use bq_meta::volterra::research_succession;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_meta(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_models");
    group.sample_size(10);
    group.bench_function("kuhn_50k_steps", |b| {
        b.iter(|| {
            let mut m = KuhnModel::new(1995);
            m.occupancy(50_000)
        })
    });
    let data = PodsDataset::embedded();
    group.bench_function("figure3_all_areas", |b| {
        b.iter(|| {
            Area::ALL
                .iter()
                .map(|&a| data.figure3(a))
                .collect::<Vec<_>>()
        })
    });
    let raw = data.footnote10();
    group.bench_function("harmonic_fit", |b| b.iter(|| fit_pc_model(&raw)));
    let lv = research_succession();
    group.bench_function("volterra_rk4_4000", |b| b.iter(|| lv.integrate(0.01, 4000)));
    let km = KitcherModel { value_a: 0.8, value_b: 0.3 };
    group.bench_function("kitcher_equilibrium", |b| b.iter(|| equilibrium(&km, 0.5)));
    group.finish();
}

criterion_group!(benches, bench_meta);
criterion_main!(benches);
