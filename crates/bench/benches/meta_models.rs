//! E1 / E3–E6 — the paper's own models: Kuhn stage machine, Figure-3
//! smoothing + harmonic fit, Volterra integration, Kitcher equilibrium.

use bq_bench::bench;
use bq_meta::harmonic::fit_pc_model;
use bq_meta::kitcher::{equilibrium, KitcherModel};
use bq_meta::kuhn::KuhnModel;
use bq_meta::pods::{Area, PodsDataset};
use bq_meta::volterra::research_succession;

fn main() {
    println!("meta_models");
    bench("kuhn_50k_steps", 10, || {
        let mut m = KuhnModel::new(1995);
        m.occupancy(50_000)
    });
    let data = PodsDataset::embedded();
    bench("figure3_all_areas", 10, || {
        Area::ALL
            .iter()
            .map(|&a| data.figure3(a))
            .collect::<Vec<_>>()
    });
    let raw = data.footnote10();
    bench("harmonic_fit", 10, || fit_pc_model(&raw));
    let lv = research_succession();
    bench("volterra_rk4_4000", 10, || lv.integrate(0.01, 4000));
    let km = KitcherModel {
        value_a: 0.8,
        value_b: 0.3,
    };
    bench("kitcher_equilibrium", 10, || equilibrium(&km, 0.5));
}
