//! E2 — Figure 2 at scale: generating and analysing healthy vs crisis
//! research graphs.

use bq_bench::bench;
use bq_meta::graph::ResearchGraph;

fn main() {
    println!("research_graph_e2");
    for n in [200usize, 600] {
        bench(&format!("healthy_generate/{n}"), 10, || {
            ResearchGraph::healthy(n, 4.0, 1995)
        });
        bench(&format!("crisis_generate/{n}"), 10, || {
            ResearchGraph::crisis(n, 4.0, n / 20, 35, 1995)
        });
        let healthy = ResearchGraph::healthy(n, 4.0, 1995);
        bench(&format!("health_report/{n}"), 10, || healthy.health());
    }
}
