//! E2 — Figure 2 at scale: generating and analysing healthy vs crisis
//! research graphs.

use bq_meta::graph::ResearchGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_research_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("research_graph_e2");
    group.sample_size(10);
    for n in [200usize, 600] {
        group.bench_with_input(BenchmarkId::new("healthy_generate", n), &n, |b, &n| {
            b.iter(|| ResearchGraph::healthy(n, 4.0, 1995))
        });
        group.bench_with_input(BenchmarkId::new("crisis_generate", n), &n, |b, &n| {
            b.iter(|| ResearchGraph::crisis(n, 4.0, n / 20, 35, 1995))
        });
        let healthy = ResearchGraph::healthy(n, 4.0, 1995);
        group.bench_with_input(BenchmarkId::new("health_report", n), &n, |b, _| {
            b.iter(|| healthy.health())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_research_graph);
criterion_main!(benches);
