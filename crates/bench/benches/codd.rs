//! E7 — Codd's Theorem pipelines: direct calculus evaluation vs
//! translate-to-algebra (optionally optimized) on growing databases.

use bq_bench::{bench, emp_db};
use bq_relational::algebra::eval::eval;
use bq_relational::algebra::optimize::optimize;
use bq_relational::calculus::ast::{Formula, Query, Term};
use bq_relational::calculus::eval_query;
use bq_relational::codd::calculus_to_algebra;
use bq_relational::value::{CmpOp, Value};

fn join_query() -> Query {
    Query::new(
        &[("e", "emp"), ("d", "dept")],
        &[("e", "name", "name"), ("d", "bldg", "bldg")],
        Formula::cmp(Term::attr("e", "dept"), CmpOp::Eq, Term::attr("d", "dept")).and(
            Formula::cmp(
                Term::attr("e", "sal"),
                CmpOp::Gt,
                Term::Const(Value::Int(50)),
            ),
        ),
    )
}

fn main() {
    println!("codd_e7");
    for size in [50i64, 200, 800] {
        let db = emp_db(size);
        let q = join_query();
        bench(&format!("calculus_direct/{size}"), 10, || {
            eval_query(&q, &db).expect("eval")
        });
        let translated = calculus_to_algebra(&q, &db).expect("translate");
        bench(&format!("via_algebra/{size}"), 10, || {
            eval(&translated, &db).expect("eval")
        });
        let optimized = optimize(&translated, &db).expect("optimize");
        bench(&format!("via_algebra_optimized/{size}"), 10, || {
            eval(&optimized, &db).expect("eval")
        });
    }
}
