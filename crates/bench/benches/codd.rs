//! E7 — Codd's Theorem pipelines: direct calculus evaluation vs
//! translate-to-algebra (optionally optimized) on growing databases.

use bq_bench::emp_db;
use bq_relational::algebra::eval::eval;
use bq_relational::algebra::optimize::optimize;
use bq_relational::calculus::ast::{Formula, Query, Term};
use bq_relational::calculus::eval_query;
use bq_relational::codd::calculus_to_algebra;
use bq_relational::value::{CmpOp, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn join_query() -> Query {
    Query::new(
        &[("e", "emp"), ("d", "dept")],
        &[("e", "name", "name"), ("d", "bldg", "bldg")],
        Formula::cmp(Term::attr("e", "dept"), CmpOp::Eq, Term::attr("d", "dept")).and(
            Formula::cmp(Term::attr("e", "sal"), CmpOp::Gt, Term::Const(Value::Int(50))),
        ),
    )
}

fn bench_codd(c: &mut Criterion) {
    let mut group = c.benchmark_group("codd_e7");
    group.sample_size(10);
    for size in [50i64, 200, 800] {
        let db = emp_db(size);
        let q = join_query();
        group.bench_with_input(BenchmarkId::new("calculus_direct", size), &size, |b, _| {
            b.iter(|| eval_query(&q, &db).expect("eval"))
        });
        let translated = calculus_to_algebra(&q, &db).expect("translate");
        group.bench_with_input(BenchmarkId::new("via_algebra", size), &size, |b, _| {
            b.iter(|| eval(&translated, &db).expect("eval"))
        });
        let optimized = optimize(&translated, &db).expect("optimize");
        group.bench_with_input(BenchmarkId::new("via_algebra_optimized", size), &size, |b, _| {
            b.iter(|| eval(&optimized, &db).expect("eval"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codd);
criterion_main!(benches);
