//! E14 — morsel-driven parallelism: the bq-exec engine on join-heavy
//! plans, sequential vs worker pools of growing size.

use bq_bench::{bench, fmt_duration, star_db, star_join_plan};
use bq_exec::{ExecMode, Executor};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("exec_e14 (available parallelism: {cores} — speedups need >1 core)");
    let expr = star_join_plan();
    for n in [10_000u64, 100_000] {
        let db = star_db(n);
        let seq = Executor::new(ExecMode::Sequential);
        let baseline = seq.execute(&expr, &db).expect("sequential");
        let t_seq = bench(&format!("join_seq/{n}"), 10, || {
            seq.execute(&expr, &db).expect("exec")
        });
        for workers in [2usize, 4, 8] {
            let par = Executor::new(ExecMode::Parallel(workers));
            assert_eq!(par.execute(&expr, &db).expect("parallel"), baseline);
            let t_par = bench(&format!("join_par{workers}/{n}"), 10, || {
                par.execute(&expr, &db).expect("exec")
            });
            println!(
                "    -> parallel({workers}) speedup at {n}: {:.2}x ({} vs {})",
                t_seq.as_secs_f64() / t_par.as_secs_f64(),
                fmt_duration(t_par),
                fmt_duration(t_seq),
            );
        }
    }
}
