//! E11 — three routes to 3-colorability: Cook (reduce to SAT + DPLL),
//! a direct backtracking colorer, and Fagin (ESO witness search).

use bq_bench::bench;
use bq_logic::dpll::solve;
use bq_logic::eso::{check_eso, three_colorability_sentence};
use bq_logic::reductions::{color_graph_backtracking, coloring_to_sat, to_3cnf, Graph};
use bq_logic::structure::Structure;

fn main() {
    println!("logic_e11");
    for n in [8usize, 14, 20] {
        let g = Graph::random(n, 35, 7);
        bench(&format!("cook_sat/{n}"), 10, || {
            let cnf = coloring_to_sat(&g, 3);
            solve(&cnf)
        });
        bench(&format!("direct_backtracking/{n}"), 10, || {
            color_graph_backtracking(&g, 3)
        });
        bench(&format!("cook_sat_3cnf/{n}"), 10, || {
            let cnf = to_3cnf(&coloring_to_sat(&g, 3));
            solve(&cnf)
        });
    }
    // Fagin's witness search is exponential: bench only at tiny sizes.
    for n in [4usize, 5] {
        let g = Graph::random(n, 50, 7);
        let s = Structure::of_graph(&g);
        let sentence = three_colorability_sentence();
        bench(&format!("fagin_eso/{n}"), 10, || check_eso(&s, &sentence));
    }
}
