//! E11 — three routes to 3-colorability: Cook (reduce to SAT + DPLL),
//! a direct backtracking colorer, and Fagin (ESO witness search).

use bq_logic::dpll::solve;
use bq_logic::eso::{check_eso, three_colorability_sentence};
use bq_logic::reductions::{color_graph_backtracking, coloring_to_sat, to_3cnf, Graph};
use bq_logic::structure::Structure;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_logic(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_e11");
    group.sample_size(10);
    for n in [8usize, 14, 20] {
        let g = Graph::random(n, 35, 7);
        group.bench_with_input(BenchmarkId::new("cook_sat", n), &n, |b, _| {
            b.iter(|| {
                let cnf = coloring_to_sat(&g, 3);
                solve(&cnf)
            })
        });
        group.bench_with_input(BenchmarkId::new("direct_backtracking", n), &n, |b, _| {
            b.iter(|| color_graph_backtracking(&g, 3))
        });
        group.bench_with_input(BenchmarkId::new("cook_sat_3cnf", n), &n, |b, _| {
            b.iter(|| {
                let cnf = to_3cnf(&coloring_to_sat(&g, 3));
                solve(&cnf)
            })
        });
    }
    // Fagin's witness search is exponential: bench only at tiny sizes.
    for n in [4usize, 5] {
        let g = Graph::random(n, 50, 7);
        let s = Structure::of_graph(&g);
        let sentence = three_colorability_sentence();
        group.bench_with_input(BenchmarkId::new("fagin_eso", n), &n, |b, _| {
            b.iter(|| check_eso(&s, &sentence))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_logic);
criterion_main!(benches);
