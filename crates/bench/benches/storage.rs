//! Substrate microbenchmarks: B+-tree vs std BTreeMap, heap-file
//! insert/scan, buffer-pool hit behaviour, WAL append + recovery.

use bq_bench::bench;
use bq_storage::btree::BPlusTree;
use bq_storage::buffer::BufferPool;
use bq_storage::heap::HeapFile;
use bq_storage::page::{PageId, PageStore};
use bq_storage::wal::{LogRecord, Wal};
use std::collections::BTreeMap;

fn main() {
    println!("storage");

    for n in [1_000u64, 10_000] {
        bench(&format!("bplus_insert/{n}"), 10, || {
            let mut t = BPlusTree::new(32);
            for i in 0..n {
                t.upsert(i.wrapping_mul(2654435761) % n, i);
            }
            t.len()
        });
        bench(&format!("std_btreemap_insert/{n}"), 10, || {
            let mut t = BTreeMap::new();
            for i in 0..n {
                t.insert(i.wrapping_mul(2654435761) % n, i);
            }
            t.len()
        });
    }

    bench("heap_insert_scan_1000", 10, || {
        let mut store = PageStore::new();
        let mut heap = HeapFile::new();
        let rec = [7u8; 64];
        for _ in 0..1000 {
            heap.insert(&mut store, &rec).expect("insert");
        }
        heap.scan(&mut store).expect("scan").len()
    });

    {
        let mut store = PageStore::new();
        let ids: Vec<PageId> = (0..64).map(|_| store.allocate()).collect();
        bench("buffer_pool_hot_loop", 10, || {
            let pool = BufferPool::new(16);
            for _ in 0..10 {
                for &id in &ids {
                    pool.pin(&mut store, id).expect("pin");
                    pool.unpin(id, false).expect("unpin");
                }
            }
            pool.stats().hit_rate()
        });
    }

    bench("wal_append_recover_1000", 10, || {
        let mut store = PageStore::new();
        let pid = store.allocate();
        let mut wal = Wal::new();
        for t in 0..1000u64 {
            wal.append(&LogRecord::Begin(t)).expect("append");
            wal.append(&LogRecord::Update {
                txn: t,
                page: pid,
                offset: (t % 100) as u32,
                before: vec![0],
                after: vec![(t % 256) as u8],
            })
            .expect("append");
            if t % 2 == 0 {
                wal.append(&LogRecord::Commit(t)).expect("append");
            }
        }
        wal.recover(&mut store).expect("recover").redone
    });

    // Facade point lookups: index vs scan.
    {
        use bq_core::Db;
        use bq_relational::{Type, Value};
        let build = |with_index: bool| {
            let mut db = Db::new();
            db.create_table("emp", &[("id", Type::Int), ("dept", Type::Str)])
                .expect("create");
            for i in 0..2000i64 {
                db.insert(
                    "emp",
                    vec![Value::Int(i), Value::str(format!("d{}", i % 50))],
                )
                .expect("insert");
            }
            if with_index {
                db.create_index("emp", "id").expect("index");
            }
            db
        };
        let indexed = build(true);
        let plain = build(false);
        bench("core_lookup_indexed", 10, || {
            indexed
                .lookup("emp", "id", &Value::Int(1234))
                .expect("lookup")
        });
        bench("core_lookup_scan", 10, || {
            plain
                .lookup("emp", "id", &Value::Int(1234))
                .expect("lookup")
        });
    }
}
