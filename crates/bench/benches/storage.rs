//! Substrate microbenchmarks: B+-tree vs std BTreeMap, heap-file
//! insert/scan, buffer-pool hit behaviour, WAL append + recovery.

use bq_storage::btree::BPlusTree;
use bq_storage::buffer::BufferPool;
use bq_storage::heap::HeapFile;
use bq_storage::page::{PageId, PageStore};
use bq_storage::wal::{LogRecord, Wal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(10);

    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("bplus_insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = BPlusTree::new(32);
                for i in 0..n {
                    t.upsert(i.wrapping_mul(2654435761) % n, i);
                }
                t.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("std_btreemap_insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = BTreeMap::new();
                for i in 0..n {
                    t.insert(i.wrapping_mul(2654435761) % n, i);
                }
                t.len()
            })
        });
    }

    group.bench_function("heap_insert_scan_1000", |b| {
        b.iter(|| {
            let mut store = PageStore::new();
            let mut heap = HeapFile::new();
            let rec = [7u8; 64];
            for _ in 0..1000 {
                heap.insert(&mut store, &rec).expect("insert");
            }
            heap.scan(&mut store).expect("scan").len()
        })
    });

    group.bench_function("buffer_pool_hot_loop", |b| {
        let mut store = PageStore::new();
        let ids: Vec<PageId> = (0..64).map(|_| store.allocate()).collect();
        b.iter(|| {
            let pool = BufferPool::new(16);
            for _ in 0..10 {
                for &id in &ids {
                    pool.pin(&mut store, id).expect("pin");
                    pool.unpin(id, false).expect("unpin");
                }
            }
            pool.stats().hit_rate()
        })
    });

    group.bench_function("wal_append_recover_1000", |b| {
        b.iter(|| {
            let mut store = PageStore::new();
            let pid = store.allocate();
            let mut wal = Wal::new();
            for t in 0..1000u64 {
                wal.append(&LogRecord::Begin(t));
                wal.append(&LogRecord::Update {
                    txn: t,
                    page: pid,
                    offset: (t % 100) as u32,
                    before: vec![0],
                    after: vec![(t % 256) as u8],
                });
                if t % 2 == 0 {
                    wal.append(&LogRecord::Commit(t));
                }
            }
            wal.recover(&mut store).expect("recover").redone
        })
    });

    // Facade point lookups: index vs scan.
    {
        use bq_core::Db;
        use bq_relational::{Type, Value};
        let mut build = |with_index: bool| {
            let mut db = Db::new();
            db.create_table("emp", &[("id", Type::Int), ("dept", Type::Str)])
                .expect("create");
            for i in 0..2000i64 {
                db.insert("emp", vec![Value::Int(i), Value::str(format!("d{}", i % 50))])
                    .expect("insert");
            }
            if with_index {
                db.create_index("emp", "id").expect("index");
            }
            db
        };
        let indexed = build(true);
        let plain = build(false);
        group.bench_function("core_lookup_indexed", |b| {
            b.iter(|| indexed.lookup("emp", "id", &Value::Int(1234)).expect("lookup"))
        });
        group.bench_function("core_lookup_scan", |b| {
            b.iter(|| plain.lookup("emp", "id", &Value::Int(1234)).expect("lookup"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
