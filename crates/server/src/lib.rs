//! bq-server: the TCP front-end and client driver.
//!
//! Four layers, bottom-up:
//!
//! * [`wire`] — the versioned, length-prefixed binary protocol: frames,
//!   request/response messages, and the typed error taxonomy that maps
//!   [`bq_core::CoreError`] onto the wire.
//! * [`stmt`] — statement classification and [`stmt::SessionCore`], the
//!   per-session state machine (limits, mode, prepared statements, the
//!   interactive transaction) shared by both drivers.
//! * [`driver`] — the [`Driver`] trait plus the in-process
//!   [`EmbeddedDriver`]; [`client`] adds the remote [`Connection`]. A
//!   frontend written against the trait can't tell which one it holds.
//! * [`server`] — [`serve`]: the accept loop, per-connection sessions,
//!   admission-controlled load shedding, the running-query registry
//!   behind `KILL`, and graceful drain-then-cancel shutdown.
//!
//! The quickest tour is the `serve` example: start a server on an
//! ephemeral port, connect, create/insert/select over the wire, and shut
//! down cleanly.

pub mod client;
pub mod driver;
pub mod server;
pub mod stmt;
pub mod wire;

pub use client::{connect, connect_with, ConnectOptions, Connection};
pub use driver::{Driver, DriverError, EmbeddedDriver, Outcome, RunningQuery};
pub use server::{serve, Server, ServerConfig};
pub use stmt::{parse_statement, SessionCore, Statement};
pub use wire::{ErrorCode, QueryInfo, Request, Response, WireError, PROTOCOL_VERSION};
