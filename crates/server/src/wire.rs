//! The bq wire protocol, version 1.
//!
//! Every message is one *frame*: a little-endian `u32` body length
//! followed by the body; the first body byte is the opcode. Bodies are
//! built from four primitives — `u8`, little-endian `u32`/`u64`, and
//! length-prefixed UTF-8 strings — plus tuples in the storage codec
//! ([`bq_core::codec`]). A connection opens with a [`Request::Hello`]
//! carrying the `b"BQWP"` magic and the client's protocol version; the
//! server answers [`Response::HelloOk`] (same version, session id) or a
//! typed [`Response::Error`] and closes. Query results stream as one
//! [`Response::RowSchema`] frame, zero or more [`Response::Rows`]
//! batches, and a terminating [`Response::Done`].
//!
//! Decoding is total: any byte sequence either parses or returns
//! [`WireError`] — never a panic — which is what the protocol-fuzz
//! integration test leans on.

use bq_core::{CoreError, SessionLimits};
use bq_exec::ExecMode;
use bq_governor::GovernorError;
use bq_relational::{Schema, Tuple, Type};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u32 = 1;

/// Handshake magic: the first four body bytes of a `Hello`.
pub const MAGIC: [u8; 4] = *b"BQWP";

/// Hard cap on a frame body; a length prefix above this is a protocol
/// error, not an allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// A malformed frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------

/// Write one `len | body` frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one frame body, rejecting empty and oversized frames before any
/// allocation happens.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

// ---------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| WireError("length overflow".into()))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| WireError(format!("truncated at byte {}", self.pos)))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(WireError(format!("string length {len} exceeds frame cap")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError(e.to_string()))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(WireError(format!("bad option tag {other}"))),
        }
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            out.extend_from_slice(&n.to_le_bytes());
        }
    }
}

fn type_byte(ty: Type) -> u8 {
    match ty {
        Type::Int => 0,
        Type::Str => 1,
        Type::Bool => 2,
    }
}

fn type_from_byte(b: u8) -> Result<Type, WireError> {
    match b {
        0 => Ok(Type::Int),
        1 => Ok(Type::Str),
        2 => Ok(Type::Bool),
        other => Err(WireError(format!("bad type byte {other}"))),
    }
}

fn put_mode(out: &mut Vec<u8>, mode: ExecMode) {
    match mode {
        ExecMode::Sequential => {
            out.push(0);
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        ExecMode::Parallel(n) => {
            out.push(1);
            out.extend_from_slice(&(n as u32).to_le_bytes());
        }
    }
}

fn mode_from(c: &mut Cursor<'_>) -> Result<ExecMode, WireError> {
    let kind = c.u8()?;
    let workers = c.u32()? as usize;
    match kind {
        0 => Ok(ExecMode::Sequential),
        1 => Ok(ExecMode::Parallel(workers.max(1))),
        other => Err(WireError(format!("bad exec-mode byte {other}"))),
    }
}

// ---------------------------------------------------------------------
// Requests (client → server)
// ---------------------------------------------------------------------

const OP_HELLO: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_PREPARE: u8 = 0x03;
const OP_EXECUTE: u8 = 0x04;
const OP_KILL: u8 = 0x05;
const OP_SET_LIMITS: u8 = 0x06;
const OP_SET_MODE: u8 = 0x07;
const OP_LIST_QUERIES: u8 = 0x08;
const OP_CLOSE: u8 = 0x09;
const OP_QUERY_TAGGED: u8 = 0x0A;
const OP_SUBSCRIBE: u8 = 0x0B;
const OP_REPL_ACK: u8 = 0x0C;

/// [`Request::Subscribe`] `start` value that asks for a full bootstrap:
/// the server answers with a [`Response::Snapshot`] before streaming.
pub const SUBSCRIBE_BOOTSTRAP: u64 = u64::MAX;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Must be the first frame on a connection: magic, protocol version,
    /// and a free-form client identifier.
    Hello {
        /// Client's protocol version; the server refuses a mismatch.
        version: u32,
        /// Client software name, for logs.
        client: String,
    },
    /// Parse and run one statement (SQL-ish select, create table,
    /// insert into, begin/commit/rollback).
    Query {
        /// The statement text.
        sql: String,
    },
    /// Parse and optimize a select into a server-side prepared plan.
    Prepare {
        /// The select text.
        sql: String,
    },
    /// Run a previously prepared plan.
    Execute {
        /// Id returned by [`Response::Prepared`].
        stmt: u64,
    },
    /// Cancel a running query (any session) by its registry id.
    Kill {
        /// Id shown by [`Request::ListQueries`] / returned in
        /// [`Response::Done`].
        query: u64,
    },
    /// Replace this session's resource limits.
    SetLimits {
        /// The new limits; `None` fields are unlimited.
        limits: SessionLimits,
    },
    /// Set this session's execution mode.
    SetMode {
        /// Sequential or morsel-parallel.
        mode: ExecMode,
    },
    /// List the queries currently running on the server.
    ListQueries,
    /// Cleanly end the session (open transactions are rolled back).
    Close,
    /// Run one statement tagged with a client idempotency id. The server
    /// deduplicates on (session client identity, request id): a retry of
    /// an already-committed write answers success without re-applying.
    QueryTagged {
        /// The statement text.
        sql: String,
        /// Client-chosen request id, unique per client identity.
        request: u64,
    },
    /// Turn this connection into a replication stream. `start` is the
    /// primary WAL byte offset to resume from, or
    /// [`SUBSCRIBE_BOOTSTRAP`] to request a snapshot first.
    Subscribe {
        /// Resume offset, or [`SUBSCRIBE_BOOTSTRAP`].
        start: u64,
    },
    /// Replica → primary acknowledgement: every WAL byte below `through`
    /// has been applied. Also the resync signal — an ack below the
    /// shipped position rewinds the stream (segment loss recovery).
    ReplAck {
        /// Applied-through byte offset.
        through: u64,
    },
}

impl Request {
    /// Encode to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Request::Hello { version, client } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&MAGIC);
                out.extend_from_slice(&version.to_le_bytes());
                put_string(&mut out, client);
            }
            Request::Query { sql } => {
                out.push(OP_QUERY);
                put_string(&mut out, sql);
            }
            Request::Prepare { sql } => {
                out.push(OP_PREPARE);
                put_string(&mut out, sql);
            }
            Request::Execute { stmt } => {
                out.push(OP_EXECUTE);
                out.extend_from_slice(&stmt.to_le_bytes());
            }
            Request::Kill { query } => {
                out.push(OP_KILL);
                out.extend_from_slice(&query.to_le_bytes());
            }
            Request::SetLimits { limits } => {
                out.push(OP_SET_LIMITS);
                put_opt_u64(&mut out, limits.memory_bytes);
                put_opt_u64(&mut out, limits.deadline_ms);
                put_opt_u64(&mut out, limits.max_iterations);
            }
            Request::SetMode { mode } => {
                out.push(OP_SET_MODE);
                put_mode(&mut out, *mode);
            }
            Request::ListQueries => out.push(OP_LIST_QUERIES),
            Request::Close => out.push(OP_CLOSE),
            Request::QueryTagged { sql, request } => {
                out.push(OP_QUERY_TAGGED);
                put_string(&mut out, sql);
                out.extend_from_slice(&request.to_le_bytes());
            }
            Request::Subscribe { start } => {
                out.push(OP_SUBSCRIBE);
                out.extend_from_slice(&start.to_le_bytes());
            }
            Request::ReplAck { through } => {
                out.push(OP_REPL_ACK);
                out.extend_from_slice(&through.to_le_bytes());
            }
        }
        out
    }

    /// Decode a frame body.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            OP_HELLO => {
                let magic = c.take(4)?;
                if magic != MAGIC {
                    return Err(WireError("bad handshake magic".into()));
                }
                Request::Hello {
                    version: c.u32()?,
                    client: c.string()?,
                }
            }
            OP_QUERY => Request::Query { sql: c.string()? },
            OP_PREPARE => Request::Prepare { sql: c.string()? },
            OP_EXECUTE => Request::Execute { stmt: c.u64()? },
            OP_KILL => Request::Kill { query: c.u64()? },
            OP_SET_LIMITS => Request::SetLimits {
                limits: SessionLimits {
                    memory_bytes: c.opt_u64()?,
                    deadline_ms: c.opt_u64()?,
                    max_iterations: c.opt_u64()?,
                },
            },
            OP_SET_MODE => Request::SetMode {
                mode: mode_from(&mut c)?,
            },
            OP_LIST_QUERIES => Request::ListQueries,
            OP_CLOSE => Request::Close,
            OP_QUERY_TAGGED => Request::QueryTagged {
                sql: c.string()?,
                request: c.u64()?,
            },
            OP_SUBSCRIBE => Request::Subscribe { start: c.u64()? },
            OP_REPL_ACK => Request::ReplAck { through: c.u64()? },
            other => return Err(WireError(format!("bad request opcode {other:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Responses (server → client)
// ---------------------------------------------------------------------

const OP_HELLO_OK: u8 = 0x81;
const OP_ROW_SCHEMA: u8 = 0x82;
const OP_ROWS: u8 = 0x83;
const OP_DONE: u8 = 0x84;
const OP_PREPARED: u8 = 0x85;
const OP_KILLED: u8 = 0x86;
const OP_QUERIES: u8 = 0x87;
const OP_OK: u8 = 0x88;
const OP_ERROR: u8 = 0x89;
const OP_SNAPSHOT: u8 = 0x8A;
const OP_WAL_SEGMENT: u8 = 0x8B;
const OP_GOING_AWAY: u8 = 0x8C;

/// One row of [`Response::Queries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryInfo {
    /// Registry id, valid as a [`Request::Kill`] target while running.
    pub query: u64,
    /// Session the query belongs to.
    pub session: u64,
    /// Statement text.
    pub sql: String,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful handshake.
    HelloOk {
        /// Server's protocol version (equals the client's).
        version: u32,
        /// Server-assigned session id.
        session: u64,
    },
    /// First frame of a result stream: the column names and types.
    RowSchema {
        /// `(name, type)` per column, in order.
        cols: Vec<(String, Type)>,
    },
    /// One batch of result tuples (storage-codec encoded).
    Rows {
        /// The batch.
        tuples: Vec<Tuple>,
    },
    /// Terminates a statement: total rows and the query's registry id.
    Done {
        /// Rows streamed (0 for non-selects).
        rows: u64,
        /// Registry id the statement ran under (0 for unregistered work).
        query: u64,
        /// Human-readable outcome, e.g. `created table emp`.
        message: String,
    },
    /// A plan was prepared.
    Prepared {
        /// Id to pass to [`Request::Execute`].
        stmt: u64,
    },
    /// Answer to [`Request::Kill`].
    Killed {
        /// Was a running query with that id found (and cancelled)?
        found: bool,
    },
    /// Answer to [`Request::ListQueries`].
    Queries {
        /// Currently running queries.
        entries: Vec<QueryInfo>,
    },
    /// Generic success with a message.
    Ok {
        /// Human-readable confirmation.
        message: String,
    },
    /// Typed failure; the session stays usable unless the code says
    /// otherwise ([`ErrorCode::Protocol`] closes the connection).
    Error {
        /// Machine-readable taxonomy entry.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Bootstrap payload for a [`Request::Subscribe`] with
    /// [`SUBSCRIBE_BOOTSTRAP`]: a full engine snapshot in the
    /// `bq_core::Db::snapshot_bytes` format.
    Snapshot {
        /// The snapshot image.
        bytes: Vec<u8>,
    },
    /// One shipped chunk of the primary's durable WAL.
    WalSegment {
        /// Primary WAL byte offset of the first byte in `bytes`.
        start: u64,
        /// Raw WAL bytes (whole-record aligned on the primary side).
        bytes: Vec<u8>,
    },
    /// The server is draining; long-lived peers should reconnect
    /// elsewhere instead of waiting out a read timeout.
    GoingAway {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Encode to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Response::HelloOk { version, session } => {
                out.push(OP_HELLO_OK);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&session.to_le_bytes());
            }
            Response::RowSchema { cols } => {
                out.push(OP_ROW_SCHEMA);
                out.extend_from_slice(&(cols.len() as u32).to_le_bytes());
                for (name, ty) in cols {
                    put_string(&mut out, name);
                    out.push(type_byte(*ty));
                }
            }
            Response::Rows { tuples } => {
                out.push(OP_ROWS);
                out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
                for t in tuples {
                    let bytes = bq_core::codec::encode(t);
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(&bytes);
                }
            }
            Response::Done {
                rows,
                query,
                message,
            } => {
                out.push(OP_DONE);
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&query.to_le_bytes());
                put_string(&mut out, message);
            }
            Response::Prepared { stmt } => {
                out.push(OP_PREPARED);
                out.extend_from_slice(&stmt.to_le_bytes());
            }
            Response::Killed { found } => {
                out.push(OP_KILLED);
                out.push(u8::from(*found));
            }
            Response::Queries { entries } => {
                out.push(OP_QUERIES);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    out.extend_from_slice(&e.query.to_le_bytes());
                    out.extend_from_slice(&e.session.to_le_bytes());
                    put_string(&mut out, &e.sql);
                }
            }
            Response::Ok { message } => {
                out.push(OP_OK);
                put_string(&mut out, message);
            }
            Response::Error { code, message } => {
                out.push(OP_ERROR);
                out.push(code.as_u8());
                put_string(&mut out, message);
            }
            Response::Snapshot { bytes } => {
                out.push(OP_SNAPSHOT);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            Response::WalSegment { start, bytes } => {
                out.push(OP_WAL_SEGMENT);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            Response::GoingAway { message } => {
                out.push(OP_GOING_AWAY);
                put_string(&mut out, message);
            }
        }
        out
    }

    /// Decode a frame body.
    pub fn decode(body: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            OP_HELLO_OK => Response::HelloOk {
                version: c.u32()?,
                session: c.u64()?,
            },
            OP_ROW_SCHEMA => {
                let n = c.u32()? as usize;
                let mut cols = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = c.string()?;
                    let ty = type_from_byte(c.u8()?)?;
                    cols.push((name, ty));
                }
                Response::RowSchema { cols }
            }
            OP_ROWS => {
                let n = c.u32()? as usize;
                let mut tuples = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let len = c.u32()? as usize;
                    let bytes = c.take(len)?;
                    let t = bq_core::codec::decode(bytes)
                        .map_err(|e| WireError(format!("row codec: {e}")))?;
                    tuples.push(t);
                }
                Response::Rows { tuples }
            }
            OP_DONE => Response::Done {
                rows: c.u64()?,
                query: c.u64()?,
                message: c.string()?,
            },
            OP_PREPARED => Response::Prepared { stmt: c.u64()? },
            OP_KILLED => Response::Killed {
                found: c.u8()? != 0,
            },
            OP_QUERIES => {
                let n = c.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    entries.push(QueryInfo {
                        query: c.u64()?,
                        session: c.u64()?,
                        sql: c.string()?,
                    });
                }
                Response::Queries { entries }
            }
            OP_OK => Response::Ok {
                message: c.string()?,
            },
            OP_ERROR => Response::Error {
                code: ErrorCode::from_u8(c.u8()?),
                message: c.string()?,
            },
            OP_SNAPSHOT => {
                let len = c.u32()? as usize;
                if len > MAX_FRAME {
                    return Err(WireError(format!(
                        "snapshot length {len} exceeds frame cap"
                    )));
                }
                Response::Snapshot {
                    bytes: c.take(len)?.to_vec(),
                }
            }
            OP_WAL_SEGMENT => {
                let start = c.u64()?;
                let len = c.u32()? as usize;
                if len > MAX_FRAME {
                    return Err(WireError(format!("segment length {len} exceeds frame cap")));
                }
                Response::WalSegment {
                    start,
                    bytes: c.take(len)?.to_vec(),
                }
            }
            OP_GOING_AWAY => Response::GoingAway {
                message: c.string()?,
            },
            other => return Err(WireError(format!("bad response opcode {other:#04x}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

/// Build the wire [`Schema`] carried by [`Response::RowSchema`].
pub fn schema_from_cols(cols: &[(String, Type)]) -> Result<Schema, WireError> {
    let attrs: Vec<(&str, Type)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Schema::new(&attrs).map_err(|e| WireError(e.to_string()))
}

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

/// Machine-readable error classes carried by [`Response::Error`].
///
/// The first block mirrors [`CoreError`]; the second mirrors
/// [`GovernorError`]; the rest are transport/session conditions that only
/// exist at the wire layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed frame or handshake; the server closes the connection.
    Protocol = 1,
    /// Statement understood but not servable over the wire.
    Unsupported = 2,
    /// Relational-layer failure (parse, schema, evaluation).
    Query = 3,
    /// Datalog-layer failure.
    Datalog = 4,
    /// Storage-layer failure.
    Storage = 5,
    /// `create table` of an existing table.
    TableExists = 6,
    /// Statement referenced a missing table.
    NoSuchTable = 7,
    /// Unknown or finished transaction handle.
    BadTxn = 8,
    /// Lock conflict with another transaction.
    Locked = 9,
    /// Row bytes failed to decode.
    Codec = 10,
    /// The statement ran past its deadline.
    DeadlineExceeded = 11,
    /// The statement was cancelled (`KILL` or shutdown).
    Cancelled = 12,
    /// The statement exceeded its memory budget.
    MemoryExceeded = 13,
    /// Admission control shed the connection or statement.
    Overloaded = 14,
    /// A fixpoint hit its iteration cap.
    IterationLimit = 15,
    /// The server is shutting down.
    Shutdown = 16,
    /// `Execute` named an unknown prepared-statement id.
    NoSuchStatement = 17,
    /// Transaction-state misuse (nested `begin`, `commit` outside one).
    TxnState = 18,
    /// Transport failure talking to the peer.
    Io = 19,
    /// A socket deadline expired (connect, read, or write).
    Timeout = 20,
    /// The server announced a drain; reconnect to another endpoint.
    GoingAway = 21,
    /// A write was sent to a read-only replica.
    ReadOnlyReplica = 22,
    /// Forward-compatibility catch-all for codes this build predates.
    Unknown = 255,
}

impl ErrorCode {
    /// Wire byte for this code.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode a wire byte; unknown bytes map to [`ErrorCode::Unknown`].
    pub fn from_u8(b: u8) -> ErrorCode {
        match b {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::Query,
            4 => ErrorCode::Datalog,
            5 => ErrorCode::Storage,
            6 => ErrorCode::TableExists,
            7 => ErrorCode::NoSuchTable,
            8 => ErrorCode::BadTxn,
            9 => ErrorCode::Locked,
            10 => ErrorCode::Codec,
            11 => ErrorCode::DeadlineExceeded,
            12 => ErrorCode::Cancelled,
            13 => ErrorCode::MemoryExceeded,
            14 => ErrorCode::Overloaded,
            15 => ErrorCode::IterationLimit,
            16 => ErrorCode::Shutdown,
            17 => ErrorCode::NoSuchStatement,
            18 => ErrorCode::TxnState,
            19 => ErrorCode::Io,
            20 => ErrorCode::Timeout,
            21 => ErrorCode::GoingAway,
            22 => ErrorCode::ReadOnlyReplica,
            _ => ErrorCode::Unknown,
        }
    }

    /// The wire code for an engine error.
    pub fn from_core(e: &CoreError) -> ErrorCode {
        match e {
            CoreError::Rel(_) => ErrorCode::Query,
            CoreError::Datalog(_) => ErrorCode::Datalog,
            CoreError::Storage(_) => ErrorCode::Storage,
            CoreError::TableExists(_) => ErrorCode::TableExists,
            CoreError::NoSuchTable(_) => ErrorCode::NoSuchTable,
            CoreError::BadTxn(_) => ErrorCode::BadTxn,
            CoreError::Locked { .. } => ErrorCode::Locked,
            CoreError::Codec(_) => ErrorCode::Codec,
            CoreError::Governor(g) => ErrorCode::from_governor(g),
        }
    }

    /// The wire code for a governor stop.
    pub fn from_governor(g: &GovernorError) -> ErrorCode {
        match g {
            GovernorError::DeadlineExceeded { .. } => ErrorCode::DeadlineExceeded,
            GovernorError::Cancelled => ErrorCode::Cancelled,
            GovernorError::MemoryExceeded { .. } => ErrorCode::MemoryExceeded,
            GovernorError::Overloaded { .. } => ErrorCode::Overloaded,
            GovernorError::IterationLimit { .. } => ErrorCode::IterationLimit,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Query => "query",
            ErrorCode::Datalog => "datalog",
            ErrorCode::Storage => "storage",
            ErrorCode::TableExists => "table-exists",
            ErrorCode::NoSuchTable => "no-such-table",
            ErrorCode::BadTxn => "bad-txn",
            ErrorCode::Locked => "locked",
            ErrorCode::Codec => "codec",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::MemoryExceeded => "memory-exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::IterationLimit => "iteration-limit",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::NoSuchStatement => "no-such-statement",
            ErrorCode::TxnState => "txn-state",
            ErrorCode::Io => "io",
            ErrorCode::Timeout => "timeout",
            ErrorCode::GoingAway => "going-away",
            ErrorCode::ReadOnlyReplica => "read-only-replica",
            ErrorCode::Unknown => "unknown",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bq_relational::Value;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            client: "bqsh".into(),
        });
        roundtrip_req(Request::Query {
            sql: "select e.name from emp e".into(),
        });
        roundtrip_req(Request::Prepare {
            sql: "select …".into(),
        });
        roundtrip_req(Request::Execute { stmt: 7 });
        roundtrip_req(Request::Kill { query: u64::MAX });
        roundtrip_req(Request::SetLimits {
            limits: SessionLimits {
                memory_bytes: Some(1 << 20),
                deadline_ms: None,
                max_iterations: Some(0),
            },
        });
        roundtrip_req(Request::SetMode {
            mode: ExecMode::Sequential,
        });
        roundtrip_req(Request::SetMode {
            mode: ExecMode::Parallel(4),
        });
        roundtrip_req(Request::ListQueries);
        roundtrip_req(Request::Close);
        roundtrip_req(Request::QueryTagged {
            sql: "insert into emp values ('ann', 90, true)".into(),
            request: 17,
        });
        roundtrip_req(Request::Subscribe { start: 4096 });
        roundtrip_req(Request::Subscribe {
            start: SUBSCRIBE_BOOTSTRAP,
        });
        roundtrip_req(Request::ReplAck { through: u64::MAX });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::HelloOk {
            version: 1,
            session: 42,
        });
        roundtrip_resp(Response::RowSchema {
            cols: vec![
                ("name".into(), Type::Str),
                ("sal".into(), Type::Int),
                ("active".into(), Type::Bool),
            ],
        });
        roundtrip_resp(Response::Rows {
            tuples: vec![
                Tuple::new(vec![Value::str("ann"), Value::Int(90), Value::Bool(true)]),
                Tuple::new(vec![Value::str("bob"), Value::Null(3), Value::Bool(false)]),
            ],
        });
        roundtrip_resp(Response::Done {
            rows: 2,
            query: 9,
            message: "ok".into(),
        });
        roundtrip_resp(Response::Prepared { stmt: 3 });
        roundtrip_resp(Response::Killed { found: true });
        roundtrip_resp(Response::Queries {
            entries: vec![QueryInfo {
                query: 1,
                session: 2,
                sql: "select …".into(),
            }],
        });
        roundtrip_resp(Response::Ok {
            message: "bye".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Overloaded,
            message: "shed".into(),
        });
        roundtrip_resp(Response::Snapshot {
            bytes: vec![1, 0, 0, 0, 0, 0, 0, 0, 7],
        });
        roundtrip_resp(Response::Snapshot { bytes: Vec::new() });
        roundtrip_resp(Response::WalSegment {
            start: 8192,
            bytes: vec![0xAB; 37],
        });
        roundtrip_resp(Response::GoingAway {
            message: "draining".into(),
        });
    }

    #[test]
    fn garbage_bodies_decode_to_errors_not_panics() {
        let cases: &[&[u8]] = &[
            &[],
            &[0x00],
            &[0xff, 1, 2, 3],
            &[OP_HELLO, b'X', b'X', b'X', b'X', 1, 0, 0, 0],
            &[OP_QUERY, 200, 0, 0, 0], // string length past the body
            &[OP_SET_LIMITS, 9],       // bad option tag
            &[OP_SET_MODE, 7, 0, 0, 0, 0],
            &[OP_CLOSE, 0],                            // trailing byte
            &[OP_QUERY_TAGGED, 200, 0, 0, 0],          // string length past the body
            &[OP_SUBSCRIBE, 1, 2, 3],                  // truncated u64
            &[OP_REPL_ACK, 0, 0, 0, 0, 0, 0, 0, 0, 0], // trailing byte
        ];
        for body in cases {
            assert!(Request::decode(body).is_err(), "{body:?}");
        }
        assert!(Response::decode(&[OP_ROWS, 1, 0, 0, 0, 99, 0, 0, 0]).is_err());
        assert!(Response::decode(&[OP_ROW_SCHEMA, 1, 0, 0, 0, 1, 0, 0, 0, b'a', 9]).is_err());
        // Oversized length prefixes refuse before allocating.
        assert!(Response::decode(&[OP_SNAPSHOT, 0xFF, 0xFF, 0xFF, 0xFF]).is_err());
        assert!(Response::decode(&[
            OP_WAL_SEGMENT,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0xFF,
            0xFF,
            0xFF,
            0xFF
        ])
        .is_err());
        // Truncated segment body.
        assert!(
            Response::decode(&[OP_WAL_SEGMENT, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 1]).is_err()
        );
    }

    #[test]
    fn error_codes_roundtrip_and_map_the_taxonomy() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::Unsupported,
            ErrorCode::Query,
            ErrorCode::Datalog,
            ErrorCode::Storage,
            ErrorCode::TableExists,
            ErrorCode::NoSuchTable,
            ErrorCode::BadTxn,
            ErrorCode::Locked,
            ErrorCode::Codec,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Cancelled,
            ErrorCode::MemoryExceeded,
            ErrorCode::Overloaded,
            ErrorCode::IterationLimit,
            ErrorCode::Shutdown,
            ErrorCode::NoSuchStatement,
            ErrorCode::TxnState,
            ErrorCode::Io,
            ErrorCode::Timeout,
            ErrorCode::GoingAway,
            ErrorCode::ReadOnlyReplica,
        ] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), code);
        }
        assert_eq!(ErrorCode::from_u8(200), ErrorCode::Unknown);
        assert_eq!(
            ErrorCode::from_core(&CoreError::NoSuchTable("t".into())),
            ErrorCode::NoSuchTable
        );
        assert_eq!(
            ErrorCode::from_core(&CoreError::Governor(GovernorError::Overloaded {
                running: 1,
                queued: 0
            })),
            ErrorCode::Overloaded
        );
        assert_eq!(
            ErrorCode::from_governor(&GovernorError::Cancelled),
            ErrorCode::Cancelled
        );
    }

    #[test]
    fn frame_transport_rejects_empty_and_oversized() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hi").unwrap();
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), b"hi");

        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut zero.as_slice()).is_err());
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        let truncated = [5u8, 0, 0, 0, b'x'];
        assert!(read_frame(&mut truncated.as_slice()).is_err());
    }
}
