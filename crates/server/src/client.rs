//! The remote driver: a TCP [`Connection`] speaking the wire protocol.
//!
//! [`connect`] dials, handshakes, and returns a [`Connection`] that
//! implements [`Driver`] — the same trait the embedded driver implements,
//! so frontends swap between in-process and remote databases without
//! changing a line above the trait.

use crate::driver::{Driver, DriverError, Outcome, RunningQuery};
use crate::wire::{self, schema_from_cols, ErrorCode, Request, Response, PROTOCOL_VERSION};
use bq_core::SessionLimits;
use bq_exec::ExecMode;
use bq_relational::Relation;
use std::net::{TcpStream, ToSocketAddrs};

/// A live session with a `bq-server`.
pub struct Connection {
    stream: TcpStream,
    session: u64,
    limits: SessionLimits,
    mode: Option<ExecMode>,
    /// Query id from the most recent `Done` frame: the server-side trace
    /// id joinable against `bq.queries` / `bq.slow_log`.
    last_query: u64,
}

fn io_err(e: std::io::Error) -> DriverError {
    DriverError::new(ErrorCode::Io, e.to_string())
}

/// Dial `addr`, handshake, and return a live session. A server that sheds
/// the connection answers the dial with a typed `Overloaded` error frame,
/// which surfaces here as a [`DriverError`] with that code.
pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection, DriverError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    let _ = stream.set_nodelay(true);
    let mut conn = Connection {
        stream,
        session: 0,
        limits: SessionLimits::default(),
        mode: None,
        last_query: 0,
    };
    // If the server shed us at accept time it may close before reading
    // the Hello; the refusal frame is still in our receive buffer, so a
    // failed send is survivable as long as the following read works.
    let sent = conn.send(&Request::Hello {
        version: PROTOCOL_VERSION,
        client: "bq-client".to_string(),
    });
    let first = match conn.recv() {
        Ok(resp) => resp,
        Err(recv_err) => {
            sent?;
            return Err(recv_err);
        }
    };
    match first {
        Response::HelloOk { session, .. } => {
            conn.session = session;
            Ok(conn)
        }
        Response::Error { code, message } => Err(DriverError::new(code, message)),
        other => Err(DriverError::new(
            ErrorCode::Protocol,
            format!("expected HelloOk, got {other:?}"),
        )),
    }
}

impl Connection {
    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The trace/query id the server stamped on the last completed
    /// statement (from its `Done` frame). Join it against `bq.queries`
    /// or `bq.slow_log` to recover server-side per-operator timings.
    pub fn last_query_id(&self) -> u64 {
        self.last_query
    }

    fn send(&mut self, req: &Request) -> Result<(), DriverError> {
        wire::write_frame(&mut self.stream, &req.encode()).map_err(io_err)
    }

    fn recv(&mut self) -> Result<Response, DriverError> {
        let body = wire::read_frame(&mut self.stream).map_err(io_err)?;
        Response::decode(&body).map_err(|e| DriverError::new(ErrorCode::Protocol, e.to_string()))
    }

    /// Send one request, read one response, surfacing `Error` frames as
    /// typed driver errors.
    fn roundtrip(&mut self, req: &Request) -> Result<Response, DriverError> {
        self.send(req)?;
        match self.recv()? {
            Response::Error { code, message } => Err(DriverError::new(code, message)),
            other => Ok(other),
        }
    }

    /// Read a result stream: `RowSchema`, `Rows*`, `Done` — or a lone
    /// `Done` for statements that return no rows.
    fn read_result(&mut self) -> Result<Outcome, DriverError> {
        let first = match self.recv()? {
            Response::Error { code, message } => return Err(DriverError::new(code, message)),
            other => other,
        };
        let cols = match first {
            Response::RowSchema { cols } => cols,
            Response::Done {
                message,
                rows,
                query,
            } => {
                self.last_query = query;
                return Ok(Outcome::Message(if message.is_empty() {
                    format!("{rows} rows")
                } else {
                    message
                }));
            }
            other => {
                return Err(DriverError::new(
                    ErrorCode::Protocol,
                    format!("expected RowSchema or Done, got {other:?}"),
                ));
            }
        };
        let schema = schema_from_cols(&cols)
            .map_err(|e| DriverError::new(ErrorCode::Protocol, e.to_string()))?;
        let mut tuples = Vec::new();
        loop {
            match self.recv()? {
                Response::Rows { tuples: batch } => tuples.extend(batch),
                Response::Done { query, .. } => {
                    self.last_query = query;
                    break;
                }
                Response::Error { code, message } => return Err(DriverError::new(code, message)),
                other => {
                    return Err(DriverError::new(
                        ErrorCode::Protocol,
                        format!("expected Rows or Done, got {other:?}"),
                    ));
                }
            }
        }
        let rel = Relation::from_tuples(schema, tuples)
            .map_err(|e| DriverError::new(ErrorCode::Protocol, e.to_string()))?;
        Ok(Outcome::Rows(rel))
    }

    /// Politely end the session; errors are ignored (the socket closes
    /// either way when the connection drops).
    pub fn close(mut self) {
        let _ = self.roundtrip(&Request::Close);
    }
}

impl Driver for Connection {
    fn execute(&mut self, line: &str) -> Result<Outcome, DriverError> {
        self.send(&Request::Query {
            sql: line.to_string(),
        })?;
        self.read_result()
    }

    fn prepare(&mut self, sql: &str) -> Result<u64, DriverError> {
        match self.roundtrip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::Prepared { stmt } => Ok(stmt),
            other => Err(DriverError::new(
                ErrorCode::Protocol,
                format!("expected Prepared, got {other:?}"),
            )),
        }
    }

    fn execute_prepared(&mut self, stmt: u64) -> Result<Outcome, DriverError> {
        self.send(&Request::Execute { stmt })?;
        self.read_result()
    }

    fn set_limits(&mut self, limits: SessionLimits) -> Result<(), DriverError> {
        self.roundtrip(&Request::SetLimits { limits })?;
        self.limits = limits;
        Ok(())
    }

    fn limits(&self) -> SessionLimits {
        self.limits
    }

    fn set_mode(&mut self, mode: ExecMode) -> Result<(), DriverError> {
        self.roundtrip(&Request::SetMode { mode })?;
        self.mode = Some(mode);
        Ok(())
    }

    fn kill(&mut self, query: u64) -> Result<bool, DriverError> {
        match self.roundtrip(&Request::Kill { query })? {
            Response::Killed { found } => Ok(found),
            other => Err(DriverError::new(
                ErrorCode::Protocol,
                format!("expected Killed, got {other:?}"),
            )),
        }
    }

    fn running(&mut self) -> Result<Vec<RunningQuery>, DriverError> {
        match self.roundtrip(&Request::ListQueries)? {
            Response::Queries { entries } => Ok(entries
                .into_iter()
                .map(|e| RunningQuery {
                    query: e.query,
                    session: e.session,
                    sql: e.sql,
                })
                .collect()),
            other => Err(DriverError::new(
                ErrorCode::Protocol,
                format!("expected Queries, got {other:?}"),
            )),
        }
    }

    fn backend(&self) -> &'static str {
        "remote"
    }
}
