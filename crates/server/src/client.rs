//! The remote driver: a TCP [`Connection`] speaking the wire protocol.
//!
//! [`connect`] dials, handshakes, and returns a [`Connection`] that
//! implements [`Driver`] — the same trait the embedded driver implements,
//! so frontends swap between in-process and remote databases without
//! changing a line above the trait.

use crate::driver::{Driver, DriverError, Outcome, RunningQuery};
use crate::wire::{self, schema_from_cols, ErrorCode, Request, Response, PROTOCOL_VERSION};
use bq_core::SessionLimits;
use bq_exec::ExecMode;
use bq_relational::Relation;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket deadlines and identity for [`connect_with`]. The defaults give
/// every dial and handshake a 10-second ceiling so a black-holed endpoint
/// surfaces as a typed [`ErrorCode::Timeout`] instead of hanging forever,
/// while established sessions keep unlimited reads (long queries are
/// legitimate).
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// TCP dial deadline; also bounds the handshake read when
    /// `read_timeout` is `None`.
    pub connect_timeout: Option<Duration>,
    /// Per-read socket deadline after the handshake.
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline.
    pub write_timeout: Option<Duration>,
    /// Client identity sent in the `Hello`. Doubles as the idempotency
    /// namespace for [`Connection::execute_tagged`] request ids.
    pub client: String,
}

impl Default for ConnectOptions {
    fn default() -> ConnectOptions {
        ConnectOptions {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(10)),
            client: "bq-client".to_string(),
        }
    }
}

/// A live session with a `bq-server`.
pub struct Connection {
    stream: TcpStream,
    session: u64,
    limits: SessionLimits,
    mode: Option<ExecMode>,
    /// Query id from the most recent `Done` frame: the server-side trace
    /// id joinable against `bq.queries` / `bq.slow_log`.
    last_query: u64,
}

fn io_err(e: std::io::Error) -> DriverError {
    let code = match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ErrorCode::Timeout,
        _ => ErrorCode::Io,
    };
    DriverError::new(code, e.to_string())
}

/// Dial `addr`, handshake, and return a live session with the default
/// deadlines ([`ConnectOptions::default`]). A server that sheds the
/// connection answers the dial with a typed `Overloaded` error frame,
/// which surfaces here as a [`DriverError`] with that code.
pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection, DriverError> {
    connect_with(addr, ConnectOptions::default())
}

/// Dial with explicit socket deadlines; see [`ConnectOptions`]. A dial or
/// handshake past its deadline returns [`ErrorCode::Timeout`].
pub fn connect_with(
    addr: impl ToSocketAddrs,
    options: ConnectOptions,
) -> Result<Connection, DriverError> {
    let stream = dial(addr, options.connect_timeout)?;
    let _ = stream.set_nodelay(true);
    // During the handshake the connect deadline also bounds the first
    // read — a server that accepts and then stalls is as dead as one
    // that never answers the SYN.
    let handshake_read = options.read_timeout.or(options.connect_timeout);
    let _ = stream.set_read_timeout(handshake_read);
    let _ = stream.set_write_timeout(options.write_timeout);
    let mut conn = Connection {
        stream,
        session: 0,
        limits: SessionLimits::default(),
        mode: None,
        last_query: 0,
    };
    // If the server shed us at accept time it may close before reading
    // the Hello; the refusal frame is still in our receive buffer, so a
    // failed send is survivable as long as the following read works.
    let sent = conn.send(&Request::Hello {
        version: PROTOCOL_VERSION,
        client: options.client.clone(),
    });
    let first = match conn.recv() {
        Ok(resp) => resp,
        Err(recv_err) => {
            sent?;
            return Err(recv_err);
        }
    };
    let _ = conn.stream.set_read_timeout(options.read_timeout);
    match first {
        Response::HelloOk { session, .. } => {
            conn.session = session;
            Ok(conn)
        }
        Response::Error { code, message } => Err(DriverError::new(code, message)),
        other => Err(DriverError::new(
            ErrorCode::Protocol,
            format!("expected HelloOk, got {other:?}"),
        )),
    }
}

/// Resolve and dial, honoring the connect deadline per candidate address.
fn dial(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> Result<TcpStream, DriverError> {
    let Some(timeout) = timeout else {
        return TcpStream::connect(addr).map_err(io_err);
    };
    let addrs = addr.to_socket_addrs().map_err(io_err)?;
    let mut last = None;
    for a in addrs {
        match TcpStream::connect_timeout(&a, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.map_or_else(
        || DriverError::new(ErrorCode::Io, "address resolved to nothing"),
        io_err,
    ))
}

impl Connection {
    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The trace/query id the server stamped on the last completed
    /// statement (from its `Done` frame). Join it against `bq.queries`
    /// or `bq.slow_log` to recover server-side per-operator timings.
    pub fn last_query_id(&self) -> u64 {
        self.last_query
    }

    fn send(&mut self, req: &Request) -> Result<(), DriverError> {
        wire::write_frame(&mut self.stream, &req.encode()).map_err(io_err)
    }

    fn recv(&mut self) -> Result<Response, DriverError> {
        let body = wire::read_frame(&mut self.stream).map_err(io_err)?;
        let resp = Response::decode(&body)
            .map_err(|e| DriverError::new(ErrorCode::Protocol, e.to_string()))?;
        // A drain announcement means this endpoint is done serving;
        // surface it as a typed error so failover logic reconnects
        // immediately instead of waiting out a read timeout.
        if let Response::GoingAway { message } = resp {
            return Err(DriverError::new(ErrorCode::GoingAway, message));
        }
        Ok(resp)
    }

    /// Send one request, read one response, surfacing `Error` frames as
    /// typed driver errors.
    fn roundtrip(&mut self, req: &Request) -> Result<Response, DriverError> {
        self.send(req)?;
        match self.recv()? {
            Response::Error { code, message } => Err(DriverError::new(code, message)),
            other => Ok(other),
        }
    }

    /// Read a result stream: `RowSchema`, `Rows*`, `Done` — or a lone
    /// `Done` for statements that return no rows.
    fn read_result(&mut self) -> Result<Outcome, DriverError> {
        let first = match self.recv()? {
            Response::Error { code, message } => return Err(DriverError::new(code, message)),
            other => other,
        };
        let cols = match first {
            Response::RowSchema { cols } => cols,
            Response::Done {
                message,
                rows,
                query,
            } => {
                self.last_query = query;
                return Ok(Outcome::Message(if message.is_empty() {
                    format!("{rows} rows")
                } else {
                    message
                }));
            }
            other => {
                return Err(DriverError::new(
                    ErrorCode::Protocol,
                    format!("expected RowSchema or Done, got {other:?}"),
                ));
            }
        };
        let schema = schema_from_cols(&cols)
            .map_err(|e| DriverError::new(ErrorCode::Protocol, e.to_string()))?;
        let mut tuples = Vec::new();
        loop {
            match self.recv()? {
                Response::Rows { tuples: batch } => tuples.extend(batch),
                Response::Done { query, .. } => {
                    self.last_query = query;
                    break;
                }
                Response::Error { code, message } => return Err(DriverError::new(code, message)),
                other => {
                    return Err(DriverError::new(
                        ErrorCode::Protocol,
                        format!("expected Rows or Done, got {other:?}"),
                    ));
                }
            }
        }
        let rel = Relation::from_tuples(schema, tuples)
            .map_err(|e| DriverError::new(ErrorCode::Protocol, e.to_string()))?;
        Ok(Outcome::Rows(rel))
    }

    /// Run one statement tagged with a client idempotency id. The server
    /// deduplicates on (client identity, `request`): retrying the same
    /// tagged statement after a lost ack is safe — an already-committed
    /// write answers success without re-applying.
    pub fn execute_tagged(&mut self, sql: &str, request: u64) -> Result<Outcome, DriverError> {
        self.send(&Request::QueryTagged {
            sql: sql.to_string(),
            request,
        })?;
        self.read_result()
    }

    /// Politely end the session; errors are ignored (the socket closes
    /// either way when the connection drops).
    pub fn close(mut self) {
        let _ = self.roundtrip(&Request::Close);
    }
}

impl Driver for Connection {
    fn execute(&mut self, line: &str) -> Result<Outcome, DriverError> {
        self.send(&Request::Query {
            sql: line.to_string(),
        })?;
        self.read_result()
    }

    fn prepare(&mut self, sql: &str) -> Result<u64, DriverError> {
        match self.roundtrip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::Prepared { stmt } => Ok(stmt),
            other => Err(DriverError::new(
                ErrorCode::Protocol,
                format!("expected Prepared, got {other:?}"),
            )),
        }
    }

    fn execute_prepared(&mut self, stmt: u64) -> Result<Outcome, DriverError> {
        self.send(&Request::Execute { stmt })?;
        self.read_result()
    }

    fn set_limits(&mut self, limits: SessionLimits) -> Result<(), DriverError> {
        self.roundtrip(&Request::SetLimits { limits })?;
        self.limits = limits;
        Ok(())
    }

    fn limits(&self) -> SessionLimits {
        self.limits
    }

    fn set_mode(&mut self, mode: ExecMode) -> Result<(), DriverError> {
        self.roundtrip(&Request::SetMode { mode })?;
        self.mode = Some(mode);
        Ok(())
    }

    fn kill(&mut self, query: u64) -> Result<bool, DriverError> {
        match self.roundtrip(&Request::Kill { query })? {
            Response::Killed { found } => Ok(found),
            other => Err(DriverError::new(
                ErrorCode::Protocol,
                format!("expected Killed, got {other:?}"),
            )),
        }
    }

    fn running(&mut self) -> Result<Vec<RunningQuery>, DriverError> {
        match self.roundtrip(&Request::ListQueries)? {
            Response::Queries { entries } => Ok(entries
                .into_iter()
                .map(|e| RunningQuery {
                    query: e.query,
                    session: e.session,
                    sql: e.sql,
                })
                .collect()),
            other => Err(DriverError::new(
                ErrorCode::Protocol,
                format!("expected Queries, got {other:?}"),
            )),
        }
    }

    fn backend(&self) -> &'static str {
        "remote"
    }
}
