//! The driver trait: one interface over embedded and remote databases.
//!
//! `bqsh` (and any other frontend) talks to a [`Driver`]; whether the
//! statements run in-process against an embedded [`Db`] or travel the
//! wire to a `bq-server` is invisible above this line. The embedded
//! driver lives here; the remote one is [`crate::client::Connection`].

use crate::stmt::{parse_statement, SessionCore};
use crate::wire::ErrorCode;
use bq_core::{CoreError, Db, SessionLimits};
use bq_exec::ExecMode;
use bq_relational::Relation;
use std::fmt;
use std::sync::{Arc, RwLock};

/// What a successfully executed statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A result relation (selects).
    Rows(Relation),
    /// A confirmation message (DDL, DML, transaction verbs).
    Message(String),
}

/// A running query as reported by [`Driver::running`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningQuery {
    /// Kill id: pass to [`Driver::kill`].
    pub query: u64,
    /// Owning session.
    pub session: u64,
    /// Statement text.
    pub sql: String,
}

/// A typed driver failure: the wire error taxonomy plus a message. The
/// embedded driver produces the same codes the server would send, so
/// frontends match one shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverError {
    /// Taxonomy entry.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl DriverError {
    /// Build from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> DriverError {
        DriverError {
            code,
            message: message.into(),
        }
    }

    /// Map an engine error onto the wire taxonomy.
    pub fn from_core(e: CoreError) -> DriverError {
        DriverError {
            code: ErrorCode::from_core(&e),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for DriverError {}

/// One database session, embedded or remote.
pub trait Driver {
    /// Parse and run one statement line.
    fn execute(&mut self, line: &str) -> Result<Outcome, DriverError>;

    /// Prepare a select; returns the statement id.
    fn prepare(&mut self, sql: &str) -> Result<u64, DriverError>;

    /// Run a prepared statement.
    fn execute_prepared(&mut self, stmt: u64) -> Result<Outcome, DriverError>;

    /// Replace the session's resource limits.
    fn set_limits(&mut self, limits: SessionLimits) -> Result<(), DriverError>;

    /// The session's current resource limits.
    fn limits(&self) -> SessionLimits;

    /// Set the session's execution mode.
    fn set_mode(&mut self, mode: ExecMode) -> Result<(), DriverError>;

    /// Cancel a running query by kill id; `Ok(false)` means no such
    /// query was running.
    fn kill(&mut self, query: u64) -> Result<bool, DriverError>;

    /// Queries currently running (server-side registry; empty when
    /// embedded — in-process statements finish on the caller's thread).
    fn running(&mut self) -> Result<Vec<RunningQuery>, DriverError>;

    /// Where the statements run: `"embedded"` or `"remote"`.
    fn backend(&self) -> &'static str;
}

/// The in-process driver: a [`SessionCore`] over an owned (shared)
/// engine. The engine sits behind an `RwLock` so the embedded path is
/// bit-for-bit the same code the server runs per connection.
pub struct EmbeddedDriver {
    db: Arc<RwLock<Db>>,
    core: SessionCore,
}

impl Default for EmbeddedDriver {
    fn default() -> Self {
        EmbeddedDriver::new(Db::new())
    }
}

impl EmbeddedDriver {
    /// Wrap an engine.
    pub fn new(db: Db) -> EmbeddedDriver {
        EmbeddedDriver::shared(Arc::new(RwLock::new(db)))
    }

    /// Drive an engine that is also being served (embedded session and
    /// TCP sessions over the same data).
    pub fn shared(db: Arc<RwLock<Db>>) -> EmbeddedDriver {
        EmbeddedDriver {
            db,
            core: SessionCore::new(),
        }
    }

    /// The shared engine handle (e.g. to pass to [`crate::serve`]).
    pub fn db(&self) -> Arc<RwLock<Db>> {
        Arc::clone(&self.db)
    }

    /// Run a closure against the engine's write half — the escape hatch
    /// for engine-specific frontend commands (`.explain`, `.profile`,
    /// `.datalog`) that have no wire equivalent.
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Db) -> R) -> R {
        let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
        f(&mut db)
    }
}

impl Driver for EmbeddedDriver {
    fn execute(&mut self, line: &str) -> Result<Outcome, DriverError> {
        let stmt = parse_statement(line)?;
        let ctx = self.core.context();
        self.core.run(&self.db, &stmt, &ctx)
    }

    fn prepare(&mut self, sql: &str) -> Result<u64, DriverError> {
        self.core.prepare(&self.db, sql)
    }

    fn execute_prepared(&mut self, stmt: u64) -> Result<Outcome, DriverError> {
        let ctx = self.core.context();
        self.core.execute_prepared(&self.db, stmt, &ctx)
    }

    fn set_limits(&mut self, limits: SessionLimits) -> Result<(), DriverError> {
        self.core.limits = limits;
        // Mirror into the engine so direct `Db` surfaces (`.explain`,
        // `.datalog`) honour the same limits the driver applies.
        self.with_db(|db| db.set_limits(limits));
        Ok(())
    }

    fn limits(&self) -> SessionLimits {
        self.core.limits
    }

    fn set_mode(&mut self, mode: ExecMode) -> Result<(), DriverError> {
        self.core.mode = Some(mode);
        self.with_db(|db| db.set_exec_mode(mode));
        Ok(())
    }

    fn kill(&mut self, _query: u64) -> Result<bool, DriverError> {
        // Embedded statements run on the caller's thread: by the time a
        // kill could be issued, the statement has already returned.
        Ok(false)
    }

    fn running(&mut self) -> Result<Vec<RunningQuery>, DriverError> {
        Ok(Vec::new())
    }

    fn backend(&self) -> &'static str {
        "embedded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_driver_round_trips_statements() {
        let mut d = EmbeddedDriver::default();
        d.execute("create table t (a int, b str)").unwrap();
        d.execute("insert into t values (1, 'x')").unwrap();
        match d.execute("select t.b from t where t.a = 1").unwrap() {
            Outcome::Rows(rel) => assert_eq!(rel.len(), 1),
            other => panic!("expected rows, got {other:?}"),
        }
        let id = d.prepare("select t.a from t").unwrap();
        assert!(matches!(d.execute_prepared(id).unwrap(), Outcome::Rows(_)));
        assert_eq!(d.backend(), "embedded");
        assert!(!d.kill(0).unwrap());
        assert!(d.running().unwrap().is_empty());
    }

    #[test]
    fn embedded_limits_and_mode_mirror_into_the_engine() {
        let mut d = EmbeddedDriver::default();
        d.execute("create table t (a int)").unwrap();
        d.set_mode(ExecMode::Sequential).unwrap();
        assert_eq!(d.with_db(|db| db.exec_mode()), ExecMode::Sequential);

        let limits = SessionLimits {
            memory_bytes: Some(16),
            deadline_ms: None,
            max_iterations: None,
        };
        d.set_limits(limits).unwrap();
        assert_eq!(d.limits(), limits);
        assert_eq!(d.with_db(|db| db.limits()), limits);
        for i in 0..64 {
            let _ = d.execute(&format!("insert into t values ({i})"));
        }
        let err = d.execute("select t.a from t").unwrap_err();
        assert_eq!(err.code, ErrorCode::MemoryExceeded, "{err}");
    }
}
