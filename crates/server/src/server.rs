//! The TCP server: accept loop, per-connection sessions, load shedding,
//! a running-query registry behind client-visible `KILL`, and graceful
//! shutdown.
//!
//! Concurrency model: one accept thread polls a nonblocking listener;
//! each admitted connection gets a handler thread holding an
//! [`AdmissionPermit`], so the [`bq_governor::AdmissionController`] *is*
//! the connection bound — when slots run out the accept thread answers
//! with a typed `Overloaded` error frame and closes, it never leaves the
//! client hanging. Sessions execute statements against a shared
//! `Arc<RwLock<Db>>`: selects under the read half (concurrent), mutations
//! under the write half.
//!
//! Every statement registers its cancel token in the engine's
//! [`CancelRegistry`] (the same registry `Db::cancel_handle` exposes) and
//! publishes its registry id plus statement text in the running-query
//! map, which is what `ListQueries` reports and `Kill` targets.

use crate::stmt::{parse_statement, SessionCore, Statement};
use crate::wire::{self, ErrorCode, QueryInfo, Request, Response, PROTOCOL_VERSION};
use bq_core::{Db, ReplicaRegistry, ReplicaRow, SessionLimits, SessionRegistry, SessionRow};
use bq_governor::{AdmissionController, AdmissionPermit, CancelRegistry, QueryContext};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Accept-loop poll interval while the listener has nothing to hand out.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Largest WAL chunk one `WalSegment` frame ships; well under
/// [`wire::MAX_FRAME`] so the segment header always fits too.
const SEGMENT_MAX: usize = 256 << 10;

/// Shipping-loop poll interval while the WAL horizon is caught up.
const SHIP_POLL: Duration = Duration::from_millis(2);

/// Server tunables. `addr` may use port 0 for an ephemeral port; read the
/// bound address back from [`Server::local_addr`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Connection slots; the accept loop sheds beyond this many.
    pub max_conns: usize,
    /// Tuples per streamed `Rows` frame.
    pub batch_rows: usize,
    /// Start in replica mode: every mutation is refused with a typed
    /// [`ErrorCode::ReadOnlyReplica`] until [`Server::set_read_only`]
    /// flips it at promotion.
    pub read_only: bool,
    /// Semi-sync ceiling: a tagged write waits up to this long for every
    /// subscribed replica to acknowledge its WAL offset before the `Done`
    /// frame goes out. 0 disables the wait; with no replicas it is
    /// vacuous (primary-only durability).
    pub sync_wait_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 64,
            batch_rows: 256,
            read_only: false,
            sync_wait_ms: 2000,
        }
    }
}

/// A running query's registry metadata.
#[derive(Debug, Clone)]
struct QueryMeta {
    session: u64,
    sql: String,
}

struct Shared {
    db: Arc<RwLock<Db>>,
    stop: AtomicBool,
    /// Connection slots; admission with an empty queue sheds instantly.
    admission: AdmissionController,
    /// The engine's cancel registry (`Db::cancel_handle`): `KILL` ids are
    /// registration ids in here.
    registry: CancelRegistry,
    /// Registry id → metadata for queries currently on the wire.
    running: Mutex<HashMap<u64, QueryMeta>>,
    /// Open connections, for half-close at shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Per-connection handler threads.
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_session: AtomicU64,
    batch_rows: usize,
    /// Replica mode: mutations refused until promotion flips this off.
    read_only: AtomicBool,
    /// The engine's `bq.replicas` registry; subscriber loops publish
    /// per-replica progress here and the semi-sync wait polls it.
    replicas: ReplicaRegistry,
    /// Semi-sync ceiling for tagged writes (0 = disabled).
    sync_wait_ms: u64,
}

/// A handle to a running server; dropping it shuts the server down.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    stopped: bool,
}

/// Bind and start serving `db` in background threads. The engine stays
/// shared: the caller can keep querying it embedded while the server
/// runs, and can keep the `Arc` to inspect state after shutdown.
pub fn serve(db: Arc<RwLock<Db>>, config: ServerConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let (registry, replicas) = {
        let db = db.read().unwrap_or_else(|e| e.into_inner());
        (db.cancel_handle(), db.replica_registry())
    };
    let shared = Arc::new(Shared {
        db,
        stop: AtomicBool::new(false),
        admission: AdmissionController::new(config.max_conns, 0),
        registry,
        running: Mutex::new(HashMap::new()),
        conns: Mutex::new(HashMap::new()),
        workers: Mutex::new(Vec::new()),
        next_session: AtomicU64::new(1),
        batch_rows: config.batch_rows.max(1),
        read_only: AtomicBool::new(config.read_only),
        replicas,
        sync_wait_ms: config.sync_wait_ms,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = thread::Builder::new()
        .name("bq-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(Server {
        local_addr,
        shared,
        accept: Some(accept),
        stopped: false,
    })
}

impl Server {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served engine.
    pub fn db(&self) -> Arc<RwLock<Db>> {
        Arc::clone(&self.shared.db)
    }

    /// Snapshot of the queries currently running on the wire.
    pub fn running(&self) -> Vec<QueryInfo> {
        snapshot_running(&self.shared)
    }

    /// Flip replica (read-only) mode. Promotion calls
    /// `set_read_only(false)` after the engine's open replicated
    /// transactions are aborted; sessions see the change on their next
    /// statement.
    pub fn set_read_only(&self, read_only: bool) {
        // relaxed: advisory mode flag, re-checked per statement.
        self.shared.read_only.store(read_only, Ordering::Relaxed);
    }

    /// Is the server currently refusing mutations?
    pub fn is_read_only(&self) -> bool {
        // relaxed: advisory mode flag, see set_read_only().
        self.shared.read_only.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, half-close every connection so
    /// idle sessions drain out, wait up to `drain` for in-flight
    /// statements to finish and flush their responses, then cancel
    /// stragglers through the cancel registry and hard-close. A response
    /// the client has received is always durably applied: mutations
    /// acknowledge only after the engine (and its WAL) returned.
    pub fn shutdown(mut self, drain: Duration) {
        self.stop(drain);
    }

    fn stop(&mut self, drain: Duration) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        // relaxed: advisory stop flag, re-polled by every loop.
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for s in conns.values() {
                // Half-close: the session's next read sees EOF, but its
                // write half stays open for the in-flight response.
                let _ = s.shutdown(Shutdown::Read);
            }
        }
        // Drain under a deadline without reading the clock directly: the
        // governor's deadline context is the sanctioned stopwatch.
        let deadline = QueryContext::unlimited().with_deadline(drain);
        loop {
            let all_done = {
                let workers = self
                    .shared
                    .workers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                workers.iter().all(|h| h.is_finished())
            };
            if all_done {
                break;
            }
            if deadline.check().is_err() {
                // Past the drain deadline: stop stragglers cooperatively,
                // then cut their sockets.
                self.shared.registry.cancel_all();
                let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
                for s in conns.values() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                break;
            }
            thread::sleep(ACCEPT_POLL);
        }
        let workers = {
            let mut workers = self
                .shared
                .workers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *workers)
        };
        for h in workers {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop(Duration::from_millis(500));
    }
}

// ---------------------------------------------------------------------
// Accept path
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        // relaxed: advisory stop flag, re-polled every iteration.
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_accept(&shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_accept(shared: &Arc<Shared>, mut stream: TcpStream) {
    // The listener is nonblocking; sessions want blocking reads.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    match shared.admission.admit(&QueryContext::unlimited()) {
        Ok(permit) => spawn_session(shared, stream, permit),
        Err(e) => {
            // Real load shedding: a typed frame, then the socket closes.
            bq_obs::counter!(
                "bq_server_conns_shed_total",
                "connections shed by admission"
            )
            .inc();
            let resp = Response::Error {
                code: ErrorCode::from_governor(&e),
                message: e.to_string(),
            };
            let _ = wire::write_frame(&mut stream, &resp.encode());
            // Drain the client's Hello (briefly) so close() sends FIN, not
            // RST — an RST would destroy the refusal frame in flight and
            // the client would see a bare broken pipe instead.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let _ = wire::read_frame(&mut stream);
        }
    }
}

fn spawn_session(shared: &Arc<Shared>, stream: TcpStream, permit: AdmissionPermit) {
    // relaxed: unique-id hand-out; no data is published under it.
    let conn_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.insert(conn_id, clone);
    }
    let worker_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name(format!("bq-conn-{conn_id}"))
        .spawn(move || {
            run_conn(&worker_shared, stream, conn_id);
            drop(permit);
        });
    match spawned {
        Ok(handle) => {
            let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
            workers.push(handle);
        }
        Err(_) => {
            let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            conns.remove(&conn_id);
        }
    }
}

// ---------------------------------------------------------------------
// Session path
// ---------------------------------------------------------------------

fn run_conn(shared: &Shared, mut stream: TcpStream, conn_id: u64) {
    let open = bq_obs::gauge!("bq_server_connections", "open TCP connections");
    open.add(1);
    bq_obs::counter!("bq_server_connections_total", "connections accepted").inc();
    let mut session = SessionCore::new();
    // The engine's `bq.sessions` registry: rows upserted here are what
    // `select * from bq.sessions` sees, embedded and over the wire alike.
    let sessions = {
        let db = shared.db.read().unwrap_or_else(|e| e.into_inner());
        db.session_registry()
    };
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    let _ = session_loop(shared, &mut stream, &mut session, conn_id, &sessions, &peer);
    // A dropped connection must never leave locks held or ghosts in the
    // connection table (or in `bq.sessions` / `bq.replicas`).
    sessions.remove(conn_id);
    shared.replicas.remove(conn_id);
    session.close(&shared.db);
    {
        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.remove(&conn_id);
    }
    open.add(-1);
}

fn session_loop(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut SessionCore,
    conn_id: u64,
    registry: &SessionRegistry,
    peer: &str,
) -> io::Result<()> {
    // Handshake: the first frame must be a version-matching Hello. The
    // client identity it carries is the dedup namespace for tagged
    // writes, so a reconnecting client keeps its idempotency history.
    let body = read_frame_srv(stream)?;
    let client = match Request::decode(&body) {
        Ok(Request::Hello { version, client }) if version == PROTOCOL_VERSION => {
            write_frame_srv(
                stream,
                &Response::HelloOk {
                    version: PROTOCOL_VERSION,
                    session: conn_id,
                },
            )?;
            client
        }
        Ok(Request::Hello { version, .. }) => {
            return refuse(
                stream,
                ErrorCode::Protocol,
                format!(
                    "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                ),
            );
        }
        Ok(_) => return refuse(stream, ErrorCode::Protocol, "expected Hello".to_string()),
        Err(e) => return refuse(stream, ErrorCode::Protocol, e.to_string()),
    };
    let sessions = bq_obs::gauge!("bq_server_sessions", "sessions past handshake");
    sessions.add(1);
    publish_session(registry, conn_id, peer, session);
    let out = frame_loop(shared, stream, session, conn_id, registry, peer, &client);
    sessions.add(-1);
    out
}

/// Mirror a session's current state (mode, limits, open txn) into the
/// engine's `bq.sessions` registry.
fn publish_session(registry: &SessionRegistry, conn_id: u64, peer: &str, session: &SessionCore) {
    registry.upsert(SessionRow {
        session: conn_id,
        peer: peer.to_string(),
        mode: session
            .mode
            .map_or_else(|| "engine".to_string(), |m| m.to_string()),
        limits: render_limits(&session.limits),
        txn: session.in_txn(),
    });
}

fn render_limits(limits: &SessionLimits) -> String {
    let mut parts = Vec::new();
    if let Some(bytes) = limits.memory_bytes {
        parts.push(format!("mem={bytes}B"));
    }
    if let Some(ms) = limits.deadline_ms {
        parts.push(format!("deadline={ms}ms"));
    }
    if let Some(n) = limits.max_iterations {
        parts.push(format!("iters={n}"));
    }
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join(" ")
    }
}

fn frame_loop(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut SessionCore,
    conn_id: u64,
    registry: &SessionRegistry,
    peer: &str,
    client: &str,
) -> io::Result<()> {
    loop {
        // relaxed: advisory stop flag, re-polled every frame.
        if shared.stop.load(Ordering::Relaxed) {
            return refuse(
                stream,
                ErrorCode::Shutdown,
                "server is shutting down".to_string(),
            );
        }
        let body = match read_frame_srv(stream) {
            Ok(b) => b,
            // A malformed length prefix gets a typed refusal; EOF and
            // transport errors just end the session.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return refuse(stream, ErrorCode::Protocol, e.to_string());
            }
            Err(_) => {
                // Drain half-closes reads first; the write half is still
                // open, so tell the peer why the session is ending and it
                // can reconnect immediately instead of waiting out a
                // read timeout.
                // relaxed: advisory stop flag, see above.
                if shared.stop.load(Ordering::Relaxed) {
                    let _ = write_frame_srv(
                        stream,
                        &Response::GoingAway {
                            message: "server is draining".to_string(),
                        },
                    );
                }
                return Ok(());
            }
        };
        let _frame_timer = bq_obs::histogram!(
            "bq_server_frame_latency_us",
            "per-frame dispatch latency (us)",
            bq_obs::LATENCY_BUCKETS_US
        )
        .start_timer();
        let req = match Request::decode(&body) {
            Ok(r) => r,
            // A frame that parses as no request is a protocol error; the
            // connection is not trustworthy past this point.
            Err(e) => return refuse(stream, ErrorCode::Protocol, e.to_string()),
        };
        // A Subscribe repurposes the whole connection: the session stops
        // being request/response and becomes a replication stream.
        if let Request::Subscribe { start } = req {
            return subscriber_loop(shared, stream, conn_id, peer, start);
        }
        let closing = matches!(req, Request::Close);
        dispatch(shared, stream, session, conn_id, client, req)?;
        // Re-publish after each frame: mode, limits, and txn state are
        // exactly the things a frame can change.
        publish_session(registry, conn_id, peer, session);
        if closing {
            return Ok(());
        }
    }
}

fn dispatch(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut SessionCore,
    conn_id: u64,
    client: &str,
    req: Request,
) -> io::Result<()> {
    match req {
        Request::Query { sql } => match parse_statement(&sql) {
            Err(e) => write_err(stream, &e),
            Ok(stmt) => {
                if let Some(e) = refuse_mutation(shared, &stmt) {
                    return write_err(stream, &e);
                }
                let ctx = session.context();
                let (qid, reg) = register_query(shared, conn_id, &sql, &ctx);
                let out = session.run(&shared.db, &stmt, &ctx);
                finish_query(shared, qid);
                drop(reg);
                send_outcome(shared, stream, out, qid)
            }
        },
        Request::QueryTagged { sql, request } => {
            run_tagged(shared, stream, session, client, &sql, request)
        }
        Request::Prepare { sql } => match session.prepare(&shared.db, &sql) {
            Ok(stmt) => write_frame_srv(stream, &Response::Prepared { stmt }),
            Err(e) => write_err(stream, &e),
        },
        Request::Execute { stmt } => match session.prepared_sql(stmt).map(str::to_string) {
            None => write_err(
                stream,
                &crate::driver::DriverError::new(
                    ErrorCode::NoSuchStatement,
                    format!("no prepared statement {stmt}"),
                ),
            ),
            Some(sql) => {
                let ctx = session.context();
                let (qid, reg) = register_query(shared, conn_id, &sql, &ctx);
                let out = session.execute_prepared(&shared.db, stmt, &ctx);
                finish_query(shared, qid);
                drop(reg);
                send_outcome(shared, stream, out, qid)
            }
        },
        Request::Kill { query } => {
            let found = shared.registry.cancel_id(query);
            if found {
                bq_obs::counter!(
                    "bq_server_queries_killed_total",
                    "queries killed by clients"
                )
                .inc();
            }
            write_frame_srv(stream, &Response::Killed { found })
        }
        Request::SetLimits { limits } => {
            session.limits = limits;
            write_frame_srv(
                stream,
                &Response::Ok {
                    message: "limits set".to_string(),
                },
            )
        }
        Request::SetMode { mode } => {
            session.mode = Some(mode);
            write_frame_srv(
                stream,
                &Response::Ok {
                    message: format!("mode: {mode}"),
                },
            )
        }
        Request::ListQueries => write_frame_srv(
            stream,
            &Response::Queries {
                entries: snapshot_running(shared),
            },
        ),
        Request::Close => write_frame_srv(
            stream,
            &Response::Ok {
                message: "bye".to_string(),
            },
        ),
        Request::Hello { .. } => write_err(
            stream,
            &crate::driver::DriverError::new(ErrorCode::Protocol, "duplicate Hello"),
        ),
        // Subscribe is intercepted in the frame loop; reaching here means
        // the dispatcher was called out of order, which is a server bug,
        // but answer with a typed error rather than trusting that.
        Request::Subscribe { .. } => write_err(
            stream,
            &crate::driver::DriverError::new(ErrorCode::Protocol, "Subscribe mid-session"),
        ),
        Request::ReplAck { .. } => write_err(
            stream,
            &crate::driver::DriverError::new(
                ErrorCode::Protocol,
                "ReplAck outside a replication stream",
            ),
        ),
    }
}

/// The typed refusal for a mutation on a read-only replica, or `None`
/// when the statement may proceed.
fn refuse_mutation(shared: &Shared, stmt: &Statement) -> Option<crate::driver::DriverError> {
    // relaxed: advisory mode flag, re-checked per statement.
    if stmt.is_mutation() && shared.read_only.load(Ordering::Relaxed) {
        Some(crate::driver::DriverError::new(
            ErrorCode::ReadOnlyReplica,
            "replica is read-only; send writes to the primary",
        ))
    } else {
        None
    }
}

/// Run one tagged (idempotent) write: dedup-check and apply atomically
/// under the engine write lock, then hold the `Done` frame until every
/// subscribed replica has acknowledged the commit's WAL offset (semi-sync)
/// or the wait ceiling passes.
fn run_tagged(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut SessionCore,
    client: &str,
    sql: &str,
    request: u64,
) -> io::Result<()> {
    let stmt = match parse_statement(sql) {
        Ok(s) => s,
        Err(e) => return write_err(stream, &e),
    };
    if let Some(e) = refuse_mutation(shared, &stmt) {
        return write_err(stream, &e);
    }
    let Statement::Insert { table, row } = stmt else {
        return write_err(
            stream,
            &crate::driver::DriverError::new(
                ErrorCode::Unsupported,
                "only inserts may carry a request tag",
            ),
        );
    };
    if session.in_txn() {
        return write_err(
            stream,
            &crate::driver::DriverError::new(
                ErrorCode::TxnState,
                "tagged writes are autocommit-only",
            ),
        );
    }
    // One write-lock scope covers the dedup probe and the apply: two
    // racing retries of the same request id serialize here, so exactly
    // one commits and the other answers as a duplicate.
    enum Applied {
        Duplicate,
        Committed(u64),
        Failed(crate::driver::DriverError),
    }
    let applied = {
        let mut db = shared.db.write().unwrap_or_else(|e| e.into_inner());
        if db.seen_request(client, request) {
            Applied::Duplicate
        } else {
            let out = db.begin().and_then(|h| {
                db.insert_in(h, &table, row)
                    .and_then(|()| db.commit_tagged(h, client, request))
                    .inspect_err(|_| {
                        let _ = db.abort(h);
                    })
            });
            match out {
                Ok(()) => Applied::Committed(db.wal_durable_len()),
                Err(e) => Applied::Failed(crate::driver::DriverError::new(
                    ErrorCode::from_core(&e),
                    e.to_string(),
                )),
            }
        }
    };
    match applied {
        Applied::Failed(e) => write_err(stream, &e),
        Applied::Duplicate => {
            bq_obs::counter!(
                "bq_repl_dedup_hits_total",
                "tagged writes answered from the dedup table"
            )
            .inc();
            write_frame_srv(
                stream,
                &Response::Done {
                    rows: 0,
                    query: 0,
                    message: format!("request {request} already applied"),
                },
            )
        }
        Applied::Committed(offset) => {
            wait_for_replica_acks(shared, offset);
            write_frame_srv(
                stream,
                &Response::Done {
                    rows: 0,
                    query: 0,
                    message: format!("inserted 1 row into {table}"),
                },
            )
        }
    }
}

/// Semi-sync wait: poll the replica registry until every subscriber has
/// acknowledged `offset`, the ceiling passes, or the server stops.
fn wait_for_replica_acks(shared: &Shared, offset: u64) {
    if shared.sync_wait_ms == 0 || shared.replicas.is_empty() {
        return;
    }
    // The governor's deadline context is the sanctioned stopwatch (no
    // direct clock reads in this crate).
    let deadline =
        QueryContext::unlimited().with_deadline(Duration::from_millis(shared.sync_wait_ms));
    while !shared.replicas.all_acked(offset) {
        // relaxed: advisory stop flag, re-polled every iteration.
        if deadline.check().is_err() || shared.stop.load(Ordering::Relaxed) {
            bq_obs::counter!(
                "bq_repl_sync_timeouts_total",
                "tagged writes that outwaited a replica ack"
            )
            .inc();
            return;
        }
        thread::sleep(Duration::from_millis(1));
    }
}

fn register_query(
    shared: &Shared,
    session: u64,
    sql: &str,
    ctx: &QueryContext,
) -> (u64, bq_governor::RegisteredCancel) {
    let reg = shared.registry.register(ctx.cancel_token());
    let qid = reg.id();
    // Stamp the trace id before the engine sees the statement: the same
    // id flows through `bq.queries`, the slow log, profile sessions, and
    // the client-visible `Done` frame, so a remote client can join its
    // frame back to server-side timings with one SQL query.
    ctx.set_query_id(qid);
    ctx.set_session_id(session);
    let mut running = shared.running.lock().unwrap_or_else(|e| e.into_inner());
    running.insert(
        qid,
        QueryMeta {
            session,
            sql: sql.to_string(),
        },
    );
    (qid, reg)
}

fn finish_query(shared: &Shared, qid: u64) {
    let mut running = shared.running.lock().unwrap_or_else(|e| e.into_inner());
    running.remove(&qid);
}

fn snapshot_running(shared: &Shared) -> Vec<QueryInfo> {
    let mut entries: Vec<QueryInfo> = {
        let running = shared.running.lock().unwrap_or_else(|e| e.into_inner());
        running
            .iter()
            .map(|(qid, m)| QueryInfo {
                query: *qid,
                session: m.session,
                sql: m.sql.clone(),
            })
            .collect()
    };
    entries.sort_by_key(|e| e.query);
    entries
}

fn send_outcome(
    shared: &Shared,
    stream: &mut TcpStream,
    out: Result<crate::driver::Outcome, crate::driver::DriverError>,
    qid: u64,
) -> io::Result<()> {
    match out {
        Ok(crate::driver::Outcome::Rows(rel)) => {
            let cols = rel
                .schema()
                .attrs()
                .iter()
                .map(|a| (a.name.clone(), a.ty))
                .collect();
            write_frame_srv(stream, &Response::RowSchema { cols })?;
            let tuples = rel.tuples();
            let rows = tuples.len() as u64;
            bq_obs::counter!("bq_server_rows_streamed_total", "result rows streamed").add(rows);
            for chunk in tuples.chunks(shared.batch_rows) {
                write_frame_srv(
                    stream,
                    &Response::Rows {
                        tuples: chunk.to_vec(),
                    },
                )?;
            }
            write_frame_srv(
                stream,
                &Response::Done {
                    rows,
                    query: qid,
                    message: String::new(),
                },
            )
        }
        Ok(crate::driver::Outcome::Message(message)) => write_frame_srv(
            stream,
            &Response::Done {
                rows: 0,
                query: qid,
                message,
            },
        ),
        Err(e) => write_err(stream, &e),
    }
}

fn write_err(stream: &mut TcpStream, e: &crate::driver::DriverError) -> io::Result<()> {
    write_frame_srv(
        stream,
        &Response::Error {
            code: e.code,
            message: e.message.clone(),
        },
    )
}

/// Send a typed error, then end the session by returning `Ok(())` up the
/// loop (the caller closes the socket).
fn refuse(stream: &mut TcpStream, code: ErrorCode, message: String) -> io::Result<()> {
    let _ = write_frame_srv(stream, &Response::Error { code, message });
    Ok(())
}

// ---------------------------------------------------------------------
// Replication shipping (primary side)
// ---------------------------------------------------------------------

/// What the chaos failpoints ask one shipping round to do to the segment.
enum ShipPlan {
    /// Deliver normally.
    Normal,
    /// Lose the segment in flight.
    Drop,
    /// Deliver the segment twice.
    Duplicate,
    /// Split the segment and deliver the halves out of order.
    Reorder,
}

fn ship_plan() -> ShipPlan {
    bq_faults::fail_point!("repl.segment.drop", |_| ShipPlan::Drop);
    bq_faults::fail_point!("repl.segment.dup", |_| ShipPlan::Duplicate);
    bq_faults::fail_point!("repl.segment.reorder", |_| ShipPlan::Reorder);
    ShipPlan::Normal
}

/// Serve one replication subscriber: optionally bootstrap it with a full
/// snapshot, then ship durable WAL segments in a send/ack ping-pong.
///
/// The replica's acknowledgement is **authoritative** for the shipping
/// position: after every segment the loop continues from whatever offset
/// the replica says it has applied through. A dropped or reordered
/// segment therefore heals itself — the replica refuses the gap, acks its
/// old horizon, and the stream rewinds — with no sequence numbers or
/// retransmit queues on top of the WAL's own byte offsets.
fn subscriber_loop(
    shared: &Shared,
    stream: &mut TcpStream,
    conn_id: u64,
    peer: &str,
    start: u64,
) -> io::Result<()> {
    bq_obs::counter!(
        "bq_repl_subscribers_total",
        "replication subscriptions accepted"
    )
    .inc();
    let mut pos = start;
    if start == wire::SUBSCRIBE_BOOTSTRAP {
        publish_replica(shared, conn_id, peer, "bootstrapping", 0, 0, 0);
        // Snapshot under the write lock; the horizon read in the same
        // scope is exactly the offset the image ends at, so streaming
        // resumes with no gap and no overlap.
        let (snap, horizon) = {
            let mut db = shared.db.write().unwrap_or_else(|e| e.into_inner());
            let snap = match db.snapshot_bytes() {
                Ok(bytes) => bytes,
                Err(e) => {
                    drop(db);
                    return refuse(stream, ErrorCode::Storage, e.to_string());
                }
            };
            let horizon = db.wal_durable_len();
            (snap, horizon)
        };
        if snap.len() >= wire::MAX_FRAME {
            return refuse(
                stream,
                ErrorCode::Storage,
                format!("snapshot of {} bytes exceeds the frame cap", snap.len()),
            );
        }
        write_frame_srv(stream, &Response::Snapshot { bytes: snap })?;
        pos = horizon;
    }
    publish_replica(
        shared,
        conn_id,
        peer,
        "streaming",
        pos,
        pos,
        bq_obs::now_us(),
    );
    loop {
        // relaxed: advisory stop flag, re-polled every round.
        if shared.stop.load(Ordering::Relaxed) {
            let _ = write_frame_srv(
                stream,
                &Response::GoingAway {
                    message: "server is draining".to_string(),
                },
            );
            return Ok(());
        }
        let chunk = {
            let db = shared.db.read().unwrap_or_else(|e| e.into_inner());
            db.wal_durable_bytes(pos, SEGMENT_MAX)
        };
        if chunk.is_empty() {
            thread::sleep(SHIP_POLL);
            continue;
        }
        match ship_plan() {
            ShipPlan::Drop => {
                // The segment vanishes but the position advances: the next
                // shipped segment opens a gap the replica refuses, and its
                // ack rewinds the stream.
                pos += chunk.len() as u64;
            }
            ShipPlan::Duplicate => {
                let _ = ship_segment(shared, stream, conn_id, peer, pos, chunk.clone())?;
                pos = ship_segment(shared, stream, conn_id, peer, pos, chunk)?;
            }
            ShipPlan::Reorder => {
                let mid = chunk.len() / 2;
                if mid == 0 {
                    pos = ship_segment(shared, stream, conn_id, peer, pos, chunk)?;
                } else {
                    // Second half first: the replica refuses the gap and
                    // acks its horizon; the first half then applies.
                    let second = chunk[mid..].to_vec();
                    let first = chunk[..mid].to_vec();
                    let _ = ship_segment(shared, stream, conn_id, peer, pos + mid as u64, second)?;
                    pos = ship_segment(shared, stream, conn_id, peer, pos, first)?;
                }
            }
            ShipPlan::Normal => {
                pos = ship_segment(shared, stream, conn_id, peer, pos, chunk)?;
            }
        }
    }
}

/// Ship one segment and block for the replica's ack, which becomes the
/// new authoritative shipping position.
fn ship_segment(
    shared: &Shared,
    stream: &mut TcpStream,
    conn_id: u64,
    peer: &str,
    start: u64,
    bytes: Vec<u8>,
) -> io::Result<u64> {
    let len = bytes.len() as u64;
    write_frame_srv(stream, &Response::WalSegment { start, bytes })?;
    bq_obs::counter!(
        "bq_repl_segments_shipped_total",
        "WAL segments shipped to replicas"
    )
    .inc();
    bq_obs::counter!(
        "bq_repl_bytes_shipped_total",
        "WAL bytes shipped to replicas"
    )
    .add(len);
    let ack = read_ack(stream)?;
    bq_obs::counter!("bq_repl_acks_total", "replica acknowledgements received").inc();
    let shipped = start + len;
    bq_obs::gauge!(
        "bq_repl_lag_bytes",
        "bytes shipped but not yet acknowledged"
    )
    .set(shipped.saturating_sub(ack) as i64);
    publish_replica(
        shared,
        conn_id,
        peer,
        "streaming",
        ack,
        shipped,
        bq_obs::now_us(),
    );
    Ok(ack)
}

/// Read the subscriber's next frame, which must be a `ReplAck`. Anything
/// else gets a typed error frame and ends the stream — arbitrary bytes on
/// a replication stream decode-or-refuse, never panic.
fn read_ack(stream: &mut TcpStream) -> io::Result<u64> {
    let body = read_frame_srv(stream)?;
    match Request::decode(&body) {
        Ok(Request::ReplAck { through }) => Ok(through),
        Ok(other) => {
            let _ = write_frame_srv(
                stream,
                &Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("expected ReplAck, got {other:?}"),
                },
            );
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected ReplAck",
            ))
        }
        Err(e) => {
            let _ = write_frame_srv(
                stream,
                &Response::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                },
            );
            Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
    }
}

fn publish_replica(
    shared: &Shared,
    id: u64,
    peer: &str,
    state: &str,
    acked: u64,
    shipped: u64,
    last_ack_us: u64,
) {
    shared.replicas.upsert(ReplicaRow {
        id,
        endpoint: peer.to_string(),
        state: state.to_string(),
        acked,
        shipped,
        last_ack_us,
    });
}

// ---------------------------------------------------------------------
// Server-side frame IO (failpoints + byte counters live here, so the
// in-process client half never trips them)
// ---------------------------------------------------------------------

fn read_frame_srv(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    bq_faults::fail_point!("server.conn.drop", |_| Err(io::Error::new(
        io::ErrorKind::ConnectionAborted,
        "injected connection drop",
    )));
    bq_faults::fail_point!("server.read.partial", |_| {
        // Consume the length prefix, then abandon the body mid-read:
        // exactly what a peer dying between header and payload looks like.
        let mut len = [0u8; 4];
        let _ = stream.read_exact(&mut len);
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "injected partial read",
        ))
    });
    let body = wire::read_frame(stream)?;
    bq_obs::counter!("bq_server_bytes_in_total", "request bytes read").add(body.len() as u64 + 4);
    Ok(body)
}

fn write_frame_srv(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let body = resp.encode();
    bq_faults::fail_point!("server.write.partial", |_| {
        // Flush the length prefix and half the body, then fail: the
        // client sees a truncated frame, never a silent success.
        let _ = stream.write_all(&(body.len() as u32).to_le_bytes());
        let _ = stream.write_all(&body[..body.len() / 2]);
        let _ = stream.flush();
        Err(io::Error::new(
            io::ErrorKind::WriteZero,
            "injected partial write",
        ))
    });
    wire::write_frame(stream, &body)?;
    bq_obs::counter!("bq_server_bytes_out_total", "response bytes written")
        .add(body.len() as u64 + 4);
    Ok(())
}
