//! Statement parsing and per-session execution state.
//!
//! [`parse_statement`] classifies one line of input into a [`Statement`]:
//! selects go to the SQL-ish parser inside the engine, while `create
//! table`, `insert into`, and the transaction verbs are parsed here.
//! [`SessionCore`] is the per-session state machine both frontends share:
//! the server gives every TCP connection one, and the embedded driver
//! gives the shell one, so a statement behaves identically whichever path
//! it arrives by.

use crate::driver::{DriverError, Outcome};
use crate::wire::ErrorCode;
use bq_core::{Db, SessionLimits, TxnHandle};
use bq_exec::ExecMode;
use bq_governor::QueryContext;
use bq_relational::algebra::Expr;
use bq_relational::{Type, Value};
use std::collections::HashMap;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One parsed client statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A select, kept as text: the engine parses and optimizes it under
    /// governance so a parse error is a typed query error, not a protocol
    /// one.
    Select(String),
    /// `explain analyze <select>` — run the inner select governed and
    /// return the physical plan annotated with per-operator runtime
    /// stats (rows, batches, wall time, memory) as a message.
    ExplainAnalyze(String),
    /// `create table name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names and types, in order.
        cols: Vec<(String, Type)>,
    },
    /// `insert into name values (v, ...)`.
    Insert {
        /// Target table.
        table: String,
        /// The row.
        row: Vec<Value>,
    },
    /// `begin` — open an interactive transaction on this session.
    Begin,
    /// `commit` the session's open transaction.
    Commit,
    /// `rollback` the session's open transaction.
    Rollback,
}

impl Statement {
    /// Does this statement mutate the database (needs the write lock)?
    pub fn is_mutation(&self) -> bool {
        !matches!(self, Statement::Select(_) | Statement::ExplainAnalyze(_))
    }
}

/// Classify one line of input. Unknown statement shapes are
/// [`ErrorCode::Unsupported`]; malformed known shapes are
/// [`ErrorCode::Query`].
pub fn parse_statement(line: &str) -> Result<Statement, DriverError> {
    let trimmed = line.trim();
    let lower = trimmed.to_lowercase();
    if lower.starts_with("select") {
        return Ok(Statement::Select(trimmed.to_string()));
    }
    if let Some(rest) = lower.strip_prefix("explain analyze") {
        if !rest.trim_start().starts_with("select") {
            return Err(query_err("explain analyze takes a select"));
        }
        // Slice the original (case-preserved) text past the prefix.
        let inner = trimmed["explain analyze".len()..].trim().to_string();
        return Ok(Statement::ExplainAnalyze(inner));
    }
    if lower.starts_with("create table") {
        return parse_create(trimmed);
    }
    if lower.starts_with("insert into") {
        return parse_insert(trimmed);
    }
    match lower.as_str() {
        "begin" => Ok(Statement::Begin),
        "commit" => Ok(Statement::Commit),
        "rollback" | "abort" => Ok(Statement::Rollback),
        _ => Err(DriverError::new(
            ErrorCode::Unsupported,
            format!("unrecognized statement: `{trimmed}`"),
        )),
    }
}

fn query_err(msg: impl Into<String>) -> DriverError {
    DriverError::new(ErrorCode::Query, msg.into())
}

/// `create table name (col type, ...)`
fn parse_create(line: &str) -> Result<Statement, DriverError> {
    let open = line
        .find('(')
        .ok_or_else(|| query_err("expected column list"))?;
    let close = line
        .rfind(')')
        .ok_or_else(|| query_err("unterminated column list"))?;
    let name = line[..open]
        .split_whitespace()
        .nth(2)
        .ok_or_else(|| query_err("expected table name"))?;
    let mut cols: Vec<(String, Type)> = Vec::new();
    for part in line[open + 1..close].split(',') {
        let mut it = part.split_whitespace();
        let col = it.next().ok_or_else(|| query_err("expected column name"))?;
        let ty = match it
            .next()
            .ok_or_else(|| query_err("expected column type"))?
            .to_lowercase()
            .as_str()
        {
            "int" | "integer" => Type::Int,
            "str" | "string" | "text" | "varchar" => Type::Str,
            "bool" | "boolean" => Type::Bool,
            other => return Err(query_err(format!("unknown type `{other}`"))),
        };
        cols.push((col.to_string(), ty));
    }
    Ok(Statement::CreateTable {
        name: name.to_string(),
        cols,
    })
}

/// `insert into name values (v, ...)`
fn parse_insert(line: &str) -> Result<Statement, DriverError> {
    let open = line
        .find('(')
        .ok_or_else(|| query_err("expected value list"))?;
    let close = line
        .rfind(')')
        .ok_or_else(|| query_err("unterminated value list"))?;
    let table = line[..open]
        .split_whitespace()
        .nth(2)
        .ok_or_else(|| query_err("expected table name"))?;
    let mut row: Vec<Value> = Vec::new();
    for part in split_top_level(&line[open + 1..close]) {
        let part = part.trim();
        let v = if let Some(stripped) = part.strip_prefix('\'') {
            Value::Str(stripped.trim_end_matches('\'').to_string())
        } else if part.eq_ignore_ascii_case("true") {
            Value::Bool(true)
        } else if part.eq_ignore_ascii_case("false") {
            Value::Bool(false)
        } else if part.eq_ignore_ascii_case("null") {
            Value::Null(0)
        } else {
            Value::Int(
                part.parse::<i64>()
                    .map_err(|_| query_err(format!("bad value `{part}`")))?,
            )
        };
        row.push(v);
    }
    Ok(Statement::Insert {
        table: table.to_string(),
        row,
    })
}

/// Split on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// A prepared select: the optimized plan plus the original text (shown by
/// the running-query registry while it executes).
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    /// Original statement text.
    pub sql: String,
    /// Parsed-and-optimized plan.
    pub expr: Expr,
}

/// Per-session execution state shared by the server and the embedded
/// driver: resource limits, execution mode, the prepared-statement table,
/// and the interactive-transaction handle.
#[derive(Debug, Default)]
pub struct SessionCore {
    /// Resource limits applied to every statement on this session.
    pub limits: SessionLimits,
    /// Session execution mode; `None` follows the engine-wide mode.
    pub mode: Option<ExecMode>,
    txn: Option<TxnHandle>,
    prepared: HashMap<u64, PreparedPlan>,
    next_stmt: u64,
}

fn read_db(db: &RwLock<Db>) -> RwLockReadGuard<'_, Db> {
    db.read().unwrap_or_else(|e| e.into_inner())
}

fn write_db(db: &RwLock<Db>) -> RwLockWriteGuard<'_, Db> {
    db.write().unwrap_or_else(|e| e.into_inner())
}

impl SessionCore {
    /// A fresh session: no limits, engine-default mode, no open
    /// transaction, empty statement table.
    pub fn new() -> SessionCore {
        SessionCore::default()
    }

    /// Build the [`QueryContext`] the next statement should run under.
    pub fn context(&self) -> QueryContext {
        self.limits.context()
    }

    /// Is an interactive transaction open?
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Statement text of a prepared plan, if the id is live.
    pub fn prepared_sql(&self, stmt: u64) -> Option<&str> {
        self.prepared.get(&stmt).map(|p| p.sql.as_str())
    }

    /// Run one parsed statement under `ctx`. Selects execute through the
    /// shared read lock (concurrent sessions read in parallel); mutations
    /// take the write lock for the duration of the statement.
    pub fn run(
        &mut self,
        db: &RwLock<Db>,
        stmt: &Statement,
        ctx: &QueryContext,
    ) -> Result<Outcome, DriverError> {
        match stmt {
            Statement::Select(sql) => {
                let db = read_db(db);
                let mode = self.mode.unwrap_or_else(|| db.exec_mode());
                let rel = db
                    .sql_with_ctx_mode(sql, ctx, mode)
                    .map_err(DriverError::from_core)?;
                Ok(Outcome::Rows(rel))
            }
            Statement::ExplainAnalyze(sql) => {
                let db = read_db(db);
                let mode = self.mode.unwrap_or_else(|| db.exec_mode());
                let text = db
                    .explain_analyze_with_ctx_mode(sql, ctx, mode)
                    .map_err(DriverError::from_core)?;
                Ok(Outcome::Message(text))
            }
            Statement::CreateTable { name, cols } => {
                let refs: Vec<(&str, Type)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                write_db(db)
                    .create_table(name, &refs)
                    .map_err(DriverError::from_core)?;
                Ok(Outcome::Message(format!("created table {name}")))
            }
            Statement::Insert { table, row } => {
                let mut db = write_db(db);
                match self.txn {
                    Some(h) => db.insert_in(h, table, row.clone()),
                    None => db.insert(table, row.clone()),
                }
                .map_err(DriverError::from_core)?;
                Ok(Outcome::Message("1 row".to_string()))
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(DriverError::new(
                        ErrorCode::TxnState,
                        "a transaction is already open on this session",
                    ));
                }
                self.txn = Some(write_db(db).begin().map_err(DriverError::from_core)?);
                Ok(Outcome::Message("begin".to_string()))
            }
            Statement::Commit => {
                let h = self.txn.take().ok_or_else(|| {
                    DriverError::new(ErrorCode::TxnState, "no open transaction to commit")
                })?;
                write_db(db).commit(h).map_err(DriverError::from_core)?;
                Ok(Outcome::Message("commit".to_string()))
            }
            Statement::Rollback => {
                let h = self.txn.take().ok_or_else(|| {
                    DriverError::new(ErrorCode::TxnState, "no open transaction to roll back")
                })?;
                write_db(db).abort(h).map_err(DriverError::from_core)?;
                Ok(Outcome::Message("rollback".to_string()))
            }
        }
    }

    /// Parse and optimize a select into the session's statement table.
    /// Only selects are preparable: the point of preparing is skipping
    /// parse+optimize on re-execution, which mutations don't have.
    pub fn prepare(&mut self, db: &RwLock<Db>, sql: &str) -> Result<u64, DriverError> {
        if !sql.trim_start().to_lowercase().starts_with("select") {
            return Err(DriverError::new(
                ErrorCode::Unsupported,
                "only selects can be prepared",
            ));
        }
        let expr = read_db(db)
            .prepare_sql(sql)
            .map_err(DriverError::from_core)?;
        let id = self.next_stmt;
        self.next_stmt += 1;
        self.prepared.insert(
            id,
            PreparedPlan {
                sql: sql.trim().to_string(),
                expr,
            },
        );
        Ok(id)
    }

    /// Run a prepared plan under `ctx`.
    pub fn execute_prepared(
        &self,
        db: &RwLock<Db>,
        stmt: u64,
        ctx: &QueryContext,
    ) -> Result<Outcome, DriverError> {
        let plan = self.prepared.get(&stmt).ok_or_else(|| {
            DriverError::new(
                ErrorCode::NoSuchStatement,
                format!("no prepared statement {stmt}"),
            )
        })?;
        let db = read_db(db);
        let mode = self.mode.unwrap_or_else(|| db.exec_mode());
        let rel = db
            .run_prepared(&plan.sql, &plan.expr, ctx, mode)
            .map_err(DriverError::from_core)?;
        Ok(Outcome::Rows(rel))
    }

    /// End the session: any open transaction is rolled back so a dropped
    /// connection can never leave table locks held.
    pub fn close(&mut self, db: &RwLock<Db>) {
        if let Some(h) = self.txn.take() {
            let _ = write_db(db).abort(h);
        }
        self.prepared.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_classifies_statement_shapes() {
        assert!(matches!(
            parse_statement("select e.name from emp e"),
            Ok(Statement::Select(_))
        ));
        assert_eq!(
            parse_statement("create table t (a int, b str)").unwrap(),
            Statement::CreateTable {
                name: "t".into(),
                cols: vec![("a".into(), Type::Int), ("b".into(), Type::Str)],
            }
        );
        assert_eq!(
            parse_statement("insert into t values (1, 'x, y', true, null)").unwrap(),
            Statement::Insert {
                table: "t".into(),
                row: vec![
                    Value::Int(1),
                    Value::str("x, y"),
                    Value::Bool(true),
                    Value::Null(0)
                ],
            }
        );
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("commit").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("rollback").unwrap(), Statement::Rollback);
        assert_eq!(
            parse_statement("gibberish").unwrap_err().code,
            ErrorCode::Unsupported
        );
        assert_eq!(
            parse_statement("create table t a int").unwrap_err().code,
            ErrorCode::Query
        );
        assert_eq!(
            parse_statement("insert into t values (wat)")
                .unwrap_err()
                .code,
            ErrorCode::Query
        );
    }

    #[test]
    fn explain_analyze_parses_and_runs() {
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE select t.a from t"),
            Ok(Statement::ExplainAnalyze(_))
        ));
        assert!(!parse_statement("explain analyze select t.a from t")
            .unwrap()
            .is_mutation());
        assert_eq!(
            parse_statement("explain analyze insert into t values (1)")
                .unwrap_err()
                .code,
            ErrorCode::Query
        );

        let db = RwLock::new(Db::new());
        let mut s = SessionCore::new();
        let ctx = s.context();
        s.run(
            &db,
            &parse_statement("create table t (a int)").unwrap(),
            &ctx,
        )
        .unwrap();
        s.run(
            &db,
            &parse_statement("insert into t values (1)").unwrap(),
            &ctx,
        )
        .unwrap();
        let ctx = s.context();
        match s
            .run(
                &db,
                &parse_statement("explain analyze select t.a from t").unwrap(),
                &ctx,
            )
            .unwrap()
        {
            Outcome::Message(m) => {
                assert!(m.contains("SeqScan [t]"), "{m}");
                assert!(m.contains("query: "), "{m}");
                assert!(m.contains("mem="), "{m}");
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn session_runs_statements_and_transactions() {
        let db = RwLock::new(Db::new());
        let mut s = SessionCore::new();
        let ctx = s.context();
        s.run(
            &db,
            &parse_statement("create table t (a int)").unwrap(),
            &ctx,
        )
        .unwrap();
        s.run(
            &db,
            &parse_statement("insert into t values (1)").unwrap(),
            &ctx,
        )
        .unwrap();

        // Interactive transaction: rollback undoes, commit keeps.
        s.run(&db, &Statement::Begin, &ctx).unwrap();
        assert!(s.in_txn());
        s.run(
            &db,
            &parse_statement("insert into t values (2)").unwrap(),
            &ctx,
        )
        .unwrap();
        s.run(&db, &Statement::Rollback, &ctx).unwrap();
        assert_eq!(read_db(&db).row_count("t").unwrap(), 1);

        s.run(&db, &Statement::Begin, &ctx).unwrap();
        s.run(
            &db,
            &parse_statement("insert into t values (3)").unwrap(),
            &ctx,
        )
        .unwrap();
        s.run(&db, &Statement::Commit, &ctx).unwrap();
        assert_eq!(read_db(&db).row_count("t").unwrap(), 2);

        // State misuse is typed.
        assert_eq!(
            s.run(&db, &Statement::Commit, &ctx).unwrap_err().code,
            ErrorCode::TxnState
        );
        s.run(&db, &Statement::Begin, &ctx).unwrap();
        assert_eq!(
            s.run(&db, &Statement::Begin, &ctx).unwrap_err().code,
            ErrorCode::TxnState
        );

        // Close rolls the open transaction back.
        s.run(
            &db,
            &parse_statement("insert into t values (4)").unwrap(),
            &ctx,
        )
        .unwrap();
        s.close(&db);
        assert!(!s.in_txn());
        assert_eq!(read_db(&db).row_count("t").unwrap(), 2);
    }

    #[test]
    fn prepared_statements_skip_reparsing() {
        let db = RwLock::new(Db::new());
        let mut s = SessionCore::new();
        let ctx = s.context();
        s.run(
            &db,
            &parse_statement("create table t (a int)").unwrap(),
            &ctx,
        )
        .unwrap();
        s.run(
            &db,
            &parse_statement("insert into t values (7)").unwrap(),
            &ctx,
        )
        .unwrap();

        let id = s.prepare(&db, "select t.a from t where t.a > 0").unwrap();
        assert_eq!(
            s.prepared_sql(id).unwrap(),
            "select t.a from t where t.a > 0"
        );
        match s.execute_prepared(&db, id, &s.context()).unwrap() {
            Outcome::Rows(rel) => assert_eq!(rel.len(), 1),
            other => panic!("expected rows, got {other:?}"),
        }

        assert_eq!(
            s.execute_prepared(&db, 999, &s.context()).unwrap_err().code,
            ErrorCode::NoSuchStatement
        );
        assert_eq!(
            s.prepare(&db, "insert into t values (1)").unwrap_err().code,
            ErrorCode::Unsupported
        );
        assert_eq!(
            s.prepare(&db, "select nope").unwrap_err().code,
            ErrorCode::Query
        );
    }
}
