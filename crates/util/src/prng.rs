//! A seedable SplitMix64 PRNG and an `rand`-like sampling trait.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA '14) passes BigCrush for the usage patterns here:
//! workload generation, random graphs, and differential-test fixtures. It
//! is *not* cryptographic and is not meant to be.
//!
//! Every generator in the workspace is seeded explicitly, so experiment
//! tables and failing test cases reproduce exactly.

/// Sampling operations over a raw `u64` stream, mirroring the subset of
/// `rand::Rng` the workspace previously used.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics when `bound == 0`.
    ///
    /// Uses rejection sampling over the top of the range, so the result is
    /// exactly uniform rather than modulo-biased.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Bernoulli trial: true with probability `pct / 100`.
    fn gen_pct(&mut self, pct: u32) -> bool {
        self.gen_range(100) < u64::from(pct)
    }

    /// Uniform boolean.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick a uniformly random element of a non-empty slice.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.gen_index(i + 1));
        }
    }
}

/// The SplitMix64 generator: one `u64` of state, period 2^64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Distinct seeds give independent-looking streams
    /// (the output function is a strong bit mixer).
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Derive a new generator from this one (the "split" operation); used
    /// to hand independent streams to parallel workers.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::seed_from_u64(self.next_u64())
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_match_splitmix64() {
        // Vectors from the reference C implementation with seed
        // 1234567: http://prng.di.unimi.it/splitmix64.c
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn determinism_by_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::seed_from_u64(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_pct_extremes() {
        let mut r = SplitMix64::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_pct(0)));
        assert!((0..100).all(|_| r.gen_pct(100)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffled order differs w.h.p.");
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SplitMix64::seed_from_u64(3);
        let mut b = a.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
