//! # bq-util
//!
//! Dependency-free utilities shared by every other crate in the workspace.
//! The container this repo builds in has no network access to a crates
//! registry, so anything that would normally come from `rand` lives here
//! instead: a tiny, seedable, high-quality-enough PRNG and the handful of
//! sampling helpers the experiments need.

pub mod prng;

pub use prng::{Rng, SplitMix64};
