//! Backup manifests: the small, checksummed records of truth.
//!
//! A manifest names exactly one archived payload object (a snapshot
//! image for a full backup, a WAL segment for an incremental), records
//! the WAL range the backup covers, the payload's length and FNV-1a
//! checksum, and the committed-content fingerprint at the horizon. The
//! encoding ends with an FNV-1a trailer over everything before it, so a
//! torn or bit-flipped manifest is always detected and refused — it can
//! never silently point a restore at the wrong bytes.
//!
//! Chain rules: a full backup covers `[0, wal_end]` by itself
//! (`wal_start == wal_end` — the image subsumes all earlier history);
//! an incremental covers `[wal_start, wal_end)` and is applicable only
//! when replay has reached exactly `wal_start`. Manifests are written
//! *after* their payload object, so a crash mid-backup leaves orphan
//! objects that no manifest points at; the next attempt overwrites them.

use crate::error::BackupError;
use crate::Result;
use bq_storage::page::fnv1a;

/// Magic bytes leading every manifest.
const MAGIC: &[u8; 4] = b"BQBK";
/// Version byte after the magic.
const VERSION: u8 = 1;

/// What a backup archived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackupKind {
    /// A [`bq_core::Db::snapshot_bytes`] image at `wal_end`.
    Full,
    /// The durable WAL bytes `[wal_start, wal_end)`.
    Incremental,
}

impl BackupKind {
    /// Human-readable name, as shown by `bq.backups`.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackupKind::Full => "full",
            BackupKind::Incremental => "incremental",
        }
    }
}

/// One checksummed backup record. See the module docs for the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Chain sequence number; also the archive object name prefix.
    pub seq: u64,
    /// Full image or incremental WAL delta.
    pub kind: BackupKind,
    /// First WAL byte offset covered (equals `wal_end` for a full).
    pub wal_start: u64,
    /// WAL horizon this backup restores to.
    pub wal_end: u64,
    /// Archive object holding the payload bytes.
    pub object: String,
    /// Payload length in bytes.
    pub object_len: u64,
    /// FNV-1a checksum of the payload bytes.
    pub object_fnv: u32,
    /// [`bq_core::Db::content_fingerprint`] at `wal_end` (committed
    /// rows only), pinned so restores can be spot-checked.
    pub fingerprint: u64,
}

impl Manifest {
    /// Archive object name of the manifest for chain sequence `seq`.
    pub fn name_for(seq: u64) -> String {
        format!("{seq:08}.manifest")
    }

    /// Archive object name of this manifest.
    pub fn name(&self) -> String {
        Manifest::name_for(self.seq)
    }

    /// Serialize with the trailing FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.push(match self.kind {
            BackupKind::Full => 0,
            BackupKind::Incremental => 1,
        });
        buf.extend_from_slice(&self.wal_start.to_le_bytes());
        buf.extend_from_slice(&self.wal_end.to_le_bytes());
        buf.extend_from_slice(&(self.object.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.object.as_bytes());
        buf.extend_from_slice(&self.object_len.to_le_bytes());
        buf.extend_from_slice(&self.object_fnv.to_le_bytes());
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode and verify; every failure is a typed
    /// [`BackupError::TornManifest`] naming `name`.
    pub fn decode(name: &str, bytes: &[u8]) -> Result<Manifest> {
        let torn = |detail: String| BackupError::TornManifest {
            name: name.to_string(),
            detail,
        };
        if bytes.len() < 4 {
            return Err(torn(format!("only {} bytes", bytes.len())));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = fnv1a(body);
        if stored != computed {
            return Err(torn(format!(
                "trailer checksum {stored:#010x} != computed {computed:#010x}"
            )));
        }
        let mut r = Cursor {
            buf: body,
            pos: 0,
            name,
        };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(torn("bad magic".to_string()));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(torn(format!("unknown version {version}")));
        }
        let seq = r.u64()?;
        let kind = match r.u8()? {
            0 => BackupKind::Full,
            1 => BackupKind::Incremental,
            other => return Err(torn(format!("bad kind byte {other}"))),
        };
        let wal_start = r.u64()?;
        let wal_end = r.u64()?;
        let object_name_len = r.u32()? as usize;
        let object_raw = r.take(object_name_len)?.to_vec();
        let object = String::from_utf8(object_raw).map_err(|e| torn(e.to_string()))?;
        let object_len = r.u64()?;
        let object_fnv = r.u32()?;
        let fingerprint = r.u64()?;
        if r.pos != body.len() {
            return Err(torn(format!("{} trailing bytes", body.len() - r.pos)));
        }
        Ok(Manifest {
            seq,
            kind,
            wal_start,
            wal_end,
            object,
            object_len,
            object_fnv,
            fingerprint,
        })
    }

    /// Verify `bytes` against this manifest's recorded length and
    /// checksum; a mismatch is a typed [`BackupError::ObjectCorrupt`].
    pub fn verify_object(&self, bytes: &[u8]) -> Result<()> {
        let found = fnv1a(bytes);
        if bytes.len() as u64 != self.object_len || found != self.object_fnv {
            return Err(BackupError::ObjectCorrupt {
                name: self.object.clone(),
                expected: self.object_fnv,
                found,
            });
        }
        Ok(())
    }
}

/// Bounds-checked reader over a manifest body; failures become
/// [`BackupError::TornManifest`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    name: &'a str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.torn_at())?;
        let s = self.buf.get(self.pos..end).ok_or_else(|| self.torn_at())?;
        self.pos = end;
        Ok(s)
    }

    fn torn_at(&self) -> BackupError {
        BackupError::TornManifest {
            name: self.name.to_string(),
            detail: format!("truncated at {}", self.pos),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            seq: 3,
            kind: BackupKind::Incremental,
            wal_start: 128,
            wal_end: 512,
            object: "00000003.seg".to_string(),
            object_len: 384,
            object_fnv: 0x1234_5678,
            fingerprint: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&m.name(), &bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.name(), "00000003.manifest");
    }

    #[test]
    fn every_truncation_is_refused_typed() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = Manifest::decode("m", &bytes[..len]).unwrap_err();
            assert!(
                matches!(err, BackupError::TornManifest { .. }),
                "len {len}: {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_refused() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Manifest::decode("m", &bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn object_verification_checks_length_and_checksum() {
        let payload = b"the archived bytes".to_vec();
        let mut m = sample();
        m.object_len = payload.len() as u64;
        m.object_fnv = fnv1a(&payload);
        m.verify_object(&payload).unwrap();
        let mut flipped = payload.clone();
        flipped[4] ^= 0x01;
        assert!(matches!(
            m.verify_object(&flipped),
            Err(BackupError::ObjectCorrupt { .. })
        ));
        assert!(m.verify_object(&payload[..5]).is_err());
    }
}
