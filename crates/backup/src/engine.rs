//! The backup engine: online full/incremental backups, point-in-time
//! recovery, and integrity scrubbing over an [`Archive`].
//!
//! # Concurrency and lock order
//!
//! One engine serializes its own operations through an internal `state`
//! mutex, then briefly takes the engine's `db` write lock only for the
//! in-memory copy (snapshot export or WAL-delta read) — never across
//! archive I/O, so writers are blocked for the copy, not the upload.
//! Lock order is therefore `state` before `db`, declared to bq-lint.
//!
//! # Crash atomicity
//!
//! Payload objects are archived first and the manifest last. A crash at
//! any point leaves either (a) a complete manifest whose payload is
//! already durable, or (b) orphan payload bytes no manifest points at.
//! Restores only trust decodable, checksum-verified manifests, so a
//! half-taken backup is invisible rather than wrong. Failed attempts
//! reuse their sequence number: the next attempt overwrites orphans.

use crate::archive::Archive;
use crate::error::BackupError;
use crate::manifest::{BackupKind, Manifest};
use crate::Result;
use bq_core::{BackupRegistry, BackupRow, Db};
use bq_storage::page::fnv1a;
use bq_storage::Wal;
use std::sync::{Arc, Mutex, RwLock};

/// A manifest that failed to decode: its archive name and the typed
/// refusal.
pub type TornEntry = (String, BackupError);

/// What a scrub pass found (and repaired).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Manifests decoded (including torn ones).
    pub manifests_checked: usize,
    /// Manifests refused as torn.
    pub manifests_bad: usize,
    /// Payload objects verified against their manifests.
    pub objects_checked: usize,
    /// Payload objects missing or failing their checksum.
    pub objects_bad: usize,
    /// Live heap pages read (0 when no engine was scrubbed).
    pub pages_checked: usize,
    /// Live heap pages found corrupt and rebuilt from the logical layer.
    pub pages_restored: usize,
    /// Names of every bad manifest/object, for operators and tests.
    pub bad: Vec<String>,
}

impl ScrubReport {
    /// Did the pass find nothing wrong?
    pub fn clean(&self) -> bool {
        self.manifests_bad == 0 && self.objects_bad == 0 && self.pages_restored == 0
    }
}

/// Orchestrates backups, restores, and scrubs against one [`Archive`].
#[derive(Debug)]
pub struct BackupEngine {
    archive: Arc<dyn Archive>,
    /// Serializes backup/scrub operations; ordered before the `db`
    /// write lock (see the module docs).
    state: Mutex<()>,
    registry: BackupRegistry,
}

impl BackupEngine {
    /// An engine archiving into `archive`, publishing rows to
    /// `registry` (surface it via `bq.backups` by passing the registry
    /// obtained from [`Db::backup_registry`]).
    pub fn new(archive: Arc<dyn Archive>, registry: BackupRegistry) -> BackupEngine {
        BackupEngine {
            archive,
            state: Mutex::new(()),
            registry,
        }
    }

    /// The archive this engine reads and writes.
    pub fn archive(&self) -> &Arc<dyn Archive> {
        &self.archive
    }

    /// Take a full backup: snapshot image + horizon, archived without
    /// holding the engine lock during upload.
    pub fn backup_full(&self, db: &RwLock<Db>) -> Result<Manifest> {
        let _g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.full_locked(db)
    }

    /// Take an incremental backup: the durable WAL delta since the
    /// chain tip. Falls back to a fresh full backup whenever the chain
    /// is unusable — no full yet, a torn link, a missing object, or a
    /// WAL horizon behind the tip (the engine was restored or promoted
    /// since, so the old chain no longer describes this history).
    pub fn backup_incremental(&self, db: &RwLock<Db>) -> Result<Manifest> {
        let _g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let tip = match self.chain_tip()? {
            Some(tip) => tip,
            None => return self.full_locked(db),
        };
        let mut guard = db.write().unwrap_or_else(|e| e.into_inner());
        // lint: allow(blocking-while-locked) the hold is the point: the WAL horizon must not move between sync and snapshot, so commits wait out this fsync by design
        let horizon = guard.sync_wal()?;
        if horizon < tip.wal_end {
            // The engine's WAL restarted behind the chain (restore or
            // promotion): the old chain describes a different history.
            drop(guard);
            return self.full_locked(db);
        }
        let delta = guard.wal_durable_bytes(tip.wal_end, usize::MAX);
        let fingerprint = guard.content_fingerprint();
        drop(guard);
        if delta.is_empty() {
            return Ok(tip);
        }
        let seq = self.next_seq()?;
        let object = format!("{seq:08}.seg");
        let object_fnv = fnv1a(&delta);
        let mut stored = delta;
        if bq_faults::hit("backup.segment.bitflip").is_some() {
            // Media rot between checksum and platter: the archived copy
            // differs from what the manifest vouches for.
            stored[0] ^= 0x01;
        }
        self.put_payload(seq, &object, &stored)?;
        self.crash_point(seq, "backup.crash")?;
        let manifest = Manifest {
            seq,
            kind: BackupKind::Incremental,
            wal_start: tip.wal_end,
            wal_end: horizon,
            object,
            object_len: stored.len() as u64,
            object_fnv,
            fingerprint,
        };
        self.seal(&manifest)?;
        bq_obs::counter!("bq_backup_incremental_total", "incremental backups sealed").inc();
        Ok(manifest)
    }

    fn full_locked(&self, db: &RwLock<Db>) -> Result<Manifest> {
        let (image, horizon, fingerprint) = {
            let mut db = db.write().unwrap_or_else(|e| e.into_inner());
            let image = db.snapshot_bytes()?;
            (image, db.wal_durable_len(), db.content_fingerprint())
        };
        let seq = self.next_seq()?;
        let object = format!("{seq:08}.snap");
        let object_fnv = fnv1a(&image);
        self.put_payload(seq, &object, &image)?;
        self.crash_point(seq, "backup.crash")?;
        let manifest = Manifest {
            seq,
            kind: BackupKind::Full,
            wal_start: horizon,
            wal_end: horizon,
            object,
            object_len: image.len() as u64,
            object_fnv,
            fingerprint,
        };
        self.seal(&manifest)?;
        bq_obs::counter!("bq_backup_full_total", "full backups sealed").inc();
        Ok(manifest)
    }

    /// Archive a payload object, honouring the disk-full failpoint.
    fn put_payload(&self, seq: u64, name: &str, bytes: &[u8]) -> Result<()> {
        if bq_faults::hit("backup.archive.enospc").is_some() {
            self.record_failed(seq, name, "archive full");
            return Err(BackupError::ArchiveFull {
                name: name.to_string(),
            });
        }
        if let Err(e) = self.archive.put(name, bytes) {
            self.record_failed(seq, name, "archive put failed");
            return Err(e);
        }
        Ok(())
    }

    /// Simulated crash between payload and manifest: the payload is
    /// durable but orphaned, and the attempt dies with a typed error.
    fn crash_point(&self, seq: u64, site: &'static str) -> Result<()> {
        if bq_faults::hit(site).is_some() {
            self.record_failed(seq, site, "crashed before manifest");
            return Err(BackupError::Injected(site));
        }
        Ok(())
    }

    /// Write the manifest — the commit point of a backup. The
    /// `backup.manifest.torn` failpoint tears the write in half, as a
    /// crashed non-atomic archive would.
    fn seal(&self, manifest: &Manifest) -> Result<()> {
        let mut bytes = manifest.encode();
        if bq_faults::hit("backup.manifest.torn").is_some() {
            bytes.truncate(bytes.len() / 2);
        }
        if let Err(e) = self.archive.put(&manifest.name(), &bytes) {
            self.record_failed(manifest.seq, &manifest.name(), "manifest put failed");
            return Err(e);
        }
        self.registry.upsert(BackupRow {
            seq: manifest.seq,
            kind: manifest.kind.as_str().to_string(),
            wal_start: manifest.wal_start,
            wal_end: manifest.wal_end,
            bytes: manifest.object_len,
            state: "complete".to_string(),
            fingerprint: manifest.fingerprint,
            created_us: bq_obs::now_us(),
        });
        bq_obs::counter!("bq_backup_bytes_total", "payload bytes archived")
            .add(manifest.object_len);
        Ok(())
    }

    fn record_failed(&self, seq: u64, what: &str, why: &str) {
        self.registry.upsert(BackupRow {
            seq,
            kind: "attempt".to_string(),
            wal_start: 0,
            wal_end: 0,
            bytes: 0,
            state: format!("failed:{why} ({what})"),
            fingerprint: 0,
            created_us: bq_obs::now_us(),
        });
        bq_obs::counter!("bq_backup_failed_total", "backup attempts that failed").inc();
    }

    /// All decodable manifests in sequence order, plus the names and
    /// typed errors of torn ones.
    pub fn manifests(&self) -> Result<(Vec<Manifest>, Vec<TornEntry>)> {
        let mut valid = Vec::new();
        let mut torn = Vec::new();
        for name in self.archive.list()? {
            if !name.ends_with(".manifest") {
                continue;
            }
            let bytes = self
                .archive
                .get(&name)?
                .ok_or_else(|| BackupError::ObjectMissing { name: name.clone() })?;
            match Manifest::decode(&name, &bytes) {
                Ok(m) => valid.push(m),
                Err(e) => torn.push((name, e)),
            }
        }
        valid.sort_by_key(|m| m.seq);
        Ok((valid, torn))
    }

    /// Next chain sequence number: one past the highest *sealed*
    /// manifest. Orphan payloads and torn manifests do not advance it,
    /// so a retried attempt overwrites its own wreckage.
    fn next_seq(&self) -> Result<u64> {
        let (valid, _) = self.manifests()?;
        Ok(valid.last().map_or(1, |m| m.seq + 1))
    }

    /// The manifest the next incremental should extend: the last link
    /// of the unbroken chain rooted at the newest full backup. `None`
    /// when there is no usable chain (take a full backup instead).
    fn chain_tip(&self) -> Result<Option<Manifest>> {
        let (valid, _) = self.manifests()?;
        let full = match valid.iter().rev().find(|m| m.kind == BackupKind::Full) {
            Some(f) => f.clone(),
            None => return Ok(None),
        };
        if !self.object_verifies(&full) {
            return Ok(None);
        }
        // Walk forward one link at a time, checksum-verifying each
        // payload: a dropped OR rotted segment ends the chain here, so
        // the next incremental re-bases on the last proven link and the
        // chain heals. At each position the newest manifest wins (a
        // re-taken incremental supersedes a dead one covering the same
        // range — its bad object must not shadow the replacement).
        let mut tip = full.clone();
        loop {
            let next = valid
                .iter()
                .filter(|m| {
                    m.kind == BackupKind::Incremental
                        && m.seq > full.seq
                        && m.wal_start == tip.wal_end
                        && m.wal_end > tip.wal_end
                        && self.object_verifies(m)
                })
                .max_by_key(|m| m.seq);
            match next {
                Some(m) => tip = m.clone(),
                None => return Ok(Some(tip)),
            }
        }
    }

    /// Point-in-time recovery: rebuild a fresh engine whose state is
    /// exactly the archived history up to WAL offset `target`. Verifies
    /// every payload checksum before applying a single record; refuses
    /// torn manifests, corrupt or missing objects, chain gaps, and
    /// offsets that do not land on an archived record boundary — each
    /// with its own typed [`BackupError`].
    pub fn restore_to_offset(&self, target: u64) -> Result<Db> {
        let _g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (valid, torn) = self.manifests()?;
        let full = valid
            .iter()
            .filter(|m| m.kind == BackupKind::Full && m.wal_end <= target)
            .max_by_key(|m| (m.wal_end, m.seq));
        let full = match full {
            Some(f) => f,
            None => {
                // A torn manifest may be hiding exactly the full backup
                // needed; surface it rather than a misleading "none".
                if let Some((_, e)) = torn.into_iter().next() {
                    return Err(e);
                }
                return Err(BackupError::NoFullBackup);
            }
        };
        let db = self.replay_chain(full, &valid, target)?;
        bq_obs::counter!(
            "bq_backup_restores_total",
            "point-in-time restores completed"
        )
        .inc();
        Ok(db)
    }

    /// Restore to the newest offset the archive can actually prove:
    /// walks back from the newest full backup until it finds a chain
    /// whose payloads all verify, healing past torn or rotted links by
    /// falling back to the previous full. Returns the engine and the
    /// WAL offset it was restored to.
    pub fn restore_latest(&self) -> Result<(Db, u64)> {
        let _g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (valid, torn) = self.manifests()?;
        let mut fulls: Vec<&Manifest> = valid
            .iter()
            .filter(|m| m.kind == BackupKind::Full)
            .collect();
        fulls.sort_by_key(|m| std::cmp::Reverse((m.wal_end, m.seq)));
        for full in fulls {
            if !self.object_verifies(full) {
                continue;
            }
            let horizon = self.verified_horizon(full, &valid);
            let db = self.replay_chain(full, &valid, horizon)?;
            bq_obs::counter!(
                "bq_backup_restores_total",
                "point-in-time restores completed"
            )
            .inc();
            return Ok((db, horizon));
        }
        if let Some((_, e)) = torn.into_iter().next() {
            return Err(e);
        }
        Err(BackupError::NoFullBackup)
    }

    /// The newest WAL offset [`BackupEngine::restore_latest`] would
    /// reach right now, without building the engine. `None` when no
    /// verifiable full backup exists.
    pub fn latest_restorable(&self) -> Result<Option<u64>> {
        let (valid, _) = self.manifests()?;
        let mut fulls: Vec<&Manifest> = valid
            .iter()
            .filter(|m| m.kind == BackupKind::Full)
            .collect();
        fulls.sort_by_key(|m| std::cmp::Reverse((m.wal_end, m.seq)));
        for full in fulls {
            if !self.object_verifies(full) {
                continue;
            }
            return Ok(Some(self.verified_horizon(full, &valid)));
        }
        Ok(None)
    }

    /// How far past `full` the chain extends through contiguous,
    /// checksum-verified incrementals, newest manifest winning at each
    /// position (a re-taken incremental supersedes a dead one).
    fn verified_horizon(&self, full: &Manifest, valid: &[Manifest]) -> u64 {
        let mut horizon = full.wal_end;
        loop {
            let next = valid
                .iter()
                .filter(|m| {
                    m.kind == BackupKind::Incremental
                        && m.seq > full.seq
                        && m.wal_start == horizon
                        && m.wal_end > horizon
                        && self.object_verifies(m)
                })
                .max_by_key(|m| m.seq);
            match next {
                Some(m) => horizon = m.wal_end,
                None => return horizon,
            }
        }
    }

    fn object_verifies(&self, m: &Manifest) -> bool {
        match self.archive.get(&m.object) {
            Ok(Some(bytes)) => m.verify_object(&bytes).is_ok(),
            _ => false,
        }
    }

    /// Seed a fresh engine from `full`'s image and replay archived WAL
    /// through [`Db::apply_record`] up to exactly `target`.
    fn replay_chain(&self, full: &Manifest, valid: &[Manifest], target: u64) -> Result<Db> {
        let image = self
            .archive
            .get(&full.object)?
            .ok_or_else(|| BackupError::ObjectMissing {
                name: full.object.clone(),
            })?;
        full.verify_object(&image)?;
        let mut db = Db::new();
        db.apply_snapshot(&image)?;
        let mut pos = full.wal_end;
        if pos == target && full.fingerprint != db.content_fingerprint() {
            // The image itself restored to something other than what
            // its manifest pinned — refuse rather than hand back a
            // silently wrong engine.
            return Err(BackupError::Core(format!(
                "restored fingerprint {:016x} != manifest fingerprint {:016x}",
                db.content_fingerprint(),
                full.fingerprint
            )));
        }
        let segs: Vec<&Manifest> = valid
            .iter()
            .filter(|m| m.kind == BackupKind::Incremental && m.seq > full.seq)
            .collect();
        while pos < target {
            // Newest manifest at this position wins (a re-taken
            // incremental supersedes a dead one covering the same range).
            let m = segs
                .iter()
                .filter(|m| m.wal_start == pos && m.wal_end > pos)
                .max_by_key(|m| m.seq);
            let m = match m {
                Some(m) => *m,
                None => {
                    if let Some(found) = segs
                        .iter()
                        .filter(|m| m.wal_start > pos)
                        .map(|m| m.wal_start)
                        .min()
                    {
                        return Err(BackupError::ChainGap {
                            expected: pos,
                            found,
                        });
                    }
                    // Nothing archived past here: the target lies beyond
                    // the horizon the archive can prove.
                    return Err(BackupError::BadOffset {
                        requested: target,
                        boundary: pos,
                    });
                }
            };
            let seg = self
                .archive
                .get(&m.object)?
                .ok_or_else(|| BackupError::ObjectMissing {
                    name: m.object.clone(),
                })?;
            // Verify the WHOLE segment before applying any of it: a
            // flipped bit past the target offset still means the
            // archive lied about these bytes.
            m.verify_object(&seg)?;
            let want = (target.min(m.wal_end) - m.wal_start) as usize;
            let (records, consumed) = Wal::decode_stream(&seg[..want])?;
            if consumed < want {
                return Err(BackupError::BadOffset {
                    requested: target,
                    boundary: pos + consumed as u64,
                });
            }
            for rec in &records {
                if bq_faults::hit("backup.restore.crash").is_some() {
                    return Err(BackupError::Injected("backup.restore.crash"));
                }
                db.apply_record(rec)?;
            }
            pos += consumed as u64;
        }
        if pos < target {
            return Err(BackupError::BadOffset {
                requested: target,
                boundary: pos,
            });
        }
        Ok(db)
    }

    /// Verify every archived manifest and payload object, then (when an
    /// engine is supplied) walk its heap pages, rebuilding the physical
    /// layer from the intact logical layer if any page is corrupt.
    pub fn scrub(&self, db: Option<&RwLock<Db>>) -> Result<ScrubReport> {
        let _g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut report = ScrubReport::default();
        let (valid, torn) = self.manifests()?;
        report.manifests_checked = valid.len() + torn.len();
        report.manifests_bad = torn.len();
        for (name, _) in &torn {
            report.bad.push(name.clone());
        }
        for m in &valid {
            report.objects_checked += 1;
            let ok = match self.archive.get(&m.object)? {
                Some(bytes) => m.verify_object(&bytes).is_ok(),
                None => false,
            };
            if !ok {
                report.objects_bad += 1;
                report.bad.push(m.object.clone());
            }
        }
        if let Some(db) = db {
            let (checked, restored) = db
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .scrub_pages()?;
            report.pages_checked = checked;
            report.pages_restored = restored;
        }
        bq_obs::counter!("bq_scrub_runs_total", "scrub passes completed").inc();
        bq_obs::counter!(
            "bq_scrub_objects_checked_total",
            "archived objects verified by scrub"
        )
        .add(report.objects_checked as u64);
        bq_obs::counter!(
            "bq_scrub_objects_bad_total",
            "archived objects found missing or corrupt by scrub"
        )
        .add(report.objects_bad as u64);
        bq_obs::counter!(
            "bq_scrub_manifests_bad_total",
            "manifests refused as torn by scrub"
        )
        .add(report.manifests_bad as u64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::MemArchive;
    use bq_relational::{Type, Value};

    fn engine() -> (BackupEngine, Arc<MemArchive>) {
        let mem = Arc::new(MemArchive::new());
        let eng = BackupEngine::new(mem.clone(), BackupRegistry::new());
        (eng, mem)
    }

    fn seeded_db(rows: u64) -> RwLock<Db> {
        let mut db = Db::new();
        db.create_table("t", &[("id", Type::Int), ("name", Type::Str)])
            .unwrap();
        let h = db.begin().unwrap();
        for i in 0..rows {
            db.insert_in(
                h,
                "t",
                vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))],
            )
            .unwrap();
        }
        db.commit(h).unwrap();
        RwLock::new(db)
    }

    fn add_rows(db: &RwLock<Db>, from: u64, n: u64) {
        let mut db = db.write().unwrap();
        let h = db.begin().unwrap();
        for i in from..from + n {
            db.insert_in(
                h,
                "t",
                vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))],
            )
            .unwrap();
        }
        db.commit(h).unwrap();
    }

    fn fp(db: &RwLock<Db>) -> u64 {
        db.read().unwrap().content_fingerprint()
    }

    #[test]
    fn full_backup_then_restore_matches_fingerprint() {
        let (eng, _) = engine();
        let db = seeded_db(10);
        let m = eng.backup_full(&db).unwrap();
        assert_eq!(m.kind, BackupKind::Full);
        assert_eq!(m.wal_start, m.wal_end);
        let restored = eng.restore_to_offset(m.wal_end).unwrap();
        assert_eq!(restored.content_fingerprint(), fp(&db));
        assert_eq!(restored.content_fingerprint(), m.fingerprint);
    }

    #[test]
    fn incremental_chain_restores_to_latest() {
        let (eng, _) = engine();
        let db = seeded_db(5);
        eng.backup_full(&db).unwrap();
        add_rows(&db, 5, 5);
        let m2 = eng.backup_incremental(&db).unwrap();
        assert_eq!(m2.kind, BackupKind::Incremental);
        add_rows(&db, 10, 5);
        let m3 = eng.backup_incremental(&db).unwrap();
        assert_eq!(m3.wal_start, m2.wal_end);
        let (restored, off) = eng.restore_latest().unwrap();
        assert_eq!(off, m3.wal_end);
        assert_eq!(restored.content_fingerprint(), fp(&db));
    }

    #[test]
    fn restore_to_mid_chain_offset_excludes_later_writes() {
        let (eng, _) = engine();
        let db = seeded_db(4);
        let m1 = eng.backup_full(&db).unwrap();
        let fp_at_full = fp(&db);
        add_rows(&db, 4, 4);
        let m2 = eng.backup_incremental(&db).unwrap();
        let fp_at_incr = fp(&db);
        add_rows(&db, 8, 4);
        eng.backup_incremental(&db).unwrap();
        assert_eq!(
            eng.restore_to_offset(m1.wal_end)
                .unwrap()
                .content_fingerprint(),
            fp_at_full
        );
        assert_eq!(
            eng.restore_to_offset(m2.wal_end)
                .unwrap()
                .content_fingerprint(),
            fp_at_incr
        );
    }

    #[test]
    fn empty_archive_refuses_with_no_full_backup() {
        let (eng, _) = engine();
        assert!(matches!(
            eng.restore_to_offset(0),
            Err(BackupError::NoFullBackup)
        ));
        assert!(matches!(
            eng.restore_latest(),
            Err(BackupError::NoFullBackup)
        ));
        assert_eq!(eng.latest_restorable().unwrap(), None);
    }

    #[test]
    fn first_incremental_without_full_takes_a_full() {
        let (eng, _) = engine();
        let db = seeded_db(3);
        let m = eng.backup_incremental(&db).unwrap();
        assert_eq!(m.kind, BackupKind::Full);
    }

    #[test]
    fn incremental_with_no_new_writes_returns_tip() {
        let (eng, _) = engine();
        let db = seeded_db(3);
        let m1 = eng.backup_full(&db).unwrap();
        let m2 = eng.backup_incremental(&db).unwrap();
        assert_eq!(m2, m1);
    }

    #[test]
    fn dropped_segment_heals_by_falling_back_to_full() {
        let (eng, mem) = engine();
        let db = seeded_db(3);
        eng.backup_full(&db).unwrap();
        add_rows(&db, 3, 3);
        let m2 = eng.backup_incremental(&db).unwrap();
        assert!(mem.delete(&m2.object).unwrap());
        add_rows(&db, 6, 3);
        let m3 = eng.backup_incremental(&db).unwrap();
        // The chain re-bases on the last full backup: the new segment
        // starts at the full's horizon, superseding the dead link.
        assert_eq!(m3.kind, BackupKind::Incremental);
        assert_eq!(m3.wal_start, m2.wal_start);
        let (restored, off) = eng.restore_latest().unwrap();
        assert_eq!(off, m3.wal_end);
        assert_eq!(restored.content_fingerprint(), fp(&db));
    }

    #[test]
    fn corrupt_segment_is_refused_but_latest_heals_past_it() {
        let (eng, mem) = engine();
        let db = seeded_db(3);
        let m1 = eng.backup_full(&db).unwrap();
        let fp_at_full = fp(&db);
        add_rows(&db, 3, 3);
        let m2 = eng.backup_incremental(&db).unwrap();
        assert!(mem.flip_bit(&m2.object, 2));
        assert!(matches!(
            eng.restore_to_offset(m2.wal_end),
            Err(BackupError::ObjectCorrupt { .. })
        ));
        let (restored, off) = eng.restore_latest().unwrap();
        assert_eq!(off, m1.wal_end);
        assert_eq!(restored.content_fingerprint(), fp_at_full);
    }

    #[test]
    fn offset_inside_a_record_is_refused_with_boundary() {
        let (eng, _) = engine();
        let db = seeded_db(3);
        let m1 = eng.backup_full(&db).unwrap();
        add_rows(&db, 3, 3);
        let m2 = eng.backup_incremental(&db).unwrap();
        let err = eng.restore_to_offset(m1.wal_end + 1).unwrap_err();
        match err {
            BackupError::BadOffset {
                requested,
                boundary,
            } => {
                assert_eq!(requested, m1.wal_end + 1);
                assert!(boundary <= m1.wal_end + 1);
                assert!(boundary >= m1.wal_end);
            }
            other => panic!("expected BadOffset, got {other}"),
        }
        // Past the archived horizon is equally unanswerable.
        assert!(matches!(
            eng.restore_to_offset(m2.wal_end + 1000),
            Err(BackupError::BadOffset { .. })
        ));
    }

    #[test]
    fn scrub_reports_clean_archive_and_counts_damage() {
        let (eng, mem) = engine();
        let db = seeded_db(4);
        eng.backup_full(&db).unwrap();
        add_rows(&db, 4, 2);
        let m2 = eng.backup_incremental(&db).unwrap();
        let clean = eng.scrub(Some(&db)).unwrap();
        assert!(clean.clean(), "{clean:?}");
        assert_eq!(clean.objects_checked, 2);
        assert!(clean.pages_checked > 0);
        mem.flip_bit(&m2.object, 1);
        mem.truncate(&Manifest::name_for(1), 5);
        let dirty = eng.scrub(Some(&db)).unwrap();
        assert_eq!(dirty.manifests_bad, 1);
        assert_eq!(dirty.objects_bad, 1);
        assert!(dirty.bad.iter().any(|n| n == &m2.object));
    }

    #[test]
    fn scrub_repairs_a_corrupted_live_page() {
        let (eng, _) = engine();
        let db = seeded_db(6);
        let before = fp(&db);
        db.write().unwrap().corrupt_page(0).unwrap();
        let report = eng.scrub(Some(&db)).unwrap();
        assert!(report.pages_restored > 0);
        assert_eq!(fp(&db), before, "repair must restore committed content");
        assert!(eng.scrub(Some(&db)).unwrap().clean());
    }

    #[test]
    fn registry_rows_published_per_backup() {
        let mem = Arc::new(MemArchive::new());
        let db = seeded_db(2);
        let registry = db.read().unwrap().backup_registry();
        let eng = BackupEngine::new(mem, registry.clone());
        eng.backup_full(&db).unwrap();
        add_rows(&db, 2, 2);
        eng.backup_incremental(&db).unwrap();
        let rows = registry.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, "full");
        assert_eq!(rows[1].kind, "incremental");
        assert!(rows.iter().all(|r| r.state == "complete"));
    }
}
