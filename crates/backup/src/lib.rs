//! # bq-backup
//!
//! Online backups, incremental WAL archiving, point-in-time recovery,
//! and background integrity scrubbing — the durability leg the paper's
//! "reliability and recovery" tradition demands of a system that claims
//! to answer big queries about its own history.
//!
//! A **full backup** is a [`bq_core::Db::snapshot_bytes`] image taken at
//! a WAL horizon (the same write-lock-scoped snapshot/horizon pairing
//! replica bootstrap uses, so writers block only for the copy, never for
//! the archival I/O). An **incremental backup** archives only the
//! durable WAL delta since the previous manifest. Every archived object
//! is FNV-checksummed in a [`manifest::Manifest`] that is itself
//! checksummed and written *last* — a crash at any point leaves either a
//! complete chain or orphan objects no manifest points at, never a
//! manifest that restores to a wrong state.
//!
//! **Point-in-time recovery** ([`BackupEngine::restore_to_offset`])
//! rebuilds a fresh engine from the best full image at or below the
//! target and replays archived WAL through [`bq_core::Db::apply_record`]
//! — the replication redo path — up to an exact record boundary,
//! verifying every segment checksum before applying and refusing torn or
//! gap-opening archives with typed [`BackupError`]s.
//!
//! The **scrubber** ([`BackupEngine::scrub`]) walks archived manifests
//! and objects verifying checksums, and (given an engine) walks its heap
//! pages via [`bq_core::Db::scrub_pages`], repairing corrupt pages from
//! the intact logical layer.

pub mod archive;
pub mod engine;
pub mod error;
pub mod manifest;

pub use archive::{Archive, DirArchive, MemArchive};
pub use engine::{BackupEngine, ScrubReport, TornEntry};
pub use error::BackupError;
pub use manifest::{BackupKind, Manifest};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, BackupError>;
