//! Typed backup/restore/scrub errors. Every refusal names what was
//! wrong and where, so torture tests can assert on the exact failure
//! mode rather than a message string.

use std::fmt;

/// Errors surfaced by the backup engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackupError {
    /// A manifest failed to decode: truncated write, bad magic/version,
    /// or a trailer checksum mismatch. A torn manifest is *refused*,
    /// never partially trusted.
    TornManifest {
        /// Archive object name of the manifest.
        name: String,
        /// What the decoder tripped over.
        detail: String,
    },
    /// An archived object (snapshot image or WAL segment) is missing
    /// from the archive even though a manifest points at it.
    ObjectMissing {
        /// Archive object name.
        name: String,
    },
    /// An archived object's bytes disagree with the checksum or length
    /// its manifest recorded — bit rot, a torn write, or tampering.
    ObjectCorrupt {
        /// Archive object name.
        name: String,
        /// Checksum the manifest recorded.
        expected: u32,
        /// Checksum computed from the archived bytes.
        found: u32,
    },
    /// The archived WAL chain does not cover the requested range: the
    /// next needed segment starts past the current replay position.
    ChainGap {
        /// WAL offset replay reached (the next segment must start here).
        expected: u64,
        /// WAL offset the next available segment actually starts at.
        found: u64,
    },
    /// The requested restore offset does not land on a record boundary
    /// inside the archived WAL, or lies beyond the archived horizon.
    BadOffset {
        /// Offset the caller asked for.
        requested: u64,
        /// Nearest record boundary at or below the request that the
        /// archive can actually restore to.
        boundary: u64,
    },
    /// No full backup exists at or below the requested offset; nothing
    /// to seed a restore from.
    NoFullBackup,
    /// The archive device refused a write (disk full), via the
    /// `backup.archive.enospc` failpoint or a real I/O failure.
    ArchiveFull {
        /// Object whose write was refused.
        name: String,
    },
    /// An injected crash failpoint fired (`backup.crash` or
    /// `backup.restore.crash`): the operation "died" mid-flight.
    Injected(&'static str),
    /// Archive I/O failed (directory archives only).
    Io(String),
    /// The engine refused an operation (snapshot export, record apply).
    Core(String),
    /// Archived WAL bytes failed to decode as records.
    Storage(bq_storage::StorageError),
}

impl fmt::Display for BackupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupError::TornManifest { name, detail } => {
                write!(f, "torn manifest {name}: {detail}")
            }
            BackupError::ObjectMissing { name } => {
                write!(f, "archived object {name} is missing")
            }
            BackupError::ObjectCorrupt {
                name,
                expected,
                found,
            } => write!(
                f,
                "archived object {name} corrupt: manifest checksum {expected:#010x}, computed {found:#010x}"
            ),
            BackupError::ChainGap { expected, found } => write!(
                f,
                "incremental chain gap: need a segment starting at {expected}, next starts at {found}"
            ),
            BackupError::BadOffset {
                requested,
                boundary,
            } => write!(
                f,
                "offset {requested} is not restorable; nearest record boundary is {boundary}"
            ),
            BackupError::NoFullBackup => {
                write!(f, "no full backup covers the requested offset")
            }
            BackupError::ArchiveFull { name } => {
                write!(f, "archive device full writing {name}")
            }
            BackupError::Injected(site) => {
                write!(f, "injected crash at failpoint {site}")
            }
            BackupError::Io(msg) => write!(f, "archive I/O error: {msg}"),
            BackupError::Core(msg) => write!(f, "engine error: {msg}"),
            BackupError::Storage(e) => write!(f, "archived WAL error: {e}"),
        }
    }
}

impl std::error::Error for BackupError {}

impl From<bq_core::CoreError> for BackupError {
    fn from(e: bq_core::CoreError) -> BackupError {
        BackupError::Core(e.to_string())
    }
}

impl From<bq_storage::StorageError> for BackupError {
    fn from(e: bq_storage::StorageError) -> BackupError {
        BackupError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let torn = BackupError::TornManifest {
            name: "00000001.manifest".to_string(),
            detail: "truncated at 12".to_string(),
        };
        assert!(torn.to_string().contains("00000001.manifest"));
        let corrupt = BackupError::ObjectCorrupt {
            name: "00000002.seg".to_string(),
            expected: 0xdead_beef,
            found: 0x0bad_f00d,
        }
        .to_string();
        assert!(corrupt.contains("0xdeadbeef"), "{corrupt}");
        assert!(BackupError::ChainGap {
            expected: 10,
            found: 20
        }
        .to_string()
        .contains("starting at 10"));
        assert!(BackupError::BadOffset {
            requested: 7,
            boundary: 5
        }
        .to_string()
        .contains("boundary is 5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BackupError::NoFullBackup);
    }
}
