//! Archive backends: where backup objects live.
//!
//! An archive is a flat namespace of named byte objects — manifests,
//! snapshot images, and WAL segments. [`MemArchive`] backs tests and
//! chaos sweeps (objects can be dropped or bit-flipped in place);
//! [`DirArchive`] persists to a directory for `bqd --backup-dir`.

use crate::error::BackupError;
use crate::Result;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A flat store of named backup objects.
pub trait Archive: Send + Sync + std::fmt::Debug {
    /// Write (or overwrite) an object.
    fn put(&self, name: &str, bytes: &[u8]) -> Result<()>;
    /// Read an object, `None` when absent.
    fn get(&self, name: &str) -> Result<Option<Vec<u8>>>;
    /// Does the object exist? Cheaper than [`Archive::get`] for backends
    /// that can stat without reading.
    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.get(name)?.is_some())
    }
    /// All object names, sorted.
    fn list(&self) -> Result<Vec<String>>;
    /// Remove an object; `false` when it was already absent.
    fn delete(&self, name: &str) -> Result<bool>;
}

/// In-memory archive for tests and chaos harnesses.
#[derive(Debug, Clone, Default)]
pub struct MemArchive {
    objects: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemArchive {
    /// An empty archive.
    pub fn new() -> MemArchive {
        MemArchive::default()
    }

    /// Chaos hook: flip one bit of a stored object in place, as media
    /// rot would. `true` when the object existed.
    pub fn flip_bit(&self, name: &str, byte: usize) -> bool {
        let mut objects = self.objects.lock().unwrap_or_else(|e| e.into_inner());
        match objects.get_mut(name) {
            Some(bytes) if !bytes.is_empty() => {
                let i = byte.min(bytes.len() - 1);
                bytes[i] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// Chaos hook: truncate a stored object, as a torn write would.
    pub fn truncate(&self, name: &str, len: usize) -> bool {
        let mut objects = self.objects.lock().unwrap_or_else(|e| e.into_inner());
        match objects.get_mut(name) {
            Some(bytes) => {
                bytes.truncate(len);
                true
            }
            None => false,
        }
    }
}

impl Archive for MemArchive {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.objects
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self
            .objects
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned())
    }

    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self
            .objects
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(name))
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self
            .objects
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect())
    }

    fn delete(&self, name: &str) -> Result<bool> {
        Ok(self
            .objects
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .is_some())
    }
}

/// Directory-backed archive: one file per object, written to a temp
/// name and renamed so a crashed `put` never leaves a half-written
/// object under its real name (torn *manifests* are still simulated via
/// the `backup.manifest.torn` failpoint, which truncates the bytes
/// before they reach the archive).
#[derive(Debug, Clone)]
pub struct DirArchive {
    dir: PathBuf,
}

impl DirArchive {
    /// Open (creating if needed) an archive at `dir`.
    pub fn open(dir: &Path) -> Result<DirArchive> {
        std::fs::create_dir_all(dir).map_err(|e| BackupError::Io(e.to_string()))?;
        Ok(DirArchive {
            dir: dir.to_path_buf(),
        })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Archive for DirArchive {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let tmp = self.path_of(&format!("{name}.tmp"));
        std::fs::write(&tmp, bytes).map_err(|e| BackupError::Io(e.to_string()))?;
        std::fs::rename(&tmp, self.path_of(name)).map_err(|e| BackupError::Io(e.to_string()))?;
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path_of(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(BackupError::Io(e.to_string())),
        }
    }

    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.path_of(name).exists())
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| BackupError::Io(e.to_string()))?;
        for entry in entries {
            let entry = entry.map_err(|e| BackupError::Io(e.to_string()))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.ends_with(".tmp") {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<bool> {
        match std::fs::remove_file(self.path_of(name)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(BackupError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_archive_roundtrip_list_delete() {
        let a = MemArchive::new();
        a.put("b.seg", b"beta").unwrap();
        a.put("a.seg", b"alpha").unwrap();
        assert_eq!(a.get("a.seg").unwrap().unwrap(), b"alpha");
        assert!(a.get("missing").unwrap().is_none());
        assert!(a.exists("b.seg").unwrap());
        assert_eq!(a.list().unwrap(), vec!["a.seg", "b.seg"]);
        assert!(a.delete("a.seg").unwrap());
        assert!(!a.delete("a.seg").unwrap());
    }

    #[test]
    fn mem_archive_chaos_hooks_flip_and_truncate() {
        let a = MemArchive::new();
        a.put("x", &[0u8; 8]).unwrap();
        assert!(a.flip_bit("x", 3));
        assert_eq!(a.get("x").unwrap().unwrap()[3], 1);
        assert!(a.truncate("x", 2));
        assert_eq!(a.get("x").unwrap().unwrap().len(), 2);
        assert!(!a.flip_bit("missing", 0));
    }

    #[test]
    fn dir_archive_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bq-backup-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = DirArchive::open(&dir).unwrap();
        a.put("00000001.manifest", b"m1").unwrap();
        a.put("00000001.snap", b"snap").unwrap();
        assert_eq!(a.get("00000001.snap").unwrap().unwrap(), b"snap");
        assert!(a.get("nope").unwrap().is_none());
        assert_eq!(
            a.list().unwrap(),
            vec!["00000001.manifest", "00000001.snap"]
        );
        assert!(a.delete("00000001.snap").unwrap());
        assert!(!a.exists("00000001.snap").unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
