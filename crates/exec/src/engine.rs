//! The morsel-driven executor.
//!
//! Every operator consumes and produces a [`Run`]: a schema plus a list of
//! tuple batches ("morsels"). Parallel operators spawn a scoped worker pool
//! (`std::thread::scope`) that pulls batch indices off a shared atomic
//! cursor — workers never block each other except to merge results, so a
//! slow morsel only delays its own worker.

use crate::plan::{lower, PhysPlan, SetOpKind};
use crate::stats::ExecStats;
use bq_governor::{Charger, QueryContext};
use bq_relational::algebra::expr::Expr;
use bq_relational::catalog::Database;
use bq_relational::error::RelError;
use bq_relational::{Relation, Result, Schema, Tuple, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default number of tuples per morsel.
pub const DEFAULT_MORSEL_SIZE: usize = 1024;

/// How the executor schedules operator work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded: every operator runs on the calling thread.
    Sequential,
    /// Morsel-parallel with the given worker count (clamped to ≥ 1).
    Parallel(usize),
}

impl ExecMode {
    /// Effective worker count for this mode.
    pub fn workers(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel(n) => n.max(1),
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ExecMode::Sequential => write!(f, "sequential"),
            ExecMode::Parallel(n) => write!(f, "parallel({})", n.max(1)),
        }
    }
}

/// A sensible worker count for this machine: the available hardware
/// parallelism, capped so the scoped pools stay cheap to spin up.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The batch-at-a-time physical executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    mode: ExecMode,
    morsel_size: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(ExecMode::Parallel(default_parallelism()))
    }
}

/// Intermediate result flowing between operators: a schema and its morsels.
struct Run {
    schema: Schema,
    batches: Vec<Vec<Tuple>>,
}

impl Run {
    fn rows(&self) -> u64 {
        self.batches.iter().map(|b| b.len() as u64).sum()
    }
}

impl Executor {
    /// Build an executor with the given mode and the default morsel size.
    pub fn new(mode: ExecMode) -> Executor {
        Executor {
            mode,
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }

    /// Override the morsel size (tuples per batch). Mostly for tests, which
    /// use tiny morsels to force multi-batch execution on small data.
    pub fn with_morsel_size(mut self, size: usize) -> Executor {
        assert!(size > 0, "morsel size must be positive");
        self.morsel_size = size;
        self
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Switch execution mode in place.
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Effective pool size: the requested worker count, capped near the
    /// hardware parallelism — oversubscribing a CPU-bound pool only adds
    /// scheduling overhead. The floor of 2 keeps the concurrent path (and
    /// its tests) live even on single-core machines.
    fn workers(&self) -> usize {
        match self.mode {
            ExecMode::Sequential => 1,
            ExecMode::Parallel(n) => n.max(1).min(default_parallelism().max(2)),
        }
    }

    /// Lower `expr` and execute it against `db` (ungoverned: an unlimited
    /// context whose checks cost one relaxed atomic load).
    pub fn execute(&self, expr: &Expr, db: &Database) -> Result<Relation> {
        self.execute_with_ctx(expr, db, &QueryContext::unlimited())
    }

    /// Lower, execute, and report per-operator statistics.
    pub fn execute_with_stats(&self, expr: &Expr, db: &Database) -> Result<(Relation, ExecStats)> {
        self.execute_with_stats_ctx(expr, db, &QueryContext::unlimited())
    }

    /// Lower `expr` and execute it under a governor context: deadline and
    /// cancellation are checked at every operator and every morsel
    /// boundary, and materializing operators charge the context's memory
    /// budget before they grow.
    pub fn execute_with_ctx(
        &self,
        expr: &Expr,
        db: &Database,
        ctx: &QueryContext,
    ) -> Result<Relation> {
        self.execute_plan_with_ctx(&lower(expr, db)?, db, ctx)
    }

    /// [`execute_with_ctx`](Executor::execute_with_ctx) plus statistics.
    pub fn execute_with_stats_ctx(
        &self,
        expr: &Expr,
        db: &Database,
        ctx: &QueryContext,
    ) -> Result<(Relation, ExecStats)> {
        self.execute_plan_with_stats_ctx(&lower(expr, db)?, db, ctx)
    }

    /// Execute an already-lowered plan.
    pub fn execute_plan(&self, plan: &PhysPlan, db: &Database) -> Result<Relation> {
        Ok(self.execute_plan_with_stats(plan, db)?.0)
    }

    /// Execute an already-lowered plan under a governor context.
    pub fn execute_plan_with_ctx(
        &self,
        plan: &PhysPlan,
        db: &Database,
        ctx: &QueryContext,
    ) -> Result<Relation> {
        Ok(self.execute_plan_with_stats_ctx(plan, db, ctx)?.0)
    }

    /// Execute an already-lowered plan and report statistics.
    pub fn execute_plan_with_stats(
        &self,
        plan: &PhysPlan,
        db: &Database,
    ) -> Result<(Relation, ExecStats)> {
        self.execute_plan_with_stats_ctx(plan, db, &QueryContext::unlimited())
    }

    /// Execute an already-lowered plan under a governor context, with
    /// statistics.
    pub fn execute_plan_with_stats_ctx(
        &self,
        plan: &PhysPlan,
        db: &Database,
        ctx: &QueryContext,
    ) -> Result<(Relation, ExecStats)> {
        let _span = bq_obs::span!("exec.plan", mode = self.mode, root = plan.label());
        let (run, stats) = self.exec(plan, db, ctx)?;
        let rel = Relation::from_tuples(run.schema, run.batches.into_iter().flatten())?;
        Ok((rel, stats))
    }

    fn exec(&self, plan: &PhysPlan, db: &Database, ctx: &QueryContext) -> Result<(Run, ExecStats)> {
        ctx.check()?;
        let w = self.workers();
        match plan {
            PhysPlan::SeqScan { rel, schema } => {
                let t0 = Instant::now();
                let batches = db.get(rel)?.morsels(self.morsel_size);
                // The scan clones the table into morsels; charge the copy.
                let mut charger = Charger::new(ctx);
                if charger.is_enabled() {
                    for batch in &batches {
                        for t in batch {
                            charger.charge(t.approx_bytes())?;
                        }
                    }
                    charger.flush()?;
                }
                let run = Run {
                    schema: schema.clone(),
                    batches,
                };
                let stats = self.stats_for(plan, 0, &run, t0, charger.total(), vec![]);
                Ok((run, stats))
            }
            PhysPlan::Filter { pred, input } => {
                let (child, cstats) = self.exec(input, db, ctx)?;
                let t0 = Instant::now();
                let schema = &child.schema;
                let batches = par_map(w, &child.batches, ctx, |batch| {
                    let mut out = Vec::new();
                    for t in batch {
                        if pred.eval(schema, t)? {
                            out.push(t.clone());
                        }
                    }
                    Ok(out)
                })?;
                let run = Run {
                    schema: child.schema.clone(),
                    batches: drop_empty(batches),
                };
                let stats = self.stats_for(plan, child.rows(), &run, t0, 0, vec![cstats]);
                Ok((run, stats))
            }
            PhysPlan::Project {
                indices,
                schema,
                input,
                ..
            } => {
                let (child, cstats) = self.exec(input, db, ctx)?;
                let t0 = Instant::now();
                let batches = par_map(w, &child.batches, ctx, |batch| {
                    Ok(batch.iter().map(|t| t.project(indices)).collect())
                })?;
                let run = Run {
                    schema: schema.clone(),
                    batches,
                };
                let stats = self.stats_for(plan, child.rows(), &run, t0, 0, vec![cstats]);
                Ok((run, stats))
            }
            PhysPlan::Reschema { schema, input } => {
                let (child, cstats) = self.exec(input, db, ctx)?;
                let t0 = Instant::now();
                let run = Run {
                    schema: schema.clone(),
                    batches: child.batches,
                };
                let stats = self.stats_for(plan, run.rows(), &run, t0, 0, vec![cstats]);
                Ok((run, stats))
            }
            PhysPlan::HashDistinct { input } => {
                let (child, cstats) = self.exec(input, db, ctx)?;
                let t0 = Instant::now();
                let rows_in = child.rows();
                let parts = partition_count(w, rows_in);
                // Build side: the partition copy is charged inside
                // par_partition.
                let (buckets, mem) = par_partition(w, parts, &child.batches, None, ctx)?;
                let batches = par_index_map(w, parts, ctx, |p| {
                    let mut seen = HashSet::with_capacity(buckets[p].len());
                    let mut out = Vec::new();
                    for t in &buckets[p] {
                        if seen.insert(t) {
                            out.push(t.clone());
                        }
                    }
                    Ok(out)
                })?;
                let run = Run {
                    schema: child.schema.clone(),
                    batches: drop_empty(batches),
                };
                let stats = self.stats_for(plan, rows_in, &run, t0, mem, vec![cstats]);
                Ok((run, stats))
            }
            PhysPlan::PartitionedHashJoin {
                l_key,
                r_key,
                r_rest,
                schema,
                left,
                right,
                ..
            } => {
                let (lrun, lstats) = self.exec(left, db, ctx)?;
                let (rrun, rstats) = self.exec(right, db, ctx)?;
                let t0 = Instant::now();
                let rows_in = lrun.rows() + rrun.rows();
                let parts = partition_count(w, lrun.rows().max(rrun.rows()));

                // Build phase: partition the right input on its key and hash
                // each partition. The build-side copy is charged against the
                // memory budget inside par_partition.
                let tb = Instant::now();
                let (rparts, build_mem) = par_partition(w, parts, &rrun.batches, Some(r_key), ctx)?;
                let tables: Vec<HashMap<Vec<Value>, Vec<&Tuple>>> =
                    par_index_map(w, parts, ctx, |p| {
                        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> =
                            HashMap::with_capacity(rparts[p].len());
                        for t in &rparts[p] {
                            let key: Vec<Value> = r_key.iter().map(|&i| t.get(i).clone()).collect();
                            table.entry(key).or_default().push(t);
                        }
                        Ok(table)
                    })?;
                let build = tb.elapsed();

                // Probe phase: partition the left input the same way, then
                // probe each partition against its table. Output can fan out
                // on skewed keys, so it is charged too.
                let tp = Instant::now();
                let (lparts, probe_mem) = par_partition(w, parts, &lrun.batches, Some(l_key), ctx)?;
                let out_mem = AtomicU64::new(0);
                let batches = par_index_map(w, parts, ctx, |p| {
                    let mut charger = Charger::new(ctx);
                    let mut out = Vec::new();
                    for lt in &lparts[p] {
                        let key: Vec<Value> = l_key.iter().map(|&i| lt.get(i).clone()).collect();
                        if let Some(matches) = tables[p].get(&key) {
                            for rt in matches {
                                let joined = lt.concat(&rt.project(r_rest));
                                if charger.is_enabled() {
                                    charger.charge(joined.approx_bytes())?;
                                }
                                out.push(joined);
                            }
                        }
                    }
                    charger.flush()?;
                    // relaxed: per-partition byte tally for stats only.
                    out_mem.fetch_add(charger.total(), Ordering::Relaxed);
                    Ok(out)
                })?;
                let probe = tp.elapsed();

                let run = Run {
                    schema: schema.clone(),
                    batches: drop_empty(batches),
                };
                let mem = build_mem + probe_mem + out_mem.into_inner();
                let mut stats = self.stats_for(plan, rows_in, &run, t0, mem, vec![lstats, rstats]);
                stats.build = Some(build);
                stats.probe = Some(probe);
                Ok((run, stats))
            }
            PhysPlan::Product {
                schema,
                left,
                right,
            } => {
                let (lrun, lstats) = self.exec(left, db, ctx)?;
                let (rrun, rstats) = self.exec(right, db, ctx)?;
                let t0 = Instant::now();
                let rows_in = lrun.rows() + rrun.rows();
                let rall: Vec<&Tuple> = rrun.batches.iter().flatten().collect();
                // Quadratic output: every produced tuple is charged so a
                // runaway cross product dies at the budget, not the
                // allocator.
                let out_mem = AtomicU64::new(0);
                let batches = par_map(w, &lrun.batches, ctx, |batch| {
                    let mut charger = Charger::new(ctx);
                    let mut out = Vec::with_capacity(batch.len() * rall.len());
                    for lt in batch {
                        ctx.check()?;
                        for rt in &rall {
                            let t = lt.concat(rt);
                            if charger.is_enabled() {
                                charger.charge(t.approx_bytes())?;
                            }
                            out.push(t);
                        }
                    }
                    charger.flush()?;
                    // relaxed: per-batch byte tally for stats only.
                    out_mem.fetch_add(charger.total(), Ordering::Relaxed);
                    Ok(out)
                })?;
                let run = Run {
                    schema: schema.clone(),
                    batches: drop_empty(batches),
                };
                let mem = out_mem.into_inner();
                let stats = self.stats_for(plan, rows_in, &run, t0, mem, vec![lstats, rstats]);
                Ok((run, stats))
            }
            PhysPlan::Union { left, right } => {
                let (lrun, lstats) = self.exec(left, db, ctx)?;
                let (rrun, rstats) = self.exec(right, db, ctx)?;
                let t0 = Instant::now();
                let rows_in = lrun.rows() + rrun.rows();
                let mut batches = lrun.batches;
                batches.extend(rrun.batches);
                // Keep the left schema: union compatibility is positional on
                // types, so right tuples conform.
                let run = Run {
                    schema: lrun.schema,
                    batches,
                };
                let stats = self.stats_for(plan, rows_in, &run, t0, 0, vec![lstats, rstats]);
                Ok((run, stats))
            }
            PhysPlan::HashSetOp { op, left, right } => {
                let (lrun, lstats) = self.exec(left, db, ctx)?;
                let (rrun, rstats) = self.exec(right, db, ctx)?;
                let t0 = Instant::now();
                let rows_in = lrun.rows() + rrun.rows();
                let parts = partition_count(w, lrun.rows().max(rrun.rows()));
                let (lparts, lmem) = par_partition(w, parts, &lrun.batches, None, ctx)?;
                let (rparts, rmem) = par_partition(w, parts, &rrun.batches, None, ctx)?;
                let keep_present = *op == SetOpKind::Intersection;
                let batches = par_index_map(w, parts, ctx, |p| {
                    let members: HashSet<&Tuple> = rparts[p].iter().collect();
                    Ok(lparts[p]
                        .iter()
                        .filter(|t| members.contains(*t) == keep_present)
                        .cloned()
                        .collect())
                })?;
                let run = Run {
                    schema: lrun.schema,
                    batches: drop_empty(batches),
                };
                let stats =
                    self.stats_for(plan, rows_in, &run, t0, lmem + rmem, vec![lstats, rstats]);
                Ok((run, stats))
            }
        }
    }

    fn stats_for(
        &self,
        plan: &PhysPlan,
        rows_in: u64,
        run: &Run,
        started: Instant,
        mem_bytes: u64,
        children: Vec<ExecStats>,
    ) -> ExecStats {
        bq_obs::counter!("bq_exec_operators_total", "physical operators executed").inc();
        bq_obs::counter!("bq_exec_rows_total", "rows produced by physical operators")
            .add(run.rows());
        bq_obs::counter!(
            "bq_exec_batches_total",
            "batches produced by physical operators"
        )
        .add(run.batches.len() as u64);
        ExecStats {
            op: plan.label(),
            rows_in,
            rows_out: run.rows(),
            batches_out: run.batches.len() as u64,
            elapsed: started.elapsed(),
            build: None,
            probe: None,
            mem_bytes,
            children,
        }
    }
}

fn drop_empty(batches: Vec<Vec<Tuple>>) -> Vec<Vec<Tuple>> {
    batches.into_iter().filter(|b| !b.is_empty()).collect()
}

/// How many hash partitions to use: one per worker, but never more than the
/// row count (so tiny inputs don't fan out into empty partitions).
fn partition_count(workers: usize, rows: u64) -> usize {
    workers.clamp(1, (rows.max(1)) as usize)
}

/// Map `f` over every batch, morsel-driven: workers pull batch indices off a
/// shared cursor. Output order matches input order; the first error wins.
/// The governor context is checked once per morsel on both paths.
fn par_map<F>(
    workers: usize,
    batches: &[Vec<Tuple>],
    ctx: &QueryContext,
    f: F,
) -> Result<Vec<Vec<Tuple>>>
where
    F: Fn(&[Tuple]) -> Result<Vec<Tuple>> + Sync,
{
    if workers <= 1 || batches.len() <= 1 {
        return batches
            .iter()
            .map(|b| {
                ctx.check()?;
                f(b)
            })
            .collect();
    }
    let pairs = par_pull(workers, batches.len(), ctx, |i| f(&batches[i]))?;
    Ok(pairs)
}

/// Compute `f(0..n)` with a worker pool pulling indices off a shared atomic
/// cursor, returning results in index order. The governor context is
/// checked once per index on both paths.
fn par_index_map<T, F>(workers: usize, n: usize, ctx: &QueryContext, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n)
            .map(|i| {
                ctx.check()?;
                f(i)
            })
            .collect();
    }
    par_pull(workers, n, ctx, f)
}

/// Failpoint `exec.morsel.panic`: a worker panics mid-morsel. The panic is
/// caught at the morsel boundary ([`std::panic::catch_unwind`]); the pool
/// drains, the partial output is discarded, and the whole operator re-runs
/// sequentially on the calling thread — graceful degradation instead of a
/// poisoned scope tearing down the query.
fn par_pull<T, F>(workers: usize, n: usize, ctx: &QueryContext, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    bq_obs::histogram!(
        "bq_exec_morsel_queue_depth",
        "morsels queued per parallel operator",
        bq_obs::SIZE_BUCKETS
    )
    .observe(n as u64);
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let out: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let first_err: Mutex<Option<RelError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| {
                let mut busy = std::time::Duration::ZERO;
                loop {
                    // relaxed: advisory stop flag — a stale read costs at
                    // most one extra morsel; the scope join synchronises.
                    if panicked.load(Ordering::Relaxed)
                        || first_err
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .is_some()
                    {
                        break;
                    }
                    // Governance check at every morsel boundary: a
                    // cancelled or expired context stops the whole pool
                    // within one morsel's worth of work.
                    if let Err(g) = ctx.check() {
                        first_err
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .get_or_insert(RelError::from(g));
                        break;
                    }
                    // relaxed: the cursor only hands out unique indices;
                    // results are published via the out mutex, not the
                    // counter.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        bq_faults::fail_point!("exec.morsel.panic");
                        f(i)
                    }));
                    busy += t0.elapsed();
                    match result {
                        Ok(Ok(v)) => out.lock().unwrap_or_else(|e| e.into_inner()).push((i, v)),
                        Ok(Err(e)) => {
                            first_err
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get_or_insert(e);
                            break;
                        }
                        Err(_payload) => {
                            // relaxed: see the stop-flag load above; the
                            // authoritative read is into_inner() after join.
                            panicked.store(true, Ordering::Relaxed);
                            bq_obs::counter!(
                                "bq_exec_worker_panics_total",
                                "worker panics caught at morsel boundaries"
                            )
                            .inc();
                            break;
                        }
                    }
                }
                bq_obs::histogram!(
                    "bq_exec_worker_busy_us",
                    "per-worker busy time per parallel operator (us)",
                    bq_obs::LATENCY_BUCKETS_US
                )
                .observe(busy.as_micros() as u64);
            });
        }
    });
    if panicked.into_inner() {
        // Discard the partial parallel output and degrade to a sequential
        // re-run. The failpoint is not re-armed here: a one-shot (nth=k)
        // injection stays caught, while a genuinely deterministic panic in
        // `f` will surface on the calling thread, with its real backtrace.
        bq_obs::counter!(
            "bq_exec_seq_fallbacks_total",
            "parallel operators re-run sequentially after a worker panic"
        )
        .inc();
        return (0..n)
            .map(|i| {
                ctx.check()?;
                f(i)
            })
            .collect();
    }
    if let Some(e) = first_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }
    let mut pairs = out.into_inner().unwrap_or_else(|e| e.into_inner());
    pairs.sort_unstable_by_key(|(i, _)| *i);
    Ok(pairs.into_iter().map(|(_, v)| v).collect())
}

/// Hash-partition all tuples into `parts` buckets, in parallel over the
/// input batches. `key` selects the hashed positions; `None` hashes the
/// whole tuple (distinct / set ops). Equal keys always land in the same
/// bucket, so each bucket can then be processed independently.
///
/// This is where build sides materialize a full copy of their input, so
/// every cloned tuple is charged against `ctx`'s memory budget and the
/// context is checked at every morsel boundary. Returns the buckets plus
/// the bytes charged (zero without a budget), so operators can attribute
/// the copy in their stats.
fn par_partition(
    workers: usize,
    parts: usize,
    batches: &[Vec<Tuple>],
    key: Option<&[usize]>,
    ctx: &QueryContext,
) -> Result<(Vec<Vec<Tuple>>, u64)> {
    let bucket_of = |t: &Tuple| -> usize {
        let mut h = DefaultHasher::new();
        match key {
            Some(idx) => {
                for &i in idx {
                    t.get(i).hash(&mut h);
                }
            }
            None => t.hash(&mut h),
        }
        (h.finish() % parts as u64) as usize
    };
    if workers <= 1 || batches.len() <= 1 {
        let mut charger = Charger::new(ctx);
        let mut buckets = vec![Vec::new(); parts];
        for batch in batches {
            ctx.check()?;
            for t in batch {
                if charger.is_enabled() {
                    charger.charge(t.approx_bytes())?;
                }
                buckets[bucket_of(t)].push(t.clone());
            }
        }
        charger.flush()?;
        return Ok((buckets, charger.total()));
    }
    let charged = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    let first_err: Mutex<Option<RelError>> = Mutex::new(None);
    let global: Mutex<Vec<Vec<Tuple>>> = Mutex::new(vec![Vec::new(); parts]);
    std::thread::scope(|s| {
        for _ in 0..workers.min(batches.len()) {
            s.spawn(|| {
                let mut local = vec![Vec::new(); parts];
                let mut charger = Charger::new(ctx);
                'pull: loop {
                    if first_err
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .is_some()
                    {
                        break;
                    }
                    // Governance check per morsel, like par_pull.
                    if let Err(g) = ctx.check() {
                        first_err
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .get_or_insert(RelError::from(g));
                        break;
                    }
                    // relaxed: unique-index hand-out, as in par_pull; the
                    // global mutex is the publication point.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= batches.len() {
                        break;
                    }
                    for t in &batches[i] {
                        if charger.is_enabled() {
                            if let Err(g) = charger.charge(t.approx_bytes()) {
                                first_err
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .get_or_insert(RelError::from(g));
                                break 'pull;
                            }
                        }
                        local[bucket_of(t)].push(t.clone());
                    }
                }
                if let Err(g) = charger.flush() {
                    first_err
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get_or_insert(RelError::from(g));
                }
                // relaxed: per-worker byte tally for stats only.
                charged.fetch_add(charger.total(), Ordering::Relaxed);
                let mut global = global.lock().unwrap_or_else(|e| e.into_inner());
                for (bucket, tuples) in global.iter_mut().zip(local) {
                    bucket.extend(tuples);
                }
            });
        }
    });
    if let Some(e) = first_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }
    Ok((
        global.into_inner().unwrap_or_else(|e| e.into_inner()),
        charged.into_inner(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bq_relational::algebra::eval::eval;
    use bq_relational::algebra::expr::Predicate;
    use bq_relational::tup;
    use bq_relational::value::Type;

    fn emp_db(n: i64) -> Database {
        let mut db = Database::new();
        let mut emp =
            Relation::with_schema(&[("id", Type::Int), ("dept", Type::Int), ("sal", Type::Int)])
                .unwrap();
        for i in 0..n {
            emp.insert(tup![i, i % 10, 50 + i % 60]).unwrap();
        }
        db.add("emp", emp);
        let mut dept = Relation::with_schema(&[("dept", Type::Int), ("bldg", Type::Int)]).unwrap();
        for d in 0..10i64 {
            dept.insert(tup![d, d % 3]).unwrap();
        }
        db.add("dept", dept);
        db
    }

    fn modes() -> Vec<Executor> {
        vec![
            Executor::new(ExecMode::Sequential).with_morsel_size(7),
            Executor::new(ExecMode::Parallel(1)).with_morsel_size(7),
            Executor::new(ExecMode::Parallel(4)).with_morsel_size(7),
        ]
    }

    fn check(expr: &Expr, db: &Database) {
        let expected = eval(expr, db).unwrap();
        for ex in modes() {
            let got = ex.execute(expr, db).unwrap();
            assert_eq!(got, expected, "mode {:?} on {expr}", ex.mode());
        }
    }

    #[test]
    fn injected_worker_panic_degrades_to_sequential_run() {
        let site = "exec.morsel.panic";
        let db = emp_db(200);
        let expr = Expr::rel("emp").select(Predicate::eq_const("dept", 3i64));
        let expected = eval(&expr, &db).unwrap();
        // Global scope: the panic must land on a pool worker thread, not
        // the configuring thread. Nth(1) fires exactly once, so the
        // sequential fallback runs clean; results stay correct either way.
        bq_faults::configure(
            site,
            bq_faults::Policy::new(bq_faults::Action::Panic, bq_faults::Trigger::Nth(1)),
        );
        let ex = Executor::new(ExecMode::Parallel(4)).with_morsel_size(7);
        let got = ex.execute(&expr, &db);
        let fires = bq_faults::fire_count(site);
        bq_faults::off(site);
        assert_eq!(got.unwrap(), expected, "fallback result matches oracle");
        assert_eq!(fires, 1, "the panic was injected");
    }

    #[test]
    fn scan_filter_project_match_oracle() {
        let db = emp_db(100);
        check(&Expr::rel("emp"), &db);
        check(
            &Expr::rel("emp").select(Predicate::eq_const("dept", 3i64)),
            &db,
        );
        check(&Expr::rel("emp").project(&["dept"]), &db);
    }

    #[test]
    fn join_and_product_match_oracle() {
        let db = emp_db(100);
        check(&Expr::rel("emp").natural_join(Expr::rel("dept")), &db);
        check(
            &Expr::rel("emp")
                .qualify("e")
                .product(Expr::rel("dept").qualify("d")),
            &db,
        );
    }

    #[test]
    fn set_ops_match_oracle() {
        let db = emp_db(60);
        let evens = Expr::rel("emp").select(Predicate::eq_const("dept", 2i64));
        let low = Expr::rel("emp").select(Predicate::eq_const("sal", 52i64));
        check(&evens.clone().union(low.clone()), &db);
        check(&evens.clone().difference(low.clone()), &db);
        check(&evens.intersection(low), &db);
    }

    #[test]
    fn division_matches_oracle() {
        let mut db = Database::new();
        let mut takes =
            Relation::with_schema(&[("student", Type::Int), ("course", Type::Int)]).unwrap();
        for s in 0..20i64 {
            for c in 0..=(s % 4) {
                takes.insert(tup![s, c]).unwrap();
            }
        }
        db.add("takes", takes);
        let mut required = Relation::with_schema(&[("course", Type::Int)]).unwrap();
        required.insert(tup![0i64]).unwrap();
        required.insert(tup![1i64]).unwrap();
        db.add("required", required);
        check(&Expr::rel("takes").division(Expr::rel("required")), &db);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut db = Database::new();
        db.add("e", Relation::with_schema(&[("x", Type::Int)]).unwrap());
        check(&Expr::rel("e"), &db);
        check(&Expr::rel("e").select(Predicate::eq_const("x", 1i64)), &db);
        check(&Expr::rel("e").union(Expr::rel("e")), &db);
        check(&Expr::rel("e").difference(Expr::rel("e")), &db);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let db = emp_db(50);
        // Predicate referencing a column that exists at lowering time but
        // not at eval time can't happen here, so force a runtime error via a
        // predicate over a dropped attribute after projection… which lowering
        // already rejects. Instead: unknown relation and unknown column both
        // error, matching the oracle.
        for ex in modes() {
            assert!(ex.execute(&Expr::rel("ghost"), &db).is_err());
            assert!(ex
                .execute(&Expr::rel("emp").project(&["ghost"]), &db)
                .is_err());
        }
    }

    #[test]
    fn stats_describe_the_plan() {
        let db = emp_db(100);
        let ex = Executor::new(ExecMode::Parallel(4)).with_morsel_size(16);
        let expr = Expr::rel("emp")
            .natural_join(Expr::rel("dept"))
            .select(Predicate::eq_const("bldg", 1i64))
            .project(&["id"]);
        let (rel, stats) = ex.execute_with_stats(&expr, &db).unwrap();
        assert_eq!(rel, eval(&expr, &db).unwrap());
        // Root is the distinct over the projection.
        assert_eq!(stats.op, "HashDistinct");
        assert_eq!(stats.rows_out, rel.len() as u64);
        assert_eq!(stats.operators(), 6, "distinct+project+filter+join+2 scans");
        let join = &stats.children[0].children[0].children[0];
        assert!(join.op.starts_with("PartitionedHashJoin"), "{}", join.op);
        assert!(join.build.is_some() && join.probe.is_some());
        assert_eq!(join.rows_in, 110);
        assert_eq!(join.rows_out, 100);
        let rendered = stats.render();
        assert!(rendered.contains("SeqScan [emp]"), "{rendered}");
    }

    #[test]
    fn budgeted_runs_attribute_memory_to_operators() {
        let db = emp_db(100);
        let expr = Expr::rel("emp")
            .natural_join(Expr::rel("dept"))
            .project(&["id"]);
        for ex in modes() {
            // No budget: sizes are never estimated, so mem stays zero.
            let (_, stats) = ex.execute_with_stats(&expr, &db).unwrap();
            assert_eq!(stats.total_mem_bytes(), 0, "ungoverned run charges nothing");

            let ctx = QueryContext::unlimited().with_memory_budget(64 * 1024 * 1024);
            let (_, stats) = ex.execute_with_stats_ctx(&expr, &db, &ctx).unwrap();
            let join = &stats.children[0].children[0];
            assert!(join.op.starts_with("PartitionedHashJoin"), "{}", join.op);
            assert!(join.mem_bytes > 0, "join charges build+probe copies");
            let scans = [&join.children[0], &join.children[1]];
            assert!(scans.iter().all(|s| s.mem_bytes > 0), "scans charge clones");
            // Every charger in the executor reports into the stats tree, so
            // the tree total is exactly what the ledger saw reserved.
            assert_eq!(stats.total_mem_bytes(), ctx.budget().unwrap().used());
            assert!(stats.render().contains("mem="), "{}", stats.render());
        }
    }

    #[test]
    fn morsel_boundaries_do_not_change_results() {
        let db = emp_db(97);
        let expr = Expr::rel("emp").natural_join(Expr::rel("dept"));
        let expected = eval(&expr, &db).unwrap();
        for size in [1, 2, 13, 97, 1000] {
            let ex = Executor::new(ExecMode::Parallel(3)).with_morsel_size(size);
            assert_eq!(ex.execute(&expr, &db).unwrap(), expected, "morsel {size}");
        }
    }
}
