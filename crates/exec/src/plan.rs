//! Physical plans and the logical → physical lowering.
//!
//! Lowering resolves every name against the database's schemas once, up
//! front: projections carry column indices, joins carry key positions, and
//! every node knows its output [`Schema`]. Execution then never touches
//! the catalog again except to read base relations.

use bq_relational::algebra::expr::{Expr, Predicate};
use bq_relational::catalog::Database;
use bq_relational::error::RelError;
use bq_relational::schema::Schema;
use bq_relational::Result;
use std::fmt;

/// Which partitioned hash set-operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// Keep left tuples absent from the right input (−).
    Difference,
    /// Keep left tuples present in the right input (∩).
    Intersection,
}

impl fmt::Display for SetOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetOpKind::Difference => write!(f, "HashDifference"),
            SetOpKind::Intersection => write!(f, "HashIntersect"),
        }
    }
}

/// A physical operator tree.
///
/// Schemas are resolved at lowering time; [`PhysPlan::schema`] is
/// therefore a cheap lookup, not an inference pass.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Scan a named base relation in morsels.
    SeqScan {
        /// Base relation name.
        rel: String,
        /// The relation's schema.
        schema: Schema,
    },
    /// Morsel-parallel selection.
    Filter {
        /// Filter predicate (evaluated per tuple).
        pred: Predicate,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Morsel-parallel projection. Produces a bag; lowering always places
    /// a [`PhysPlan::HashDistinct`] above it to restore set semantics.
    Project {
        /// Output column names, in order.
        cols: Vec<String>,
        /// Input positions of those columns.
        indices: Vec<usize>,
        /// Output schema.
        schema: Schema,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Relabel attributes (ρ / tuple-variable qualification): no tuple
    /// movement, just a new schema.
    Reschema {
        /// The relabelled schema.
        schema: Schema,
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Hash-partitioned duplicate elimination.
    HashDistinct {
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Build/probe hash join, hash-partitioned on the join key across the
    /// worker count. Degenerates to [`PhysPlan::Product`] at lowering when
    /// there are no common attributes.
    PartitionedHashJoin {
        /// Join-key positions in the left input.
        l_key: Vec<usize>,
        /// Join-key positions in the right input.
        r_key: Vec<usize>,
        /// Right-side non-key positions appended to the output, in order.
        r_rest: Vec<usize>,
        /// Names of the join attributes (for display).
        on: Vec<String>,
        /// Output schema (left schema ++ right rest).
        schema: Schema,
        /// Left (probe) input.
        left: Box<PhysPlan>,
        /// Right (build) input.
        right: Box<PhysPlan>,
    },
    /// Cartesian product, parallel over left morsels.
    Product {
        /// Output schema (left ++ right).
        schema: Schema,
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
    },
    /// Bag union of union-compatible inputs (concatenation); lowering
    /// always places a [`PhysPlan::HashDistinct`] above it.
    Union {
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
    },
    /// Hash-partitioned difference / intersection.
    HashSetOp {
        /// Which set operation.
        op: SetOpKind,
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
    },
}

impl PhysPlan {
    /// The operator's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            PhysPlan::SeqScan { schema, .. }
            | PhysPlan::Project { schema, .. }
            | PhysPlan::Reschema { schema, .. }
            | PhysPlan::PartitionedHashJoin { schema, .. }
            | PhysPlan::Product { schema, .. } => schema,
            PhysPlan::Filter { input, .. } | PhysPlan::HashDistinct { input } => input.schema(),
            PhysPlan::Union { left, .. } | PhysPlan::HashSetOp { left, .. } => left.schema(),
        }
    }

    /// Short operator label for EXPLAIN output.
    pub fn label(&self) -> String {
        match self {
            PhysPlan::SeqScan { rel, .. } => format!("SeqScan [{rel}]"),
            PhysPlan::Filter { pred, .. } => format!("Filter [{pred}]"),
            PhysPlan::Project { cols, .. } => format!("Project [{}]", cols.join(", ")),
            PhysPlan::Reschema { schema, .. } => format!("Reschema [{schema}]"),
            PhysPlan::HashDistinct { .. } => "HashDistinct".to_string(),
            PhysPlan::PartitionedHashJoin { on, .. } => {
                format!("PartitionedHashJoin [{}]", on.join(", "))
            }
            PhysPlan::Product { .. } => "Product".to_string(),
            PhysPlan::Union { .. } => "UnionAll".to_string(),
            PhysPlan::HashSetOp { op, .. } => op.to_string(),
        }
    }

    /// Children, in execution order.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match self {
            PhysPlan::SeqScan { .. } => vec![],
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Reschema { input, .. }
            | PhysPlan::HashDistinct { input } => vec![input],
            PhysPlan::PartitionedHashJoin { left, right, .. }
            | PhysPlan::Product { left, right, .. }
            | PhysPlan::Union { left, right }
            | PhysPlan::HashSetOp { left, right, .. } => vec![left, right],
        }
    }

    /// Number of operator nodes in the plan.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Render the plan as an indented tree (without runtime stats).
    pub fn render(&self) -> String {
        fn walk(node: &PhysPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&node.label());
            out.push('\n');
            for c in node.children() {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

/// Lower a logical algebra expression to a physical plan against `db`.
///
/// Fails exactly when the recursive oracle would fail on shape errors:
/// unknown relations, unknown projection columns, product name clashes,
/// union-incompatible set operations, and malformed divisions.
pub fn lower(expr: &Expr, db: &Database) -> Result<PhysPlan> {
    match expr {
        Expr::Rel(name) => Ok(PhysPlan::SeqScan {
            rel: name.clone(),
            schema: db.get(name)?.schema().clone(),
        }),
        Expr::Select { pred, input } => Ok(PhysPlan::Filter {
            pred: pred.clone(),
            input: Box::new(lower(input, db)?),
        }),
        Expr::Project { cols, input } => {
            let child = lower(input, db)?;
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            let schema = child.schema().project(&names)?;
            let indices: Vec<usize> = cols
                .iter()
                .map(|c| child.schema().require(c))
                .collect::<Result<_>>()?;
            Ok(PhysPlan::HashDistinct {
                input: Box::new(PhysPlan::Project {
                    cols: cols.clone(),
                    indices,
                    schema,
                    input: Box::new(child),
                }),
            })
        }
        Expr::Rename { from, to, input } => {
            let child = lower(input, db)?;
            let schema = child.schema().rename(from, to)?;
            Ok(PhysPlan::Reschema {
                schema,
                input: Box::new(child),
            })
        }
        Expr::Qualify { var, input } => {
            let child = lower(input, db)?;
            let schema = child.schema().qualify(var);
            Ok(PhysPlan::Reschema {
                schema,
                input: Box::new(child),
            })
        }
        Expr::Product(l, r) => {
            let left = lower(l, db)?;
            let right = lower(r, db)?;
            let schema = left.schema().product(right.schema())?;
            Ok(PhysPlan::Product {
                schema,
                left: Box::new(left),
                right: Box::new(right),
            })
        }
        Expr::NaturalJoin(l, r) => {
            let left = lower(l, db)?;
            let right = lower(r, db)?;
            let common = left.schema().common_attrs(right.schema());
            if common.is_empty() {
                // Classical semantics: join without shared attributes is
                // the cartesian product.
                let schema = left.schema().product(right.schema())?;
                return Ok(PhysPlan::Product {
                    schema,
                    left: Box::new(left),
                    right: Box::new(right),
                });
            }
            let l_key: Vec<usize> = common
                .iter()
                .map(|c| left.schema().require(c))
                .collect::<Result<_>>()?;
            let r_key: Vec<usize> = common
                .iter()
                .map(|c| right.schema().require(c))
                .collect::<Result<_>>()?;
            let r_rest: Vec<usize> = (0..right.schema().arity())
                .filter(|i| !r_key.contains(i))
                .collect();
            let mut schema = left.schema().clone();
            for &i in &r_rest {
                let a = &right.schema().attrs()[i];
                schema.push(&a.name, a.ty)?;
            }
            Ok(PhysPlan::PartitionedHashJoin {
                l_key,
                r_key,
                r_rest,
                on: common,
                schema,
                left: Box::new(left),
                right: Box::new(right),
            })
        }
        Expr::Union(l, r) => {
            let left = lower(l, db)?;
            let right = lower(r, db)?;
            check_compatible(&left, &right, "union")?;
            Ok(PhysPlan::HashDistinct {
                input: Box::new(PhysPlan::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                }),
            })
        }
        Expr::Difference(l, r) => lower_setop(l, r, SetOpKind::Difference, "difference", db),
        Expr::Intersection(l, r) => lower_setop(l, r, SetOpKind::Intersection, "intersection", db),
        Expr::Division(l, r) => {
            // Lower through the division's defining identity
            //   L ÷ R  =  π_D(L) − π_D((π_D(L) × R) − π_{D∪R}(L))
            // where D is the quotient attribute set — the same identity the
            // oracle's tests pin down, so the physical engine needs no
            // bespoke division operator.
            let ls = l.schema(db)?;
            let rs = r.schema(db)?;
            let d_cols: Vec<String> = ls
                .attrs()
                .iter()
                .filter(|a| rs.index_of(&a.name).is_none())
                .map(|a| a.name.clone())
                .collect();
            if d_cols.is_empty() || d_cols.len() == ls.arity() {
                return Err(RelError::SchemaMismatch(format!(
                    "division needs ∅ ⊂ divisor attrs ⊂ dividend attrs: {ls} ÷ {rs}"
                )));
            }
            for name in rs.names() {
                // Divisor attributes must all appear in the dividend.
                ls.require(name)?;
            }
            let d_refs: Vec<&str> = d_cols.iter().map(String::as_str).collect();
            let dr_cols: Vec<&str> = d_refs
                .iter()
                .copied()
                .chain(rs.names().iter().copied())
                .collect();
            let pi_d = l.as_ref().clone().project(&d_refs);
            let identity = pi_d.clone().difference(
                pi_d.product(r.as_ref().clone())
                    .difference(l.as_ref().clone().project(&dr_cols))
                    .project(&d_refs),
            );
            lower(&identity, db)
        }
    }
}

fn lower_setop(l: &Expr, r: &Expr, op: SetOpKind, name: &str, db: &Database) -> Result<PhysPlan> {
    let left = lower(l, db)?;
    let right = lower(r, db)?;
    check_compatible(&left, &right, name)?;
    Ok(PhysPlan::HashSetOp {
        op,
        left: Box::new(left),
        right: Box::new(right),
    })
}

fn check_compatible(l: &PhysPlan, r: &PhysPlan, op: &str) -> Result<()> {
    if !l.schema().union_compatible(r.schema()) {
        return Err(RelError::NotUnionCompatible(format!(
            "{op}: {} vs {}",
            l.schema(),
            r.schema()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bq_relational::tup;
    use bq_relational::value::Type;
    use bq_relational::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::with_schema(&[("a", Type::Int), ("b", Type::Str)]).unwrap();
        r.insert(tup![1i64, "x"]).unwrap();
        db.add("r", r);
        db.add(
            "s",
            Relation::with_schema(&[("b", Type::Str), ("c", Type::Int)]).unwrap(),
        );
        db
    }

    #[test]
    fn scan_filter_project_lowering() {
        let e = Expr::rel("r")
            .select(Predicate::eq_const("a", 1i64))
            .project(&["b"]);
        let p = lower(&e, &db()).unwrap();
        assert!(matches!(p, PhysPlan::HashDistinct { .. }));
        assert_eq!(p.schema().names(), vec!["b"]);
        assert_eq!(p.size(), 4, "distinct + project + filter + scan");
        let rendered = p.render();
        assert!(rendered.contains("SeqScan [r]"), "{rendered}");
        assert!(rendered.contains("Filter [a = 1]"), "{rendered}");
    }

    #[test]
    fn join_lowering_resolves_keys() {
        let p = lower(&Expr::rel("r").natural_join(Expr::rel("s")), &db()).unwrap();
        match &p {
            PhysPlan::PartitionedHashJoin {
                l_key,
                r_key,
                r_rest,
                on,
                schema,
                ..
            } => {
                assert_eq!(on, &vec!["b".to_string()]);
                assert_eq!(
                    (l_key.as_slice(), r_key.as_slice()),
                    (&[1usize][..], &[0usize][..])
                );
                assert_eq!(r_rest, &vec![1]);
                assert_eq!(schema.names(), vec!["a", "b", "c"]);
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn join_without_common_attrs_lowers_to_product() {
        let mut db = Database::new();
        db.add("a", Relation::with_schema(&[("x", Type::Int)]).unwrap());
        db.add("b", Relation::with_schema(&[("y", Type::Int)]).unwrap());
        let p = lower(&Expr::rel("a").natural_join(Expr::rel("b")), &db).unwrap();
        assert!(matches!(p, PhysPlan::Product { .. }));
    }

    #[test]
    fn shape_errors_surface_at_lowering() {
        let db = db();
        assert!(lower(&Expr::rel("nope"), &db).is_err());
        assert!(lower(&Expr::rel("r").project(&["zzz"]), &db).is_err());
        assert!(lower(&Expr::rel("r").union(Expr::rel("s")), &db).is_err());
        assert!(lower(&Expr::rel("r").product(Expr::rel("r")), &db).is_err());
    }

    #[test]
    fn division_lowers_through_identity() {
        let mut db = Database::new();
        db.add(
            "takes",
            Relation::with_schema(&[("student", Type::Str), ("course", Type::Str)]).unwrap(),
        );
        db.add(
            "required",
            Relation::with_schema(&[("course", Type::Str)]).unwrap(),
        );
        let p = lower(&Expr::rel("takes").division(Expr::rel("required")), &db).unwrap();
        assert_eq!(p.schema().names(), vec!["student"]);
        // Bad shapes rejected.
        assert!(lower(&Expr::rel("required").division(Expr::rel("takes")), &db).is_err());
        assert!(lower(&Expr::rel("takes").division(Expr::rel("takes")), &db).is_err());
    }
}
