//! Per-operator execution statistics for EXPLAIN-style reporting.

use std::fmt;
use std::time::Duration;

/// Runtime statistics for one physical operator, mirroring the plan tree.
///
/// `elapsed` is the wall time spent inside the operator itself (children
/// excluded). Joins additionally split their time into the hash `build`
/// and `probe` phases.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Operator label (from [`crate::PhysPlan::label`]).
    pub op: String,
    /// Tuples consumed from all children.
    pub rows_in: u64,
    /// Tuples produced.
    pub rows_out: u64,
    /// Batches (morsels) produced.
    pub batches_out: u64,
    /// Wall time in this operator, children excluded.
    pub elapsed: Duration,
    /// Hash-build phase time (joins only).
    pub build: Option<Duration>,
    /// Probe phase time (joins only).
    pub probe: Option<Duration>,
    /// Bytes this operator charged against the governor's memory budget.
    /// Zero when the query ran without a budget (sizes are then never
    /// estimated); `EXPLAIN ANALYZE` attaches one so this is populated.
    pub mem_bytes: u64,
    /// Child operator statistics, in execution order.
    pub children: Vec<ExecStats>,
}

impl ExecStats {
    /// Total tuples produced by every operator in the tree (the classic
    /// intermediate-result-size metric).
    ///
    /// This intentionally **double-counts** tuples that flow through more
    /// than one operator — a scan's output is counted again at the filter
    /// above it. That is the right number for "how much intermediate data
    /// did this plan materialise", but it is NOT the query's result
    /// cardinality; use [`ExecStats::rows_out_root`] for that.
    pub fn total_rows(&self) -> u64 {
        self.rows_out + self.children.iter().map(ExecStats::total_rows).sum::<u64>()
    }

    /// Tuples in the final query result: the root operator's `rows_out`,
    /// nothing summed. Contrast with [`ExecStats::total_rows`], which sums
    /// over the whole tree and therefore counts a tuple once per operator
    /// it passes through.
    pub fn rows_out_root(&self) -> u64 {
        self.rows_out
    }

    /// Number of operator nodes in the tree.
    pub fn operators(&self) -> u64 {
        1 + self.children.iter().map(ExecStats::operators).sum::<u64>()
    }

    /// Wall time summed over every operator (children included).
    pub fn total_elapsed(&self) -> Duration {
        self.elapsed
            + self
                .children
                .iter()
                .map(ExecStats::total_elapsed)
                .sum::<Duration>()
    }

    /// Total budget-charged bytes over the whole tree (children included).
    pub fn total_mem_bytes(&self) -> u64 {
        self.mem_bytes
            + self
                .children
                .iter()
                .map(ExecStats::total_mem_bytes)
                .sum::<u64>()
    }

    /// Render the stats tree indented, one operator per line — the body of
    /// the shell's `\explain` output.
    pub fn render(&self) -> String {
        fn fmt_bytes(b: u64) -> String {
            if b >= 10 * 1024 * 1024 {
                format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
            } else if b >= 10 * 1024 {
                format!("{:.1}KiB", b as f64 / 1024.0)
            } else {
                format!("{b}B")
            }
        }
        fn fmt_dur(d: Duration) -> String {
            let us = d.as_micros();
            if us >= 10_000 {
                format!("{:.2}ms", d.as_secs_f64() * 1e3)
            } else {
                format!("{us}µs")
            }
        }
        fn walk(node: &ExecStats, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&node.op);
            out.push_str(&format!(
                "  (rows={} in={} batches={} time={}",
                node.rows_out,
                node.rows_in,
                node.batches_out,
                fmt_dur(node.elapsed)
            ));
            if let (Some(b), Some(p)) = (node.build, node.probe) {
                out.push_str(&format!(" build={} probe={}", fmt_dur(b), fmt_dur(p)));
            }
            if node.mem_bytes > 0 {
                out.push_str(&format!(" mem={}", fmt_bytes(node.mem_bytes)));
            }
            out.push_str(")\n");
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(op: &str, rows: u64) -> ExecStats {
        ExecStats {
            op: op.to_string(),
            rows_out: rows,
            batches_out: 1,
            elapsed: Duration::from_micros(5),
            ..ExecStats::default()
        }
    }

    #[test]
    fn aggregates_over_tree() {
        let join = ExecStats {
            op: "PartitionedHashJoin [b]".to_string(),
            rows_in: 30,
            rows_out: 12,
            batches_out: 2,
            elapsed: Duration::from_micros(40),
            build: Some(Duration::from_micros(15)),
            probe: Some(Duration::from_micros(25)),
            children: vec![leaf("SeqScan [r]", 10), leaf("SeqScan [s]", 20)],
            ..ExecStats::default()
        };
        assert_eq!(join.total_rows(), 42);
        assert_eq!(join.operators(), 3);
        assert_eq!(join.total_elapsed(), Duration::from_micros(50));
    }

    /// Pins the exact semantics of each aggregate on a hand-built 3-node
    /// tree, so any drive-by change to the definitions fails loudly:
    /// - `rows_out_root` = root's own output (12), never a sum;
    /// - `total_rows` = sum of rows_out over ALL nodes (12+10+20 = 42),
    ///   i.e. a tuple is counted once per operator that emits it;
    /// - `operators` counts nodes (3);
    /// - `total_elapsed` sums per-operator self-time (40+5+5 = 50µs).
    #[test]
    fn aggregate_semantics_pinned() {
        let tree = ExecStats {
            op: "PartitionedHashJoin [k]".to_string(),
            rows_in: 30,
            rows_out: 12,
            batches_out: 2,
            elapsed: Duration::from_micros(40),
            build: None,
            probe: None,
            mem_bytes: 0,
            children: vec![leaf("SeqScan [r]", 10), leaf("SeqScan [s]", 20)],
        };
        assert_eq!(tree.rows_out_root(), 12, "root cardinality, not a sum");
        assert_eq!(tree.total_rows(), 42, "sum over all operators");
        assert_ne!(
            tree.rows_out_root(),
            tree.total_rows(),
            "the two aggregates answer different questions"
        );
        assert_eq!(tree.operators(), 3);
        assert_eq!(tree.total_elapsed(), Duration::from_micros(50));
        // Leaves: root-output and tree-total coincide only for leaves.
        assert_eq!(tree.children[0].rows_out_root(), 10);
        assert_eq!(tree.children[0].total_rows(), 10);
    }

    #[test]
    fn render_shows_every_operator_indented() {
        let tree = ExecStats {
            op: "Filter [x = 1]".to_string(),
            rows_in: 10,
            rows_out: 3,
            batches_out: 1,
            elapsed: Duration::from_micros(7),
            children: vec![leaf("SeqScan [r]", 10)],
            ..ExecStats::default()
        };
        let r = tree.render();
        assert!(r.starts_with("Filter [x = 1]  (rows=3 in=10"), "{r}");
        assert!(r.contains("\n  SeqScan [r]  (rows=10"), "{r}");
    }

    #[test]
    fn render_shows_memory_only_when_charged() {
        let mut n = leaf("SeqScan [r]", 4);
        assert!(!n.render().contains("mem="), "{}", n.render());
        n.mem_bytes = 512;
        assert!(n.render().contains(" mem=512B)"), "{}", n.render());
        n.mem_bytes = 96 * 1024;
        assert!(n.render().contains(" mem=96.0KiB)"), "{}", n.render());
        let tree = ExecStats {
            op: "Filter [x = 1]".to_string(),
            mem_bytes: 64,
            children: vec![n],
            ..ExecStats::default()
        };
        assert_eq!(tree.total_mem_bytes(), 64 + 96 * 1024);
    }

    #[test]
    fn join_render_includes_build_probe_split() {
        let mut j = leaf("PartitionedHashJoin [k]", 5);
        j.build = Some(Duration::from_micros(2));
        j.probe = Some(Duration::from_micros(3));
        let r = j.render();
        assert!(r.contains("build=2µs probe=3µs"), "{r}");
    }
}
