//! # bq-exec
//!
//! A physical execution engine for the relational algebra — the "make it
//! fast" half of the paper's §2/§6 arc. Codd's algebra won because the
//! Berkeley–IBM feasibility experiments showed it *could* be made fast;
//! this crate is that move for this repo.
//!
//! The logical [`Expr`](bq_relational::algebra::Expr) AST is lowered into a
//! [`PhysPlan`] tree of batch-at-a-time physical operators (sequential
//! scans, filters, projections, partitioned hash joins, hash distinct, set
//! operations, products), which the [`Executor`] then runs **morsel-driven
//! in parallel**: every operator's input is a list of fixed-size tuple
//! batches ("morsels"), and a pool of `std::thread::scope` workers pulls
//! morsels off a shared atomic cursor — the classic morsel-driven
//! parallelism scheme (Leis et al., SIGMOD '14) with materialized operator
//! boundaries.
//!
//! Joins are build/probe **partitioned hash joins**: both inputs are hash
//! partitioned on the join key across the worker count, and each partition
//! is then built and probed independently, in parallel.
//!
//! Every operator records an [`ExecStats`] node (rows in/out, batches,
//! wall time, build/probe split for joins), so `EXPLAIN`-style reporting
//! falls out of every execution.
//!
//! The original single-threaded recursive interpreter
//! ([`bq_relational::algebra::eval`]) remains in place as the differential
//! testing oracle: `tests/exec_equivalence.rs` at the workspace root
//! proves `parallel ≡ sequential ≡ oracle` on hundreds of random
//! expression/database pairs.

pub mod engine;
pub mod plan;
pub mod stats;

pub use engine::{ExecMode, Executor, DEFAULT_MORSEL_SIZE};
pub use plan::{lower, PhysPlan, SetOpKind};
pub use stats::ExecStats;
