//! Existential second-order sentences — Fagin's Theorem, operationally.
//!
//! Fagin's Theorem: a property of finite structures is in NP iff it is
//! definable by a sentence `∃R₁…∃Rₖ φ` with φ first-order. The checker
//! here is the naive witness search the theorem's "⊆ NP" direction
//! describes: guess the relations, verify φ in polynomial time. Experiment
//! **E11** runs it against the Cook route (reduce to SAT, run DPLL) and the
//! problem-specific backtracking baseline on the same graphs.

use crate::fo::{check_sentence, FoFormula};
use crate::structure::Structure;
use std::collections::BTreeSet;

/// Declaration of one existentially quantified relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelDecl {
    /// Relation name (must not clash with the structure's own relations).
    pub name: String,
    /// Arity.
    pub arity: usize,
}

/// An ESO sentence `∃R₁…∃Rₖ φ`.
#[derive(Debug, Clone, PartialEq)]
pub struct EsoSentence {
    /// The guessed relations.
    pub rels: Vec<RelDecl>,
    /// The first-order matrix.
    pub matrix: FoFormula,
}

/// Model-check an ESO sentence by exhaustive witness search. Returns a
/// witness structure (the input extended with the guessed relations) if
/// the sentence holds.
///
/// The search space is `2^(Σ |dom|^arity)`; the function asserts the
/// exponent stays ≤ 30 so tests cannot accidentally explode.
pub fn check_eso(structure: &Structure, sentence: &EsoSentence) -> Option<Structure> {
    // All candidate tuples per guessed relation.
    let mut slots: Vec<(String, usize, Vec<Vec<usize>>)> = Vec::new();
    let mut total_bits = 0usize;
    for decl in &sentence.rels {
        let tuples = all_tuples(structure.domain, decl.arity);
        total_bits += tuples.len();
        slots.push((decl.name.clone(), decl.arity, tuples));
    }
    assert!(
        total_bits <= 30,
        "ESO search space too large ({total_bits} bits)"
    );

    let combos: u64 = 1 << total_bits;
    for mask in 0..combos {
        let mut witness = structure.clone();
        let mut bit = 0;
        for (name, arity, tuples) in &slots {
            let mut contents: BTreeSet<Vec<usize>> = BTreeSet::new();
            for t in tuples {
                if mask & (1 << bit) != 0 {
                    contents.insert(t.clone());
                }
                bit += 1;
            }
            witness.set_relation(name, *arity, contents);
        }
        if check_sentence(&witness, &sentence.matrix) {
            return Some(witness);
        }
    }
    None
}

fn all_tuples(domain: usize, arity: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * domain);
        for prefix in &out {
            for d in 0..domain {
                let mut t = prefix.clone();
                t.push(d);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// The ESO sentence for graph 3-colorability:
/// `∃R∃G∃B  ∀x(R∨G∨B)(x) ∧ ∀x(pairwise disjoint) ∧
///  ∀x∀y(edge(x,y) → colors differ)`.
pub fn three_colorability_sentence() -> EsoSentence {
    let colors = ["col_r", "col_g", "col_b"];
    // Every vertex has a color.
    let mut matrix = FoFormula::forall(
        "x",
        FoFormula::atom("col_r", &["x"])
            .or(FoFormula::atom("col_g", &["x"]))
            .or(FoFormula::atom("col_b", &["x"])),
    );
    // Colors are pairwise disjoint.
    for i in 0..colors.len() {
        for j in (i + 1)..colors.len() {
            matrix = matrix.and(FoFormula::forall(
                "x",
                FoFormula::atom(colors[i], &["x"])
                    .and(FoFormula::atom(colors[j], &["x"]))
                    .not(),
            ));
        }
    }
    // Adjacent vertices get different colors.
    for c in colors {
        matrix = matrix.and(FoFormula::forall(
            "x",
            FoFormula::forall(
                "y",
                FoFormula::atom("edge", &["x", "y"])
                    .and(FoFormula::atom(c, &["x"]))
                    .and(FoFormula::atom(c, &["y"]))
                    .not(),
            ),
        ));
    }
    EsoSentence {
        rels: colors
            .iter()
            .map(|c| RelDecl {
                name: c.to_string(),
                arity: 1,
            })
            .collect(),
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reductions::{color_graph_via_sat, Graph};

    #[test]
    fn triangle_is_3_colorable_by_eso() {
        let s = Structure::of_graph(&Graph::complete(3));
        let witness = check_eso(&s, &three_colorability_sentence()).unwrap();
        // Each color class is nonempty and they partition the 3 vertices.
        let total: usize = ["col_r", "col_g", "col_b"]
            .iter()
            .map(|c| witness.count(c))
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn k4_is_not_3_colorable_by_eso() {
        let s = Structure::of_graph(&Graph::complete(4));
        assert!(check_eso(&s, &three_colorability_sentence()).is_none());
    }

    #[test]
    fn eso_agrees_with_sat_pipeline() {
        // Fagin (guess & FO-check) vs Cook (reduce & DPLL): same verdicts.
        for seed in 0..10 {
            let g = Graph::random(5, 50, seed);
            let s = Structure::of_graph(&g);
            let eso = check_eso(&s, &three_colorability_sentence()).is_some();
            let sat = color_graph_via_sat(&g, 3).is_some();
            assert_eq!(eso, sat, "seed {seed}");
        }
    }

    #[test]
    fn simple_eso_existence_of_nonempty_set() {
        // ∃S ∃x S(x): true on any nonempty domain.
        let sentence = EsoSentence {
            rels: vec![RelDecl {
                name: "s".into(),
                arity: 1,
            }],
            matrix: FoFormula::exists("x", FoFormula::atom("s", &["x"])),
        };
        assert!(check_eso(&Structure::new(2), &sentence).is_some());
        assert!(check_eso(&Structure::new(0), &sentence).is_none());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_search_space_guard() {
        let sentence = EsoSentence {
            rels: vec![RelDecl {
                name: "r".into(),
                arity: 2,
            }],
            matrix: FoFormula::True,
        };
        check_eso(&Structure::new(6), &sentence); // 36 bits > 30
    }

    #[test]
    fn all_tuples_enumeration() {
        assert_eq!(all_tuples(2, 2).len(), 4);
        assert_eq!(all_tuples(3, 1).len(), 3);
        assert_eq!(all_tuples(5, 0), vec![Vec::<usize>::new()]);
    }
}
