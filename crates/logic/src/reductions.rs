//! NP reductions: the traffic across Cook's bridge.
//!
//! * graph k-colorability → SAT (with a decoder back to colorings);
//! * CNF → 3-CNF (clause splitting);
//! * a direct backtracking graph colorer, the baseline experiment **E11**
//!   compares the SAT pipeline against.

use crate::cnf::{Cnf, Lit};
use crate::dpll::solve;

/// A simple undirected graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices (`0..n`).
    pub n: usize,
    /// Undirected edges (u < v normalized).
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Empty graph on `n` vertices.
    pub fn new(n: usize) -> Graph {
        Graph {
            n,
            edges: Vec::new(),
        }
    }

    /// Add an undirected edge.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n && u != v);
        let e = (u.min(v), u.max(v));
        if !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }

    /// The complete graph K_n.
    pub fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The cycle C_n.
    pub fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
        g
    }

    /// Deterministic pseudo-random graph with edge probability ~`p_percent`%.
    pub fn random(n: usize, p_percent: u64, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for u in 0..n {
            for v in (u + 1)..n {
                if next() % 100 < p_percent {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Is `coloring` a proper coloring?
    pub fn is_proper_coloring(&self, coloring: &[usize]) -> bool {
        coloring.len() == self.n && self.edges.iter().all(|&(u, v)| coloring[u] != coloring[v])
    }
}

/// Reduce k-colorability of `g` to SAT. Variable `v*k + c + 1` means
/// "vertex v has color c".
pub fn coloring_to_sat(g: &Graph, k: usize) -> Cnf {
    let var = |v: usize, c: usize| Lit::pos(v * k + c + 1);
    let mut cnf = Cnf::new(g.n * k);
    // Each vertex has at least one color.
    for v in 0..g.n {
        cnf.push((0..k).map(|c| var(v, c)).collect());
    }
    // …and at most one.
    for v in 0..g.n {
        for c1 in 0..k {
            for c2 in (c1 + 1)..k {
                cnf.push(vec![var(v, c1).negate(), var(v, c2).negate()]);
            }
        }
    }
    // Adjacent vertices differ.
    for &(u, v) in &g.edges {
        for c in 0..k {
            cnf.push(vec![var(u, c).negate(), var(v, c).negate()]);
        }
    }
    cnf
}

/// Decode a SAT model back into a coloring.
pub fn decode_coloring(g: &Graph, k: usize, model: &[bool]) -> Vec<usize> {
    (0..g.n)
        .map(|v| {
            (0..k)
                .find(|&c| model[v * k + c + 1])
                .expect("at-least-one clause guarantees a color")
        })
        .collect()
}

/// k-color a graph via the SAT pipeline. Returns a proper coloring or
/// `None`.
pub fn color_graph_via_sat(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let cnf = coloring_to_sat(g, k);
    let model = solve(&cnf)?;
    let coloring = decode_coloring(g, k, &model);
    debug_assert!(g.is_proper_coloring(&coloring));
    Some(coloring)
}

/// Direct backtracking k-colorer — the problem-specific baseline.
pub fn color_graph_backtracking(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let mut adj = vec![Vec::new(); g.n];
    for &(u, v) in &g.edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut coloring = vec![usize::MAX; g.n];
    fn rec(v: usize, k: usize, adj: &[Vec<usize>], coloring: &mut Vec<usize>) -> bool {
        if v == coloring.len() {
            return true;
        }
        'colors: for c in 0..k {
            for &u in &adj[v] {
                if coloring[u] == c {
                    continue 'colors;
                }
            }
            coloring[v] = c;
            if rec(v + 1, k, adj, coloring) {
                return true;
            }
            coloring[v] = usize::MAX;
        }
        false
    }
    if rec(0, k, &adj, &mut coloring) {
        Some(coloring)
    } else {
        None
    }
}

/// Reduce Hamiltonian path to SAT with the positional encoding: variable
/// `⟨v, i⟩` says "vertex v is at position i of the path". Clauses: every
/// position holds some vertex, no position holds two, no vertex appears
/// twice, and consecutive positions are adjacent in the graph.
pub fn hamiltonian_path_to_sat(g: &Graph) -> Cnf {
    let n = g.n;
    let var = |v: usize, i: usize| Lit::pos(v * n + i + 1);
    let mut cnf = Cnf::new(n * n);
    // Each position i is occupied by at least one vertex…
    for i in 0..n {
        cnf.push((0..n).map(|v| var(v, i)).collect());
    }
    // …and at most one.
    for i in 0..n {
        for v1 in 0..n {
            for v2 in (v1 + 1)..n {
                cnf.push(vec![var(v1, i).negate(), var(v2, i).negate()]);
            }
        }
    }
    // Each vertex appears at most once.
    for v in 0..n {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                cnf.push(vec![var(v, i1).negate(), var(v, i2).negate()]);
            }
        }
    }
    // Non-adjacent vertices cannot be consecutive.
    for i in 0..n.saturating_sub(1) {
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let adjacent = g.edges.contains(&(u.min(v), u.max(v)));
                if !adjacent {
                    cnf.push(vec![var(u, i).negate(), var(v, i + 1).negate()]);
                }
            }
        }
    }
    cnf
}

/// Decode a SAT model into the vertex sequence of the path.
pub fn decode_hamiltonian(g: &Graph, model: &[bool]) -> Vec<usize> {
    let n = g.n;
    (0..n)
        .map(|i| {
            (0..n)
                .find(|&v| model[v * n + i + 1])
                .expect("each position occupied")
        })
        .collect()
}

/// Brute-force Hamiltonian path by backtracking (reference for tests).
pub fn hamiltonian_path_backtracking(g: &Graph) -> Option<Vec<usize>> {
    let mut adj = vec![vec![false; g.n]; g.n];
    for &(u, v) in &g.edges {
        adj[u][v] = true;
        adj[v][u] = true;
    }
    fn rec(adj: &[Vec<bool>], path: &mut Vec<usize>, used: &mut Vec<bool>) -> bool {
        if path.len() == adj.len() {
            return true;
        }
        let last = *path.last().expect("nonempty");
        for v in 0..adj.len() {
            if !used[v] && adj[last][v] {
                used[v] = true;
                path.push(v);
                if rec(adj, path, used) {
                    return true;
                }
                path.pop();
                used[v] = false;
            }
        }
        false
    }
    if g.n == 0 {
        return Some(vec![]);
    }
    for start in 0..g.n {
        let mut path = vec![start];
        let mut used = vec![false; g.n];
        used[start] = true;
        if rec(&adj, &mut path, &mut used) {
            return Some(path);
        }
    }
    None
}

/// Reduce an arbitrary CNF to an equisatisfiable 3-CNF by clause
/// splitting with fresh linking variables.
pub fn to_3cnf(cnf: &Cnf) -> Cnf {
    let mut out = Cnf::new(cnf.num_vars);
    for clause in &cnf.clauses {
        match clause.len() {
            0..=3 => out.push(clause.clone()),
            _ => {
                // (l1 ∨ l2 ∨ y1) (¬y1 ∨ l3 ∨ y2) … (¬y_{m-3} ∨ l_{m-1} ∨ l_m)
                let mut prev = {
                    let y = out.fresh_var();
                    out.push(vec![clause[0], clause[1], Lit::pos(y)]);
                    y
                };
                for &lit in &clause[2..clause.len() - 2] {
                    let y = out.fresh_var();
                    out.push(vec![Lit::neg(prev), lit, Lit::pos(y)]);
                    prev = y;
                }
                out.push(vec![
                    Lit::neg(prev),
                    clause[clause.len() - 2],
                    clause[clause.len() - 1],
                ]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::solve_brute_force;

    #[test]
    fn triangle_needs_three_colors() {
        let g = Graph::complete(3);
        assert!(color_graph_via_sat(&g, 2).is_none());
        let c = color_graph_via_sat(&g, 3).unwrap();
        assert!(g.is_proper_coloring(&c));
    }

    #[test]
    fn k4_needs_four_colors() {
        let g = Graph::complete(4);
        assert!(color_graph_via_sat(&g, 3).is_none());
        assert!(color_graph_via_sat(&g, 4).is_some());
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let g = Graph::cycle(5);
        assert!(color_graph_via_sat(&g, 2).is_none());
        assert!(color_graph_via_sat(&g, 3).is_some());
        let even = Graph::cycle(6);
        assert!(color_graph_via_sat(&even, 2).is_some());
    }

    #[test]
    fn sat_and_backtracking_agree() {
        for seed in 0..20 {
            let g = Graph::random(8, 40, seed);
            for k in 2..=4 {
                let a = color_graph_via_sat(&g, k);
                let b = color_graph_backtracking(&g, k);
                assert_eq!(a.is_some(), b.is_some(), "seed {seed}, k={k}");
                if let Some(c) = a {
                    assert!(g.is_proper_coloring(&c));
                }
                if let Some(c) = b {
                    assert!(g.is_proper_coloring(&c));
                }
            }
        }
    }

    #[test]
    fn empty_graph_is_one_colorable() {
        let g = Graph::new(4);
        let c = color_graph_via_sat(&g, 1).unwrap();
        assert_eq!(c, vec![0, 0, 0, 0]);
    }

    #[test]
    fn three_cnf_preserves_satisfiability() {
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..100 {
            let n = 3 + (next() % 4) as usize;
            let m = 1 + (next() % 8) as usize;
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let width = 1 + (next() % 6) as usize; // up to 6-literal clauses
                let clause: Vec<Lit> = (0..width)
                    .map(|_| {
                        let v = 1 + (next() % n as u64) as usize;
                        if next() % 2 == 0 {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                cnf.push(clause);
            }
            let three = to_3cnf(&cnf);
            assert!(three.max_clause_width() <= 3, "trial {trial}");
            assert_eq!(
                solve_brute_force(&cnf).is_some(),
                solve(&three).is_some(),
                "trial {trial}: {cnf}"
            );
        }
    }

    #[test]
    fn hamiltonian_path_on_a_path_graph() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let model = solve(&hamiltonian_path_to_sat(&g)).expect("path exists");
        let path = decode_hamiltonian(&g, &model);
        assert!(path == vec![0, 1, 2, 3] || path == vec![3, 2, 1, 0]);
    }

    #[test]
    fn star_graph_has_no_hamiltonian_path_beyond_three() {
        // A star K_{1,3}: center 0, leaves 1..3 — no Hamiltonian path.
        let mut g = Graph::new(4);
        for leaf in 1..4 {
            g.add_edge(0, leaf);
        }
        assert!(solve(&hamiltonian_path_to_sat(&g)).is_none());
        assert!(hamiltonian_path_backtracking(&g).is_none());
    }

    #[test]
    fn hamiltonian_sat_agrees_with_backtracking() {
        for seed in 0..15 {
            let g = Graph::random(6, 45, seed);
            let via_sat = solve(&hamiltonian_path_to_sat(&g));
            let via_bt = hamiltonian_path_backtracking(&g);
            assert_eq!(via_sat.is_some(), via_bt.is_some(), "seed {seed}");
            if let Some(model) = via_sat {
                // Verify the decoded path is genuinely a path.
                let path = decode_hamiltonian(&g, &model);
                for w in path.windows(2) {
                    let e = (w[0].min(w[1]), w[0].max(w[1]));
                    assert!(g.edges.contains(&e), "non-edge in path, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edges.len(), 1);
    }
}
