//! Finite first-order structures (relational vocabularies).

use std::collections::{BTreeMap, BTreeSet};

/// A finite structure: a domain `{0, …, n−1}` and named relations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Structure {
    /// Domain size.
    pub domain: usize,
    relations: BTreeMap<String, BTreeSet<Vec<usize>>>,
    arities: BTreeMap<String, usize>,
}

impl Structure {
    /// Structure with domain `{0, …, n−1}` and no relations.
    pub fn new(domain: usize) -> Structure {
        Structure {
            domain,
            ..Structure::default()
        }
    }

    /// Declare a relation with an arity (idempotent; arity must agree).
    pub fn declare(&mut self, name: &str, arity: usize) {
        match self.arities.get(name) {
            Some(&a) => assert_eq!(a, arity, "arity clash for `{name}`"),
            None => {
                self.arities.insert(name.to_string(), arity);
                self.relations.entry(name.to_string()).or_default();
            }
        }
    }

    /// Add a tuple to a relation (declaring it if new).
    pub fn add(&mut self, name: &str, tuple: &[usize]) {
        assert!(
            tuple.iter().all(|&x| x < self.domain),
            "tuple out of domain"
        );
        self.declare(name, tuple.len());
        self.relations
            .get_mut(name)
            .expect("declared")
            .insert(tuple.to_vec());
    }

    /// Membership test (false for unknown relations).
    pub fn holds(&self, name: &str, tuple: &[usize]) -> bool {
        self.relations.get(name).is_some_and(|r| r.contains(tuple))
    }

    /// Arity of a relation, if declared.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.arities.get(name).copied()
    }

    /// Tuples of a relation.
    pub fn tuples(&self, name: &str) -> impl Iterator<Item = &Vec<usize>> + '_ {
        self.relations.get(name).into_iter().flatten()
    }

    /// Number of tuples in a relation.
    pub fn count(&self, name: &str) -> usize {
        self.relations.get(name).map_or(0, BTreeSet::len)
    }

    /// Replace a relation's contents wholesale (used by the ESO searcher).
    pub fn set_relation(&mut self, name: &str, arity: usize, tuples: BTreeSet<Vec<usize>>) {
        self.declare(name, arity);
        self.relations.insert(name.to_string(), tuples);
    }

    /// Build the structure of a graph: domain = vertices, binary symmetric
    /// relation `edge`.
    pub fn of_graph(g: &crate::reductions::Graph) -> Structure {
        let mut s = Structure::new(g.n);
        s.declare("edge", 2);
        for &(u, v) in &g.edges {
            s.add("edge", &[u, v]);
            s.add("edge", &[v, u]);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reductions::Graph;

    #[test]
    fn add_and_query() {
        let mut s = Structure::new(3);
        s.add("r", &[0, 1]);
        assert!(s.holds("r", &[0, 1]));
        assert!(!s.holds("r", &[1, 0]));
        assert!(!s.holds("nope", &[0]));
        assert_eq!(s.arity("r"), Some(2));
        assert_eq!(s.count("r"), 1);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_tuple_panics() {
        let mut s = Structure::new(2);
        s.add("r", &[5]);
    }

    #[test]
    #[should_panic(expected = "arity clash")]
    fn arity_clash_panics() {
        let mut s = Structure::new(3);
        s.add("r", &[0, 1]);
        s.add("r", &[0]);
    }

    #[test]
    fn graph_structure_is_symmetric() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let s = Structure::of_graph(&g);
        assert!(s.holds("edge", &[0, 1]));
        assert!(s.holds("edge", &[1, 0]));
        assert_eq!(s.count("edge"), 2);
    }

    #[test]
    fn set_relation_replaces() {
        let mut s = Structure::new(2);
        s.add("r", &[0]);
        let mut new: BTreeSet<Vec<usize>> = BTreeSet::new();
        new.insert(vec![1]);
        s.set_relation("r", 1, new);
        assert!(!s.holds("r", &[0]));
        assert!(s.holds("r", &[1]));
    }
}
