//! A DPLL SAT solver.
//!
//! Classic Davis–Putnam–Logemann–Loveland with unit propagation, pure
//! literal elimination, and most-frequent-variable branching. Seen from the
//! paper's vantage point this is the algorithmic "setback" side of Cook's
//! Theorem: a complete procedure, exponential in the worst case, which the
//! reductions in [`crate::reductions`] turn into a general-purpose NP
//! engine.

use crate::cnf::{Cnf, Lit};

/// Counters from a solver run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
    /// Variables fixed by the pure-literal rule.
    pub pure_eliminations: u64,
}

/// Tri-state assignment during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V {
    True,
    False,
    Unset,
}

/// Solve a CNF formula. Returns a satisfying assignment
/// (`assignment[var]`, index 0 unused) or `None` if unsatisfiable.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_with_stats(cnf).0
}

/// Solve and report statistics.
pub fn solve_with_stats(cnf: &Cnf) -> (Option<Vec<bool>>, SolveStats) {
    let mut stats = SolveStats::default();
    let mut assign = vec![V::Unset; cnf.num_vars + 1];
    let sat = dpll(cnf, &mut assign, &mut stats);
    if sat {
        let model: Vec<bool> = assign
            .iter()
            .map(|v| matches!(v, V::True)) // Unset vars default false
            .collect();
        debug_assert!(cnf.eval(&model));
        (Some(model), stats)
    } else {
        (None, stats)
    }
}

fn lit_state(l: Lit, assign: &[V]) -> V {
    match assign[l.var()] {
        V::Unset => V::Unset,
        V::True => {
            if l.is_pos() {
                V::True
            } else {
                V::False
            }
        }
        V::False => {
            if l.is_pos() {
                V::False
            } else {
                V::True
            }
        }
    }
}

fn dpll(cnf: &Cnf, assign: &mut Vec<V>, stats: &mut SolveStats) -> bool {
    // Unit propagation + conflict detection, to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut unit: Option<Lit> = None;
        let mut conflict = false;
        for clause in &cnf.clauses {
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for &l in clause {
                match lit_state(l, assign) {
                    V::True => {
                        satisfied = true;
                        break;
                    }
                    V::Unset => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                    V::False => {}
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => {
                    conflict = true;
                    break;
                }
                1 => {
                    unit = Some(unassigned.expect("one unassigned"));
                    break;
                }
                _ => {}
            }
        }
        if conflict {
            for v in trail {
                assign[v] = V::Unset;
            }
            return false;
        }
        match unit {
            Some(l) => {
                stats.propagations += 1;
                assign[l.var()] = if l.is_pos() { V::True } else { V::False };
                trail.push(l.var());
            }
            None => break,
        }
    }

    // Pure literal elimination.
    let mut pos_seen = vec![false; cnf.num_vars + 1];
    let mut neg_seen = vec![false; cnf.num_vars + 1];
    for clause in &cnf.clauses {
        // Only clauses not yet satisfied constrain anything.
        if clause.iter().any(|&l| lit_state(l, assign) == V::True) {
            continue;
        }
        for &l in clause {
            if lit_state(l, assign) == V::Unset {
                if l.is_pos() {
                    pos_seen[l.var()] = true;
                } else {
                    neg_seen[l.var()] = true;
                }
            }
        }
    }
    for v in 1..=cnf.num_vars {
        if assign[v] == V::Unset && (pos_seen[v] ^ neg_seen[v]) {
            stats.pure_eliminations += 1;
            assign[v] = if pos_seen[v] { V::True } else { V::False };
            trail.push(v);
        }
    }

    // All clauses satisfied?
    let all_sat = cnf
        .clauses
        .iter()
        .all(|c| c.iter().any(|&l| lit_state(l, assign) == V::True));
    if all_sat {
        return true;
    }

    // Branch on the most frequent unset variable among unsatisfied clauses.
    let mut freq = vec![0u32; cnf.num_vars + 1];
    for clause in &cnf.clauses {
        if clause.iter().any(|&l| lit_state(l, assign) == V::True) {
            continue;
        }
        for &l in clause {
            if lit_state(l, assign) == V::Unset {
                freq[l.var()] += 1;
            }
        }
    }
    let branch = (1..=cnf.num_vars)
        .filter(|&v| assign[v] == V::Unset)
        .max_by_key(|&v| freq[v]);
    let Some(v) = branch else {
        // No unset vars but not all satisfied: conflict.
        for v in trail {
            assign[v] = V::Unset;
        }
        return false;
    };

    stats.decisions += 1;
    for value in [V::True, V::False] {
        assign[v] = value;
        if dpll(cnf, assign, stats) {
            return true;
        }
    }
    assign[v] = V::Unset;
    for v in trail {
        assign[v] = V::Unset;
    }
    false
}

/// Brute-force reference solver (2^n). For property tests only.
pub fn solve_brute_force(cnf: &Cnf) -> Option<Vec<bool>> {
    let n = cnf.num_vars;
    assert!(n <= 24, "brute force capped at 24 variables");
    for mask in 0..(1u64 << n) {
        let assignment: Vec<bool> = std::iter::once(false)
            .chain((0..n).map(|i| mask & (1 << i) != 0))
            .collect();
        if cnf.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(num_vars: usize, clauses: &[&[i32]]) -> Cnf {
        let mut c = Cnf::new(num_vars);
        for cl in clauses {
            c.push(
                cl.iter()
                    .map(|&x| {
                        if x > 0 {
                            Lit::pos(x as usize)
                        } else {
                            Lit::neg((-x) as usize)
                        }
                    })
                    .collect(),
            );
        }
        c
    }

    #[test]
    fn satisfiable_simple() {
        let c = cnf(2, &[&[1, 2], &[-1, 2], &[1, -2]]);
        let m = solve(&c).unwrap();
        assert!(c.eval(&m));
    }

    #[test]
    fn unsatisfiable_contradiction() {
        let c = cnf(1, &[&[1], &[-1]]);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn all_four_combinations_unsat() {
        let c = cnf(2, &[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn empty_formula_sat() {
        let c = Cnf::new(3);
        assert!(solve(&c).is_some());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut c = Cnf::new(1);
        c.push(vec![]);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn unit_propagation_chains() {
        // x1, x1→x2, x2→x3 as clauses: forced model.
        let c = cnf(3, &[&[1], &[-1, 2], &[-2, 3]]);
        let (m, stats) = solve_with_stats(&c);
        let m = m.unwrap();
        assert!(m[1] && m[2] && m[3]);
        assert!(stats.propagations >= 3);
        assert_eq!(stats.decisions, 0, "pure propagation, no branching");
    }

    #[test]
    fn pure_literal_rule_fires() {
        // x1 appears only positively.
        let c = cnf(2, &[&[1, 2], &[1, -2]]);
        let (m, stats) = solve_with_stats(&c);
        assert!(m.is_some());
        assert!(stats.pure_eliminations >= 1);
    }

    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        // Deterministic pseudo-random 3-CNF generator.
        let mut state = 0xdead_beefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let n = 3 + (next() % 6) as usize; // 3..8 vars
            let m = 2 + (next() % 18) as usize; // 2..19 clauses
            let mut c = Cnf::new(n);
            for _ in 0..m {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = 1 + (next() % n as u64) as usize;
                    let lit = if next() % 2 == 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    };
                    clause.push(lit);
                }
                c.push(clause);
            }
            let dp = solve(&c);
            let bf = solve_brute_force(&c);
            assert_eq!(dp.is_some(), bf.is_some(), "trial {trial} formula {c}");
            if let Some(m) = dp {
                assert!(c.eval(&m), "returned model must satisfy, trial {trial}");
            }
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): pigeon i in hole j = var 2i+j+1 (i:0..3, j:0..2).
        let var = |i: usize, j: usize| 2 * i + j + 1;
        let mut c = Cnf::new(6);
        for i in 0..3 {
            c.push(vec![Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    c.push(vec![Lit::neg(var(i1, j)), Lit::neg(var(i2, j))]);
                }
            }
        }
        assert!(solve(&c).is_none());
    }
}
