//! First-order formulas over finite structures, with model checking.

use crate::structure::Structure;
use std::collections::HashMap;
use std::fmt;

/// A first-order formula over individual variables (named by strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoFormula {
    /// Truth.
    True,
    /// Relation atom `R(x1, …, xk)`.
    Atom {
        /// Relation name.
        rel: String,
        /// Variable names.
        vars: Vec<String>,
    },
    /// Equality `x = y`.
    Eq(String, String),
    /// Conjunction.
    And(Box<FoFormula>, Box<FoFormula>),
    /// Disjunction.
    Or(Box<FoFormula>, Box<FoFormula>),
    /// Negation.
    Not(Box<FoFormula>),
    /// `∃x φ` over the domain.
    Exists(String, Box<FoFormula>),
    /// `∀x φ` over the domain.
    ForAll(String, Box<FoFormula>),
}

impl FoFormula {
    /// Atom builder.
    pub fn atom(rel: &str, vars: &[&str]) -> FoFormula {
        FoFormula::Atom {
            rel: rel.to_string(),
            vars: vars.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Conjunction builder (absorbs `True`).
    pub fn and(self, other: FoFormula) -> FoFormula {
        match (self, other) {
            (FoFormula::True, f) | (f, FoFormula::True) => f,
            (a, b) => FoFormula::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction builder.
    pub fn or(self, other: FoFormula) -> FoFormula {
        FoFormula::Or(Box::new(self), Box::new(other))
    }

    /// Negation builder.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> FoFormula {
        FoFormula::Not(Box::new(self))
    }

    /// `∃x φ`.
    pub fn exists(var: &str, body: FoFormula) -> FoFormula {
        FoFormula::Exists(var.to_string(), Box::new(body))
    }

    /// `∀x φ`.
    pub fn forall(var: &str, body: FoFormula) -> FoFormula {
        FoFormula::ForAll(var.to_string(), Box::new(body))
    }
}

impl fmt::Display for FoFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoFormula::True => write!(f, "⊤"),
            FoFormula::Atom { rel, vars } => write!(f, "{rel}({})", vars.join(", ")),
            FoFormula::Eq(a, b) => write!(f, "{a} = {b}"),
            FoFormula::And(a, b) => write!(f, "({a} ∧ {b})"),
            FoFormula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            FoFormula::Not(x) => write!(f, "¬{x}"),
            FoFormula::Exists(v, x) => write!(f, "∃{v}.{x}"),
            FoFormula::ForAll(v, x) => write!(f, "∀{v}.{x}"),
        }
    }
}

/// Model-check a sentence (all variables must be bound by quantifiers).
pub fn check_sentence(structure: &Structure, formula: &FoFormula) -> bool {
    check(structure, formula, &mut HashMap::new())
}

/// Model-check a formula under an environment.
pub fn check(structure: &Structure, formula: &FoFormula, env: &mut HashMap<String, usize>) -> bool {
    match formula {
        FoFormula::True => true,
        FoFormula::Atom { rel, vars } => {
            let tuple: Vec<usize> = vars
                .iter()
                .map(|v| {
                    *env.get(v)
                        .unwrap_or_else(|| panic!("unbound variable `{v}`"))
                })
                .collect();
            structure.holds(rel, &tuple)
        }
        FoFormula::Eq(a, b) => {
            let va = *env
                .get(a)
                .unwrap_or_else(|| panic!("unbound variable `{a}`"));
            let vb = *env
                .get(b)
                .unwrap_or_else(|| panic!("unbound variable `{b}`"));
            va == vb
        }
        FoFormula::And(a, b) => check(structure, a, env) && check(structure, b, env),
        FoFormula::Or(a, b) => check(structure, a, env) || check(structure, b, env),
        FoFormula::Not(x) => !check(structure, x, env),
        FoFormula::Exists(v, body) => {
            let saved = env.get(v).copied();
            let mut found = false;
            for d in 0..structure.domain {
                env.insert(v.clone(), d);
                if check(structure, body, env) {
                    found = true;
                    break;
                }
            }
            restore(env, v, saved);
            found
        }
        FoFormula::ForAll(v, body) => {
            let saved = env.get(v).copied();
            let mut all = true;
            for d in 0..structure.domain {
                env.insert(v.clone(), d);
                if !check(structure, body, env) {
                    all = false;
                    break;
                }
            }
            restore(env, v, saved);
            all
        }
    }
}

fn restore(env: &mut HashMap<String, usize>, var: &str, saved: Option<usize>) {
    match saved {
        Some(v) => {
            env.insert(var.to_string(), v);
        }
        None => {
            env.remove(var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reductions::Graph;

    fn path_graph() -> Structure {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        Structure::of_graph(&g)
    }

    #[test]
    fn exists_edge() {
        let s = path_graph();
        let f = FoFormula::exists(
            "x",
            FoFormula::exists("y", FoFormula::atom("edge", &["x", "y"])),
        );
        assert!(check_sentence(&s, &f));
    }

    #[test]
    fn no_self_loops() {
        let s = path_graph();
        // ∀x ¬edge(x,x)
        let f = FoFormula::forall("x", FoFormula::atom("edge", &["x", "x"]).not());
        assert!(check_sentence(&s, &f));
    }

    #[test]
    fn not_complete_graph() {
        let s = path_graph();
        // ∀x∀y (x=y ∨ edge(x,y)) fails: 0 and 2 are not adjacent.
        let f = FoFormula::forall(
            "x",
            FoFormula::forall(
                "y",
                FoFormula::Eq("x".into(), "y".into()).or(FoFormula::atom("edge", &["x", "y"])),
            ),
        );
        assert!(!check_sentence(&s, &f));
        // But it holds on K3.
        let k3 = Structure::of_graph(&Graph::complete(3));
        assert!(check_sentence(&k3, &f));
    }

    #[test]
    fn diameter_two_sentence() {
        // ∀x∀y (x=y ∨ edge(x,y) ∨ ∃z (edge(x,z) ∧ edge(z,y)))
        let s = path_graph();
        let f = FoFormula::forall(
            "x",
            FoFormula::forall(
                "y",
                FoFormula::Eq("x".into(), "y".into())
                    .or(FoFormula::atom("edge", &["x", "y"]))
                    .or(FoFormula::exists(
                        "z",
                        FoFormula::atom("edge", &["x", "z"])
                            .and(FoFormula::atom("edge", &["z", "y"])),
                    )),
            ),
        );
        assert!(check_sentence(&s, &f), "a 3-path has diameter 2");
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        let s = path_graph();
        check_sentence(&s, &FoFormula::atom("edge", &["x", "y"]));
    }

    #[test]
    fn empty_domain_quantifiers() {
        let s = Structure::new(0);
        assert!(check_sentence(
            &s,
            &FoFormula::forall("x", FoFormula::atom("edge", &["x", "x"]))
        ));
        assert!(!check_sentence(
            &s,
            &FoFormula::exists("x", FoFormula::True)
        ));
    }
}
