//! CNF formulas, literals, and assignments.

use std::fmt;

/// A literal: variable index (1-based) with a sign. `Lit::pos(3)` is `x3`,
/// `Lit::neg(3)` is `¬x3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(i32);

impl Lit {
    /// Positive literal of variable `v` (1-based).
    pub fn pos(v: usize) -> Lit {
        assert!(v >= 1);
        Lit(v as i32)
    }

    /// Negative literal of variable `v` (1-based).
    pub fn neg(v: usize) -> Lit {
        assert!(v >= 1);
        Lit(-(v as i32))
    }

    /// The variable (1-based).
    pub fn var(self) -> usize {
        self.0.unsigned_abs() as usize
    }

    /// Is the literal positive?
    pub fn is_pos(self) -> bool {
        self.0 > 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(-self.0)
    }

    /// Truth value under an assignment (index 0 unused).
    pub fn eval(self, assignment: &[bool]) -> bool {
        let v = assignment[self.var()];
        if self.is_pos() {
            v
        } else {
            !v
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "¬x{}", self.var())
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (variables are `1..=num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty (trivially satisfiable) formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Add a clause.
    pub fn push(&mut self, clause: Clause) {
        for l in &clause {
            assert!(l.var() <= self.num_vars, "literal {l} out of range");
        }
        self.clauses.push(clause);
    }

    /// Allocate a fresh variable and return its index.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars
    }

    /// Evaluate under a full assignment (`assignment[0]` ignored).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True with no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Maximum clause width.
    pub fn max_clause_width(&self) -> usize {
        self.clauses.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let p = Lit::pos(3);
        let n = Lit::neg(3);
        assert_eq!(p.var(), 3);
        assert!(p.is_pos() && !n.is_pos());
        assert_eq!(p.negate(), n);
        assert_eq!(n.negate(), p);
    }

    #[test]
    fn literal_eval() {
        let a = vec![false, true, false]; // x1=true, x2=false
        assert!(Lit::pos(1).eval(&a));
        assert!(!Lit::pos(2).eval(&a));
        assert!(Lit::neg(2).eval(&a));
    }

    #[test]
    fn cnf_eval() {
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
        let mut cnf = Cnf::new(3);
        cnf.push(vec![Lit::pos(1), Lit::neg(2)]);
        cnf.push(vec![Lit::pos(2), Lit::pos(3)]);
        assert!(cnf.eval(&[false, true, false, true]));
        assert!(!cnf.eval(&[false, false, true, false]));
    }

    #[test]
    fn fresh_vars_extend_range() {
        let mut cnf = Cnf::new(2);
        let v = cnf.fresh_var();
        assert_eq!(v, 3);
        cnf.push(vec![Lit::pos(v)]);
        assert_eq!(cnf.num_vars, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut cnf = Cnf::new(1);
        cnf.push(vec![Lit::pos(5)]);
    }

    #[test]
    fn display_format() {
        let mut cnf = Cnf::new(2);
        cnf.push(vec![Lit::pos(1), Lit::neg(2)]);
        assert_eq!(cnf.to_string(), "(x1 ∨ ¬x2)");
    }

    #[test]
    fn empty_cnf_is_true() {
        let cnf = Cnf::new(0);
        assert!(cnf.eval(&[false]));
        assert_eq!(cnf.max_clause_width(), 0);
    }
}
