//! Boolean circuits and the Tseitin transformation — Cook's Theorem,
//! operationally.
//!
//! Cook's construction shows any polynomial-time verifier can be compiled
//! into a CNF whose satisfiability coincides with acceptance. The
//! circuit is the standard intermediate form: express the verifier as
//! gates, then [`tseitin`] produces an *equisatisfiable* CNF of linear
//! size, one fresh variable per gate.

use crate::cnf::{Cnf, Lit};

/// A gate in a combinational circuit. Gates reference earlier gates by
/// index (topological order by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// A circuit input (numbered independently of gates).
    Input(usize),
    /// Conjunction of two earlier gates.
    And(usize, usize),
    /// Disjunction of two earlier gates.
    Or(usize, usize),
    /// Negation of an earlier gate.
    Not(usize),
}

/// A combinational circuit with a single output (the last gate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Circuit {
    /// Number of inputs.
    pub num_inputs: usize,
    /// Gates in topological order; the last gate is the output.
    pub gates: Vec<Gate>,
}

impl Circuit {
    /// New circuit with `num_inputs` inputs.
    pub fn new(num_inputs: usize) -> Circuit {
        Circuit {
            num_inputs,
            gates: Vec::new(),
        }
    }

    /// Add an input gate for input `i`, returning its gate index.
    pub fn input(&mut self, i: usize) -> usize {
        assert!(i < self.num_inputs);
        self.gates.push(Gate::Input(i));
        self.gates.len() - 1
    }

    /// Add an AND gate.
    pub fn and(&mut self, a: usize, b: usize) -> usize {
        assert!(a < self.gates.len() && b < self.gates.len());
        self.gates.push(Gate::And(a, b));
        self.gates.len() - 1
    }

    /// Add an OR gate.
    pub fn or(&mut self, a: usize, b: usize) -> usize {
        assert!(a < self.gates.len() && b < self.gates.len());
        self.gates.push(Gate::Or(a, b));
        self.gates.len() - 1
    }

    /// Add a NOT gate.
    pub fn not(&mut self, a: usize) -> usize {
        assert!(a < self.gates.len());
        self.gates.push(Gate::Not(a));
        self.gates.len() - 1
    }

    /// Evaluate the circuit on an input vector.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.num_inputs);
        let mut values = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match *g {
                Gate::Input(i) => inputs[i],
                Gate::And(a, b) => values[a] && values[b],
                Gate::Or(a, b) => values[a] || values[b],
                Gate::Not(a) => !values[a],
            };
            values.push(v);
        }
        *values.last().expect("circuit has at least one gate")
    }
}

/// Tseitin transformation: an equisatisfiable CNF asserting the output.
///
/// Variables `1..=num_inputs` are the circuit inputs; each gate gets one
/// additional variable. The final clause asserts the output gate.
pub fn tseitin(circuit: &Circuit) -> Cnf {
    let mut cnf = Cnf::new(circuit.num_inputs);
    let mut gate_var: Vec<usize> = Vec::with_capacity(circuit.gates.len());
    for g in &circuit.gates {
        let v = match *g {
            Gate::Input(i) => i + 1, // reuse the input variable
            _ => cnf.fresh_var(),
        };
        match *g {
            Gate::Input(_) => {}
            Gate::And(a, b) => {
                let (va, vb) = (gate_var[a], gate_var[b]);
                // v ↔ a ∧ b
                cnf.push(vec![Lit::neg(v), Lit::pos(va)]);
                cnf.push(vec![Lit::neg(v), Lit::pos(vb)]);
                cnf.push(vec![Lit::pos(v), Lit::neg(va), Lit::neg(vb)]);
            }
            Gate::Or(a, b) => {
                let (va, vb) = (gate_var[a], gate_var[b]);
                // v ↔ a ∨ b
                cnf.push(vec![Lit::pos(v), Lit::neg(va)]);
                cnf.push(vec![Lit::pos(v), Lit::neg(vb)]);
                cnf.push(vec![Lit::neg(v), Lit::pos(va), Lit::pos(vb)]);
            }
            Gate::Not(a) => {
                let va = gate_var[a];
                // v ↔ ¬a
                cnf.push(vec![Lit::neg(v), Lit::neg(va)]);
                cnf.push(vec![Lit::pos(v), Lit::pos(va)]);
            }
        }
        gate_var.push(v);
    }
    // Assert the output.
    let out = *gate_var.last().expect("nonempty circuit");
    cnf.push(vec![Lit::pos(out)]);
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::solve;

    /// XOR circuit: (a ∨ b) ∧ ¬(a ∧ b).
    fn xor_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        let a = c.input(0);
        let b = c.input(1);
        let o = c.or(a, b);
        let an = c.and(a, b);
        let nn = c.not(an);
        c.and(o, nn);
        c
    }

    #[test]
    fn circuit_eval_truth_table() {
        let c = xor_circuit();
        assert!(!c.eval(&[false, false]));
        assert!(c.eval(&[true, false]));
        assert!(c.eval(&[false, true]));
        assert!(!c.eval(&[true, true]));
    }

    #[test]
    fn tseitin_is_equisatisfiable() {
        let c = xor_circuit();
        let cnf = tseitin(&c);
        let model = solve(&cnf).expect("xor is satisfiable");
        // Extract the circuit input values and check the circuit accepts.
        let inputs: Vec<bool> = (0..c.num_inputs).map(|i| model[i + 1]).collect();
        assert!(
            c.eval(&inputs),
            "Tseitin model projects to an accepting input"
        );
    }

    #[test]
    fn unsatisfiable_circuit_gives_unsat_cnf() {
        // a ∧ ¬a.
        let mut c = Circuit::new(1);
        let a = c.input(0);
        let na = c.not(a);
        c.and(a, na);
        assert!(solve(&tseitin(&c)).is_none());
    }

    #[test]
    fn tautology_circuit_sat() {
        // a ∨ ¬a.
        let mut c = Circuit::new(1);
        let a = c.input(0);
        let na = c.not(a);
        c.or(a, na);
        assert!(solve(&tseitin(&c)).is_some());
    }

    #[test]
    fn tseitin_agrees_with_exhaustive_circuit_eval() {
        // For every input vector, the CNF restricted to those inputs is
        // satisfiable iff the circuit accepts.
        let c = xor_circuit();
        let cnf = tseitin(&c);
        for mask in 0..4u8 {
            let inputs = [mask & 1 != 0, mask & 2 != 0];
            let mut pinned = cnf.clone();
            for (i, &b) in inputs.iter().enumerate() {
                pinned.push(vec![if b { Lit::pos(i + 1) } else { Lit::neg(i + 1) }]);
            }
            assert_eq!(
                solve(&pinned).is_some(),
                c.eval(&inputs),
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn cnf_size_is_linear_in_gates() {
        let c = xor_circuit();
        let cnf = tseitin(&c);
        // ≤ 3 clauses per gate + 1 output assertion.
        assert!(cnf.len() <= 3 * c.gates.len() + 1);
    }
}
