//! # bq-logic
//!
//! The metatheorems of the paper's §3, executably.
//!
//! *Cook's Theorem* "makes an ingenious and unexpected connection between
//! … nondeterministic polynomial-bounded computation and Boolean
//! satisfiability"; *Fagin's Theorem* "makes such a connection between
//! computation and logic even more directly". This crate builds both ends
//! of those connections:
//!
//! * [`cnf`] — CNF formulas and assignments.
//! * [`dpll`] — a DPLL SAT solver (unit propagation, pure literals,
//!   frequency-ordered branching) plus a brute-force reference solver.
//! * [`circuit`] — boolean circuits and the Tseitin transformation: the
//!   operational core of Cook's construction (any polynomial verifier,
//!   expressed as a circuit, compiles to an equisatisfiable CNF).
//! * [`reductions`] — graph 3-colorability → SAT, k-colorability → SAT,
//!   CNF → 3-CNF, and a direct backtracking colorer as the baseline.
//! * [`structure`] — finite first-order structures.
//! * [`fo`] — first-order formulas and model checking.
//! * [`eso`] — existential second-order sentences and model checking by
//!   relation search: Fagin's NP = ∃SO, demonstrated on 3-colorability
//!   (experiment **E11**).

pub mod circuit;
pub mod cnf;
pub mod dpll;
pub mod eso;
pub mod fo;
pub mod reductions;
pub mod structure;

pub use circuit::{tseitin, Circuit, Gate};
pub use cnf::{Clause, Cnf, Lit};
pub use dpll::{solve, solve_brute_force, SolveStats};
pub use eso::{EsoSentence, RelDecl};
pub use fo::FoFormula;
pub use reductions::{color_graph_backtracking, coloring_to_sat, Graph};
pub use structure::Structure;
