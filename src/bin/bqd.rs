//! `bqd` — the big-queries server daemon.
//!
//! ```text
//! $ cargo run --bin bqd -- 127.0.0.1:4990
//! bqd: listening on 127.0.0.1:4990
//! ```
//!
//! Serves a fresh in-memory engine on the given address (default
//! `127.0.0.1:4990`; use port 0 for an ephemeral port and read the bound
//! address from the first line of output). Runs until stdin closes or a
//! line reading `quit` arrives, then drains gracefully: accepting stops,
//! in-flight statements get two seconds to finish and flush, stragglers
//! are cancelled through the cancel registry.
//!
//! With `--replica <primary-addr>` the daemon instead serves a
//! *read-only replica*: it subscribes to the primary's WAL stream,
//! applies it continuously, and refuses writes with a typed
//! `read-only-replica` error. A line reading `promote` on stdin stops
//! replication and opens the node for writes — the manual half of a
//! failover. A promoted node with `--backup-dir` immediately seeds a
//! fresh backup chain from its own horizon.
//!
//! With `--backup-dir <dir>` the daemon archives online backups into
//! `dir`: one full backup at startup, then an incremental every
//! `--backup-every <secs>` (default 60) in the background. Lines
//! reading `backup` (take an incremental now) and `scrub` (verify the
//! archive and live pages) on stdin drive the engine by hand.
//!
//! Connect with `bqsh`:
//!
//! ```text
//! bq> .connect 127.0.0.1:4990
//! ```

use bq_backup::{BackupEngine, DirArchive};
use bq_core::Db;
use bq_repl::{Replica, ReplicaConfig};
use bq_server::{serve, ServerConfig};
use std::io::{self, BufRead};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn main() -> io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:4990".to_string();
    let mut primary: Option<String> = None;
    let mut backup_dir: Option<String> = None;
    let mut backup_every: u64 = 60;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--replica" {
            let Some(p) = it.next() else {
                eprintln!("bqd: --replica requires the primary's address");
                std::process::exit(2);
            };
            primary = Some(p);
        } else if arg == "--backup-dir" {
            let Some(d) = it.next() else {
                eprintln!("bqd: --backup-dir requires a directory");
                std::process::exit(2);
            };
            backup_dir = Some(d);
        } else if arg == "--backup-every" {
            let secs = it.next().and_then(|s| s.parse().ok());
            let Some(secs) = secs else {
                eprintln!("bqd: --backup-every requires a number of seconds");
                std::process::exit(2);
            };
            backup_every = secs;
        } else {
            addr = arg;
        }
    }

    let mut replica = primary.map(|p| Replica::start(ReplicaConfig::new(p)));
    let db = match &replica {
        Some(r) => r.db(),
        None => Arc::new(RwLock::new(Db::new())),
    };
    let config = ServerConfig {
        addr,
        read_only: replica.is_some(),
        ..ServerConfig::default()
    };
    let server = serve(db.clone(), config)?;
    let role = if replica.is_some() {
        "replica"
    } else {
        "primary"
    };
    println!("bqd: listening on {} ({role})", server.local_addr());

    // Online backups: seed a full backup now (primaries only — a
    // replica's chain starts when it is promoted and owns its history),
    // then archive the WAL delta on a timer in the background.
    let backups = match backup_dir {
        Some(dir) => match DirArchive::open(std::path::Path::new(&dir)) {
            Ok(archive) => {
                let registry = db
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .backup_registry();
                let engine = Arc::new(BackupEngine::new(Arc::new(archive), registry));
                if replica.is_none() {
                    match engine.backup_full(&db) {
                        Ok(m) => println!("bqd: full backup #{} at wal {}", m.seq, m.wal_end),
                        Err(e) => eprintln!("bqd: initial backup failed: {e}"),
                    }
                }
                println!("bqd: archiving to {dir} every {backup_every}s");
                Some(engine)
            }
            Err(e) => {
                eprintln!("bqd: cannot open backup dir {dir}: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let stop = Arc::new(AtomicBool::new(false));
    // A still-replicating node defers to its primary's chain; this
    // flips on promotion and the schedule starts archiving.
    let archiving = Arc::new(AtomicBool::new(replica.is_none()));
    let schedule = backups.as_ref().map(|engine| {
        let engine = engine.clone();
        let db = db.clone();
        let stop = stop.clone();
        let archiving = archiving.clone();
        std::thread::spawn(move || {
            let tick = Duration::from_millis(100);
            let mut ticks = 0u64;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                ticks += 1;
                if ticks < backup_every.saturating_mul(10).max(1) {
                    continue;
                }
                ticks = 0;
                if !archiving.load(Ordering::SeqCst) {
                    continue;
                }
                if let Err(e) = engine.backup_incremental(&db) {
                    eprintln!("bqd: scheduled backup failed: {e}");
                }
            }
        })
    });

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "quit" => break,
            "promote" => {
                if let Some(r) = replica.take() {
                    let _ = r.promote();
                    server.set_read_only(false);
                    println!("bqd: promoted; accepting writes");
                    archiving.store(true, Ordering::SeqCst);
                    // A promoted node owns its history from its own
                    // horizon onward: seed a fresh chain immediately.
                    if let Some(engine) = &backups {
                        match engine.backup_full(&db) {
                            Ok(m) => {
                                println!("bqd: seeded backup chain #{} at wal {}", m.seq, m.wal_end)
                            }
                            Err(e) => eprintln!("bqd: post-promotion backup failed: {e}"),
                        }
                    }
                } else {
                    println!("bqd: already a primary");
                }
            }
            "backup" => match &backups {
                Some(engine) => match engine.backup_incremental(&db) {
                    Ok(m) => println!(
                        "bqd: {} backup #{} covers wal [{}, {})",
                        m.kind.as_str(),
                        m.seq,
                        m.wal_start,
                        m.wal_end
                    ),
                    Err(e) => eprintln!("bqd: backup failed: {e}"),
                },
                None => println!("bqd: no --backup-dir configured"),
            },
            "scrub" => match &backups {
                Some(engine) => match engine.scrub(Some(&db)) {
                    Ok(r) => println!(
                        "bqd: scrub: {} manifests ({} bad), {} objects ({} bad), {} pages ({} restored)",
                        r.manifests_checked,
                        r.manifests_bad,
                        r.objects_checked,
                        r.objects_bad,
                        r.pages_checked,
                        r.pages_restored
                    ),
                    Err(e) => eprintln!("bqd: scrub failed: {e}"),
                },
                None => println!("bqd: no --backup-dir configured"),
            },
            _ => {}
        }
    }

    println!("bqd: draining");
    stop.store(true, Ordering::SeqCst);
    if let Some(handle) = schedule {
        let _ = handle.join();
    }
    drop(replica);
    server.shutdown(Duration::from_secs(2));
    println!("bqd: stopped");
    Ok(())
}
