//! `bqd` — the big-queries server daemon.
//!
//! ```text
//! $ cargo run --bin bqd -- 127.0.0.1:4990
//! bqd: listening on 127.0.0.1:4990
//! ```
//!
//! Serves a fresh in-memory engine on the given address (default
//! `127.0.0.1:4990`; use port 0 for an ephemeral port and read the bound
//! address from the first line of output). Runs until stdin closes or a
//! line reading `quit` arrives, then drains gracefully: accepting stops,
//! in-flight statements get two seconds to finish and flush, stragglers
//! are cancelled through the cancel registry.
//!
//! Connect with `bqsh`:
//!
//! ```text
//! bq> .connect 127.0.0.1:4990
//! ```

use bq_core::Db;
use bq_server::{serve, ServerConfig};
use std::io::{self, BufRead};
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn main() -> io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:4990".to_string());
    let config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    let server = serve(Arc::new(RwLock::new(Db::new())), config)?;
    println!("bqd: listening on {}", server.local_addr());

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "quit" {
            break;
        }
    }

    println!("bqd: draining");
    server.shutdown(Duration::from_secs(2));
    println!("bqd: stopped");
    Ok(())
}
