//! `bqd` — the big-queries server daemon.
//!
//! ```text
//! $ cargo run --bin bqd -- 127.0.0.1:4990
//! bqd: listening on 127.0.0.1:4990
//! ```
//!
//! Serves a fresh in-memory engine on the given address (default
//! `127.0.0.1:4990`; use port 0 for an ephemeral port and read the bound
//! address from the first line of output). Runs until stdin closes or a
//! line reading `quit` arrives, then drains gracefully: accepting stops,
//! in-flight statements get two seconds to finish and flush, stragglers
//! are cancelled through the cancel registry.
//!
//! With `--replica <primary-addr>` the daemon instead serves a
//! *read-only replica*: it subscribes to the primary's WAL stream,
//! applies it continuously, and refuses writes with a typed
//! `read-only-replica` error. A line reading `promote` on stdin stops
//! replication and opens the node for writes — the manual half of a
//! failover.
//!
//! Connect with `bqsh`:
//!
//! ```text
//! bq> .connect 127.0.0.1:4990
//! ```

use bq_core::Db;
use bq_repl::{Replica, ReplicaConfig};
use bq_server::{serve, ServerConfig};
use std::io::{self, BufRead};
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn main() -> io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:4990".to_string();
    let mut primary: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--replica" {
            let Some(p) = it.next() else {
                eprintln!("bqd: --replica requires the primary's address");
                std::process::exit(2);
            };
            primary = Some(p);
        } else {
            addr = arg;
        }
    }

    let mut replica = primary.map(|p| Replica::start(ReplicaConfig::new(p)));
    let db = match &replica {
        Some(r) => r.db(),
        None => Arc::new(RwLock::new(Db::new())),
    };
    let config = ServerConfig {
        addr,
        read_only: replica.is_some(),
        ..ServerConfig::default()
    };
    let server = serve(db, config)?;
    let role = if replica.is_some() {
        "replica"
    } else {
        "primary"
    };
    println!("bqd: listening on {} ({role})", server.local_addr());

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "quit" => break,
            "promote" => {
                if let Some(r) = replica.take() {
                    let _ = r.promote();
                    server.set_read_only(false);
                    println!("bqd: promoted; accepting writes");
                } else {
                    println!("bqd: already a primary");
                }
            }
            _ => {}
        }
    }

    println!("bqd: draining");
    drop(replica);
    server.shutdown(Duration::from_secs(2));
    println!("bqd: stopped");
    Ok(())
}
