//! `bqsh` — a minimal interactive shell over the `big-queries` engine.
//!
//! ```text
//! $ cargo run --bin bqsh
//! bq> create table emp (name str, dept str, sal int)
//! bq> insert into emp values ('ann', 'cs', 90)
//! bq> select e.name from emp e where e.sal > 50
//! bq> .datalog tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z). ? tc(1, X)
//! bq> .explain select e.name from emp e where e.sal > 50
//! bq> .profile select e.name from emp e where e.sal > 50
//! bq> .stats
//! bq> .mode par 4
//! bq> .tables
//! bq> .help
//! bq> .quit
//! ```
//!
//! Reads from stdin; every statement is one line. Dot-commands are
//! dispatched through the single static [`COMMANDS`] table, which is also
//! what `.help` renders — the two cannot drift apart.

use bq_core::Db;
use bq_exec::ExecMode;
use bq_relational::{Type, Value};
use std::io::{self, BufRead, Write};

/// One shell dot-command: dispatch name, usage line, help text, handler.
struct Command {
    name: &'static str,
    usage: &'static str,
    help: &'static str,
    run: fn(&mut Db, &str) -> Result<String, String>,
}

/// The single source of truth for dot-commands: the dispatcher looks names
/// up here and `.help` prints exactly this table.
static COMMANDS: &[Command] = &[
    Command {
        name: ".tables",
        usage: ".tables",
        help: "list tables",
        run: |db, _| Ok(db.tables().join(", ")),
    },
    Command {
        name: ".datalog",
        usage: ".datalog <rules> ? <query>",
        help: "run a Datalog program over the tables",
        run: |db, rest| run_datalog(db, rest),
    },
    Command {
        name: ".explain",
        usage: ".explain <sql>",
        help: "run a query, print the physical plan with per-operator stats",
        run: |db, rest| db.explain_sql(rest).map_err(|e| e.to_string()),
    },
    Command {
        name: ".profile",
        usage: ".profile <sql>",
        help: "run a query, print wall time, plan, counter deltas, and spans",
        run: run_profile,
    },
    Command {
        name: ".stats",
        usage: ".stats [json|reset]",
        help: "dump the global metrics registry (or reset it)",
        run: run_stats,
    },
    Command {
        name: ".trace",
        usage: ".trace [on|off]",
        help: "show or set whether the span tracer records",
        run: run_trace,
    },
    Command {
        name: ".mode",
        usage: ".mode [seq | par [n]]",
        help: "show or set the execution mode",
        run: |db, rest| {
            if rest.is_empty() {
                Ok(format!("mode: {}", db.exec_mode()))
            } else {
                set_mode(db, rest)
            }
        },
    },
    Command {
        name: ".limits",
        usage: ".limits [show | mem=<bytes> | deadline=<ms> | iters=<n> | slots=<n> [queue=<n>] | off]",
        help: "show or set session resource limits (memory budget, deadline, iteration cap, admission slots)",
        run: run_limits,
    },
    Command {
        name: ".faults",
        usage: ".faults [list | on <site> <policy> | off <site> | seed <n> | reset]",
        help: "inspect or arm failpoints (policy: error|panic|corrupt@always|nth=N|prob=P)",
        run: |_, rest| run_faults(rest),
    },
    Command {
        name: ".help",
        usage: ".help",
        help: "show this command table",
        run: |_, _| Ok(help_text()),
    },
    Command {
        name: ".quit",
        usage: ".quit (or .exit)",
        help: "leave the shell",
        run: |_, _| Ok("bye".to_string()),
    },
];

fn help_text() -> String {
    let width = COMMANDS.iter().map(|c| c.usage.len()).max().unwrap_or(0);
    let mut s = String::from("commands:\n");
    for c in COMMANDS {
        s.push_str(&format!("  {:width$}  {}\n", c.usage, c.help));
    }
    s.push_str("anything else is parsed as SQL-ish (create table / insert into / select)");
    s
}

fn main() {
    let mut db = Db::new();
    let stdin = io::stdin();
    let mut out = io::stdout();
    print!("bq> ");
    let _ = out.flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if !line.is_empty() {
            if line == ".quit" || line == ".exit" {
                break;
            }
            match execute(&mut db, line) {
                Ok(msg) => println!("{msg}"),
                Err(e) => println!("error: {e}"),
            }
        }
        print!("bq> ");
        let _ = out.flush();
    }
    println!();
}

fn execute(db: &mut Db, line: &str) -> Result<String, String> {
    if line.starts_with('.') {
        let token = line.split_whitespace().next().unwrap_or(line);
        let name = if token == ".exit" { ".quit" } else { token };
        let Some(cmd) = COMMANDS.iter().find(|c| c.name == name) else {
            return Err(format!("unknown command `{token}` (try .help)"));
        };
        return (cmd.run)(db, line[token.len()..].trim());
    }
    let lower = line.to_lowercase();
    if lower.starts_with("create table") {
        return create_table(db, line);
    }
    if lower.starts_with("insert into") {
        return insert(db, line);
    }
    if lower.starts_with("select") {
        let rel = db.sql(line).map_err(|e| e.to_string())?;
        let mut s = format!("{}", rel.schema());
        for t in rel.iter() {
            s.push_str(&format!("\n  {t}"));
        }
        s.push_str(&format!("\n({} rows)", rel.len()));
        return Ok(s);
    }
    Err(format!("unrecognized statement: `{line}`"))
}

/// `create table name (col type, ...)`
fn create_table(db: &mut Db, line: &str) -> Result<String, String> {
    let open = line.find('(').ok_or("expected column list")?;
    let close = line.rfind(')').ok_or("unterminated column list")?;
    let name = line[..open]
        .split_whitespace()
        .nth(2)
        .ok_or("expected table name")?;
    let mut cols: Vec<(String, Type)> = Vec::new();
    for part in line[open + 1..close].split(',') {
        let mut it = part.split_whitespace();
        let col = it.next().ok_or("expected column name")?;
        let ty = match it
            .next()
            .ok_or("expected column type")?
            .to_lowercase()
            .as_str()
        {
            "int" | "integer" => Type::Int,
            "str" | "string" | "text" | "varchar" => Type::Str,
            "bool" | "boolean" => Type::Bool,
            other => return Err(format!("unknown type `{other}`")),
        };
        cols.push((col.to_string(), ty));
    }
    let refs: Vec<(&str, Type)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    db.create_table(name, &refs).map_err(|e| e.to_string())?;
    Ok(format!("created table {name}"))
}

/// `insert into name values (v, ...)`
fn insert(db: &mut Db, line: &str) -> Result<String, String> {
    let open = line.find('(').ok_or("expected value list")?;
    let close = line.rfind(')').ok_or("unterminated value list")?;
    let name = line[..open]
        .split_whitespace()
        .nth(2)
        .ok_or("expected table name")?;
    let mut row: Vec<Value> = Vec::new();
    for part in split_top_level(&line[open + 1..close]) {
        let part = part.trim();
        let v = if let Some(stripped) = part.strip_prefix('\'') {
            Value::Str(stripped.trim_end_matches('\'').to_string())
        } else if part.eq_ignore_ascii_case("true") {
            Value::Bool(true)
        } else if part.eq_ignore_ascii_case("false") {
            Value::Bool(false)
        } else if part.eq_ignore_ascii_case("null") {
            Value::Null(0)
        } else {
            Value::Int(
                part.parse::<i64>()
                    .map_err(|_| format!("bad value `{part}`"))?,
            )
        };
        row.push(v);
    }
    db.insert(name, row).map_err(|e| e.to_string())?;
    Ok("1 row".to_string())
}

/// Split on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// `.mode seq` | `.mode par [n]`
fn set_mode(db: &mut Db, rest: &str) -> Result<String, String> {
    let mut it = rest.split_whitespace();
    let mode = match it.next() {
        Some("seq") | Some("sequential") => ExecMode::Sequential,
        Some("par") | Some("parallel") => {
            let workers = match it.next() {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("bad worker count `{n}`"))?,
                None => bq_exec::engine::default_parallelism(),
            };
            if workers == 0 {
                return Err("worker count must be positive".into());
            }
            ExecMode::Parallel(workers)
        }
        _ => return Err("expected `.mode seq` or `.mode par [n]`".into()),
    };
    db.set_exec_mode(mode);
    Ok(format!("mode: {mode}"))
}

/// `.stats` | `.stats json` | `.stats reset`
fn run_stats(db: &mut Db, rest: &str) -> Result<String, String> {
    match rest {
        "" => Ok(db.metrics_text()),
        "json" => Ok(db.metrics_json()),
        "reset" => {
            db.reset_metrics();
            Ok("metrics reset".to_string())
        }
        other => Err(format!("expected `.stats [json|reset]`, got `{other}`")),
    }
}

/// `.trace` | `.trace on` | `.trace off`
fn run_trace(db: &mut Db, rest: &str) -> Result<String, String> {
    match rest {
        "on" => {
            db.set_tracing(true);
            Ok("tracing on".to_string())
        }
        "off" => {
            db.set_tracing(false);
            Ok("tracing off".to_string())
        }
        "" => Ok(format!(
            "tracing {}",
            if db.tracing() { "on" } else { "off" }
        )),
        other => Err(format!("expected `.trace [on|off]`, got `{other}`")),
    }
}

/// `.limits [show | mem=<bytes> | deadline=<ms> | iters=<n> | slots=<n> [queue=<n>] | off]`
///
/// Keys compose in one call (`.limits mem=1048576 deadline=500`); `off`
/// clears every limit and restores unbounded admission.
fn run_limits(db: &mut Db, rest: &str) -> Result<String, String> {
    fn render(db: &Db) -> String {
        let l = db.limits();
        let (slots, queue) = db.admission_limits();
        let mem = l
            .memory_bytes
            .map_or("unlimited".to_string(), |b| format!("{b} B"));
        let deadline = l
            .deadline_ms
            .map_or("none".to_string(), |ms| format!("{ms} ms"));
        let iters = l
            .max_iterations
            .map_or("none".to_string(), |n| n.to_string());
        let slots = if slots == usize::MAX {
            "unbounded".to_string()
        } else {
            format!("{slots} (queue {queue})")
        };
        format!("mem: {mem}\ndeadline: {deadline}\niters: {iters}\nslots: {slots}")
    }
    if rest.is_empty() || rest == "show" {
        return Ok(render(db));
    }
    if rest == "off" {
        db.set_limits(bq_core::SessionLimits::default());
        db.set_admission(usize::MAX, 0);
        return Ok(render(db));
    }
    let mut limits = db.limits();
    let mut slots: Option<usize> = None;
    let mut queue: Option<usize> = None;
    for token in rest.split_whitespace() {
        let (key, val) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{token}` (see .help)"))?;
        let parse = |v: &str| v.parse::<u64>().map_err(|_| format!("bad number `{v}`"));
        match key {
            "mem" => limits.memory_bytes = Some(parse(val)?),
            "deadline" => limits.deadline_ms = Some(parse(val)?),
            "iters" => limits.max_iterations = Some(parse(val)?),
            "slots" => slots = Some(parse(val)? as usize),
            "queue" => queue = Some(parse(val)? as usize),
            other => return Err(format!("unknown limit `{other}` (see .help)")),
        }
    }
    if queue.is_some() && slots.is_none() {
        return Err("queue=<n> requires slots=<n>".to_string());
    }
    db.set_limits(limits);
    if let Some(s) = slots {
        if s == 0 {
            return Err("slots must be positive".to_string());
        }
        db.set_admission(s, queue.unwrap_or(0));
    }
    Ok(render(db))
}

/// `.faults [list | on <site> <policy> | off <site> | seed <n> | reset]`
///
/// Arms sites globally: a shell session wants faults to hit the worker
/// pool, not just the REPL thread.
fn run_faults(rest: &str) -> Result<String, String> {
    let mut it = rest.split_whitespace();
    match it.next() {
        None | Some("list") => {
            let armed = bq_faults::list();
            let mut s = String::from("site                     armed  hits  fires  simulates\n");
            for (site, desc) in bq_faults::CATALOG {
                let row = armed.iter().find(|i| i.site == *site);
                s.push_str(&format!(
                    "{site:24} {:6} {:5} {:6}  {desc}\n",
                    row.map_or("-".to_string(), |i| i.policy.clone()),
                    row.map_or(0, |i| i.hits),
                    row.map_or(0, |i| i.fires),
                ));
            }
            // Ad-hoc sites armed outside the catalog still show up.
            for i in armed
                .iter()
                .filter(|i| !bq_faults::CATALOG.iter().any(|(site, _)| *site == i.site))
            {
                s.push_str(&format!(
                    "{:24} {:6} {:5} {:6}  (not in catalog)\n",
                    i.site, i.policy, i.hits, i.fires
                ));
            }
            Ok(s.trim_end().to_string())
        }
        Some("on") => {
            let site = it.next().ok_or("usage: .faults on <site> <policy>")?;
            if !bq_faults::CATALOG.iter().any(|(s, _)| *s == site) {
                return Err(format!("unknown site `{site}` (see .faults list)"));
            }
            let policy = bq_faults::parse_policy(
                it.next()
                    .ok_or("usage: .faults on <site> <action>@<trigger>, e.g. `corrupt@nth=3`")?,
            )?;
            bq_faults::configure(site, policy);
            Ok(format!("armed {site} with {policy}"))
        }
        Some("off") => {
            let site = it.next().ok_or("usage: .faults off <site>")?;
            bq_faults::off(site);
            Ok(format!("disarmed {site}"))
        }
        Some("seed") => {
            let n = it.next().ok_or("usage: .faults seed <n>")?;
            let seed = n.parse::<u64>().map_err(|_| format!("bad seed `{n}`"))?;
            bq_faults::set_seed(seed);
            Ok(format!("fault seed set to {seed}"))
        }
        Some("reset") => {
            bq_faults::reset();
            Ok("all failpoints disarmed".to_string())
        }
        Some(other) => Err(format!(
            "expected `.faults [list|on|off|seed|reset]`, got `{other}`"
        )),
    }
}

/// `.profile <sql>`
fn run_profile(db: &mut Db, rest: &str) -> Result<String, String> {
    if rest.is_empty() {
        return Err("usage: .profile <sql>".to_string());
    }
    let (rel, profile) = db.profile_sql(rest).map_err(|e| e.to_string())?;
    Ok(format!("{}({} rows)", profile.render(), rel.len()))
}

/// `.datalog <rules> ? <query-atom>`
fn run_datalog(db: &Db, rest: &str) -> Result<String, String> {
    let (program, query) = rest
        .rsplit_once('?')
        .ok_or("expected `.datalog <rules> ? <query>`")?;
    let answers = db
        .datalog(program.trim(), query.trim())
        .map_err(|e| e.to_string())?;
    let mut s = String::new();
    for a in &answers {
        let row: Vec<String> = a.iter().map(ToString::to_string).collect();
        s.push_str(&format!("  ({})\n", row.join(", ")));
    }
    s.push_str(&format!("({} answers)", answers.len()));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Db {
        let mut db = Db::new();
        execute(&mut db, "create table emp (name str, dept str, sal int)").unwrap();
        execute(&mut db, "insert into emp values ('ann', 'cs', 90)").unwrap();
        execute(&mut db, "insert into emp values ('bob', 'ee', 70)").unwrap();
        db
    }

    #[test]
    fn create_insert_select_pipeline() {
        let mut db = fresh();
        let out = execute(&mut db, "select e.name from emp e where e.sal > 80").unwrap();
        assert!(out.contains("ann"));
        assert!(out.contains("(1 rows)"));
    }

    #[test]
    fn tables_listing() {
        let mut db = fresh();
        assert_eq!(execute(&mut db, ".tables").unwrap(), "emp");
    }

    #[test]
    fn datalog_command() {
        let mut db = fresh();
        let out = execute(
            &mut db,
            ".datalog peer(X, Y) :- emp(X, D, S1), emp(Y, D, S2), X != Y. ? peer(X, Y)",
        )
        .unwrap();
        assert!(out.contains("(0 answers)"), "no same-dept pairs: {out}");
    }

    #[test]
    fn quoted_commas_survive_insert() {
        let mut db = Db::new();
        execute(&mut db, "create table t (a str, b int)").unwrap();
        execute(&mut db, "insert into t values ('x, y', 3)").unwrap();
        let out = execute(&mut db, "select t.a from t where t.b = 3").unwrap();
        assert!(out.contains("x, y"));
    }

    #[test]
    fn explain_shows_the_plan_tree() {
        let mut db = fresh();
        let out = execute(
            &mut db,
            ".explain select e.name from emp e where e.sal > 80",
        )
        .unwrap();
        assert!(out.starts_with("mode:"), "{out}");
        assert!(out.contains("SeqScan [emp]"), "{out}");
        assert!(out.contains("rows="), "{out}");
    }

    #[test]
    fn mode_switching() {
        let mut db = fresh();
        assert_eq!(execute(&mut db, ".mode seq").unwrap(), "mode: sequential");
        assert_eq!(execute(&mut db, ".mode").unwrap(), "mode: sequential");
        assert_eq!(
            execute(&mut db, ".mode par 2").unwrap(),
            "mode: parallel(2)"
        );
        assert!(execute(&mut db, ".mode par x").is_err());
        assert!(execute(&mut db, ".mode par 0").is_err());
        assert!(execute(&mut db, ".mode warp").is_err());
        // Queries still answer after switching.
        let out = execute(&mut db, "select e.name from emp e where e.sal > 80").unwrap();
        assert!(out.contains("ann"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut db = fresh();
        assert!(execute(&mut db, "select nope").is_err());
        assert!(execute(&mut db, "create table emp (a int)").is_err());
        assert!(execute(&mut db, "insert into emp values ('only-one')").is_err());
        assert!(execute(&mut db, "gibberish").is_err());
        assert!(execute(&mut db, ".bogus").is_err());
    }

    /// Regression for the satellite requirement: the dispatcher and `.help`
    /// share one table, so every dispatched command must appear in `.help`
    /// and be reachable through `execute`.
    #[test]
    fn every_dispatched_command_appears_in_help() {
        let mut db = fresh();
        let help = execute(&mut db, ".help").unwrap();
        for cmd in COMMANDS {
            assert!(
                help.contains(cmd.name),
                "`{}` missing from .help:\n{help}",
                cmd.name
            );
            assert!(
                help.contains(cmd.usage),
                "usage for `{}` missing from .help:\n{help}",
                cmd.name
            );
            // The command is actually dispatchable by its listed name
            // (argument-less invocation; a usage error is still dispatch).
            let dispatched = execute(&mut db, cmd.name);
            assert!(
                dispatched != Err(format!("unknown command `{}` (try .help)", cmd.name)),
                "`{}` listed in .help but not dispatched",
                cmd.name
            );
        }
        // The `.exit` alias reaches `.quit`.
        assert_eq!(execute(&mut db, ".exit").unwrap(), "bye");
    }

    #[test]
    fn faults_command_lists_arms_and_disarms() {
        let mut db = fresh();
        let list = execute(&mut db, ".faults").unwrap();
        for (site, _) in bq_faults::CATALOG {
            assert!(list.contains(site), "`{site}` missing from .faults list");
        }
        assert!(execute(&mut db, ".faults on wal.append.torn corrupt@nth=3")
            .unwrap()
            .contains("armed wal.append.torn"));
        let listed = execute(&mut db, ".faults list").unwrap();
        assert!(listed.contains("corrupt@nth=3"), "{listed}");
        assert!(execute(&mut db, ".faults on bogus.site error@always").is_err());
        assert!(execute(&mut db, ".faults on wal.sync.skip nonsense").is_err());
        assert!(execute(&mut db, ".faults seed 7").unwrap().contains('7'));
        assert!(execute(&mut db, ".faults seed x").is_err());
        assert!(execute(&mut db, ".faults off wal.append.torn")
            .unwrap()
            .contains("disarmed"));
        assert_eq!(
            execute(&mut db, ".faults reset").unwrap(),
            "all failpoints disarmed"
        );
        assert!(execute(&mut db, ".faults frobnicate").is_err());
    }

    #[test]
    fn limits_command_sets_and_clears_session_defaults() {
        let mut db = fresh();
        let shown = execute(&mut db, ".limits").unwrap();
        assert!(shown.contains("mem: unlimited"), "{shown}");
        assert!(shown.contains("slots: unbounded"), "{shown}");

        let set = execute(&mut db, ".limits mem=1048576 deadline=5000 iters=100").unwrap();
        assert!(set.contains("mem: 1048576 B"), "{set}");
        assert!(set.contains("deadline: 5000 ms"), "{set}");
        assert!(set.contains("iters: 100"), "{set}");
        // Generous limits leave ordinary queries untouched.
        let out = execute(&mut db, "select e.name from emp e where e.sal > 80").unwrap();
        assert!(out.contains("ann"));

        // A starvation budget stops the same query with a typed message.
        execute(&mut db, ".limits mem=16").unwrap();
        let err = execute(&mut db, "select e.name from emp e").unwrap_err();
        assert!(err.contains("memory budget exceeded"), "{err}");

        let slots = execute(&mut db, ".limits slots=2 queue=4").unwrap();
        assert!(slots.contains("slots: 2 (queue 4)"), "{slots}");

        let off = execute(&mut db, ".limits off").unwrap();
        assert!(off.contains("mem: unlimited"), "{off}");
        assert!(off.contains("slots: unbounded"), "{off}");
        assert!(execute(&mut db, "select e.name from emp e").is_ok());

        assert!(execute(&mut db, ".limits queue=4").is_err());
        assert!(execute(&mut db, ".limits slots=0").is_err());
        assert!(execute(&mut db, ".limits mem=lots").is_err());
        assert!(execute(&mut db, ".limits frobnicate").is_err());
    }

    #[test]
    fn stats_trace_and_profile_commands() {
        let mut db = fresh();
        execute(&mut db, "select e.name from emp e").unwrap();
        let stats = execute(&mut db, ".stats").unwrap();
        assert!(stats.contains("bq_exec_operators_total"), "{stats}");
        let json = execute(&mut db, ".stats json").unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(execute(&mut db, ".stats bogus").is_err());

        assert_eq!(execute(&mut db, ".trace on").unwrap(), "tracing on");
        assert_eq!(execute(&mut db, ".trace").unwrap(), "tracing on");
        assert_eq!(execute(&mut db, ".trace off").unwrap(), "tracing off");
        assert!(execute(&mut db, ".trace sideways").is_err());

        let profile = execute(&mut db, ".profile select e.name from emp e").unwrap();
        assert!(profile.contains("-- profile:"), "{profile}");
        assert!(profile.contains("SeqScan [emp]"), "{profile}");
        assert!(profile.contains("(2 rows)"), "{profile}");
        assert!(execute(&mut db, ".profile").is_err());
    }
}
