//! `bqsh` — a minimal interactive shell over the `big-queries` engine.
//!
//! ```text
//! $ cargo run --bin bqsh
//! bq> create table emp (name str, dept str, sal int)
//! bq> insert into emp values ('ann', 'cs', 90)
//! bq> select e.name from emp e where e.sal > 50
//! bq> begin
//! bq> insert into emp values ('cat', 'cs', 80)
//! bq> commit
//! bq> .connect 127.0.0.1:4990
//! bq> .queries
//! bq> .kill 7
//! bq> .disconnect
//! bq> .datalog tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z). ? tc(1, X)
//! bq> .explain select e.name from emp e where e.sal > 50
//! bq> .help
//! bq> .quit
//! ```
//!
//! Reads from stdin; every statement is one line. Statements run through a
//! [`Driver`]: embedded by default, or over the wire after `.connect` — the
//! shell cannot tell the difference, which is the point. Dot-commands are
//! dispatched through the single static [`COMMANDS`] table, which is also
//! what `.help` renders — the two cannot drift apart.

use bq_backup::{BackupEngine, DirArchive};
use bq_exec::ExecMode;
use bq_server::{Connection, Driver, EmbeddedDriver, Outcome};
use std::io::{self, BufRead, Write};
use std::sync::Arc;

/// The shell's state: the always-present embedded session plus an optional
/// remote one. Statements go to the remote session while it is connected.
struct Shell {
    embedded: EmbeddedDriver,
    remote: Option<Connection>,
    /// Last mode set through the shell (shown by `.mode` when remote,
    /// where the engine-wide mode is not queryable over the wire).
    mode: Option<ExecMode>,
    /// Backup engine attached by `.backup <dir>`, keyed by its directory
    /// so later `.backup`/`.scrub` calls reuse the chain.
    backup: Option<(String, Arc<BackupEngine>)>,
}

impl Shell {
    fn new() -> Shell {
        Shell {
            embedded: EmbeddedDriver::default(),
            remote: None,
            mode: None,
            backup: None,
        }
    }

    /// The active driver: remote if connected, embedded otherwise.
    fn driver(&mut self) -> &mut dyn Driver {
        match self.remote.as_mut() {
            Some(conn) => conn,
            None => &mut self.embedded,
        }
    }

    /// Commands that reach into the engine (`.explain`, `.datalog`, …)
    /// have no wire equivalent and refuse to run while connected.
    fn require_embedded(&self, cmd: &str) -> Result<(), String> {
        if self.remote.is_some() {
            return Err(format!("{cmd} is embedded-only; .disconnect first"));
        }
        Ok(())
    }
}

/// One shell dot-command: dispatch name, usage line, help text, handler.
struct Command {
    name: &'static str,
    usage: &'static str,
    help: &'static str,
    run: fn(&mut Shell, &str) -> Result<String, String>,
}

/// The single source of truth for dot-commands: the dispatcher looks names
/// up here and `.help` prints exactly this table.
static COMMANDS: &[Command] = &[
    Command {
        name: ".tables",
        usage: ".tables",
        help: "list tables (embedded)",
        run: |sh, _| {
            sh.require_embedded(".tables")?;
            Ok(sh.embedded.with_db(|db| db.tables().join(", ")))
        },
    },
    Command {
        name: ".connect",
        usage: ".connect <host:port>",
        help: "attach to a bq-server; statements then travel the wire",
        run: run_connect,
    },
    Command {
        name: ".disconnect",
        usage: ".disconnect",
        help: "detach from the server; statements run embedded again",
        run: |sh, _| match sh.remote.take() {
            Some(conn) => {
                conn.close();
                Ok("disconnected; statements run embedded".to_string())
            }
            None => Err("not connected".to_string()),
        },
    },
    Command {
        name: ".queries",
        usage: ".queries",
        help: "list running queries (a select over bq.queries; ids feed .kill)",
        run: |sh, _| {
            // The system catalog *is* the interface: this is an ordinary
            // select over the `bq.queries` virtual table, embedded or over
            // the wire — it will list itself, like any honest process list.
            sh.driver()
                .execute(
                    "select q.query, q.session, q.kind, q.elapsed_ms, q.sql \
                     from bq.queries q",
                )
                .map(render_outcome)
                .map_err(|e| e.to_string())
        },
    },
    Command {
        name: ".replicas",
        usage: ".replicas",
        help: "list attached replicas and their lag (a select over bq.replicas)",
        run: |sh, _| {
            // Same philosophy as .queries: replication status is just a
            // select over the `bq.replicas` virtual table, so the same
            // command works embedded, on a primary, or on a replica.
            sh.driver()
                .execute(
                    "select r.replica, r.endpoint, r.state, r.acked_lsn, \
                     r.lag_bytes, r.lag_ms from bq.replicas r",
                )
                .map(render_outcome)
                .map_err(|e| e.to_string())
        },
    },
    Command {
        name: ".slow",
        usage: ".slow [n]",
        help: "show the last n slow-log entries (default 10; a select over bq.slow_log)",
        run: run_slow,
    },
    Command {
        name: ".analyze",
        usage: ".analyze <select>",
        help: "EXPLAIN ANALYZE: run the query, print per-operator rows/time/memory",
        run: |sh, rest| {
            if rest.is_empty() {
                return Err("usage: .analyze <select>".to_string());
            }
            sh.driver()
                .execute(&format!("explain analyze {rest}"))
                .map(render_outcome)
                .map_err(|e| e.to_string())
        },
    },
    Command {
        name: ".kill",
        usage: ".kill <id>",
        help: "cancel a running query by kill id (see .queries)",
        run: |sh, rest| {
            let id = rest
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad query id `{rest}`"))?;
            if sh.driver().kill(id).map_err(|e| e.to_string())? {
                Ok(format!("killed query {id}"))
            } else {
                Ok(format!("no running query {id}"))
            }
        },
    },
    Command {
        name: ".prepare",
        usage: ".prepare <select>",
        help: "parse+optimize a select once; returns an id for .exec",
        run: |sh, rest| {
            let id = sh.driver().prepare(rest).map_err(|e| e.to_string())?;
            Ok(format!("prepared statement {id}"))
        },
    },
    Command {
        name: ".exec",
        usage: ".exec <id>",
        help: "run a prepared statement",
        run: |sh, rest| {
            let id = rest
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad statement id `{rest}`"))?;
            sh.driver()
                .execute_prepared(id)
                .map(render_outcome)
                .map_err(|e| e.to_string())
        },
    },
    Command {
        name: ".datalog",
        usage: ".datalog <rules> ? <query>",
        help: "run a Datalog program over the tables (embedded)",
        run: run_datalog,
    },
    Command {
        name: ".explain",
        usage: ".explain <sql>",
        help: "run a query, print the physical plan with per-operator stats (embedded)",
        run: |sh, rest| {
            sh.require_embedded(".explain")?;
            sh.embedded
                .with_db(|db| db.explain_sql(rest))
                .map_err(|e| e.to_string())
        },
    },
    Command {
        name: ".profile",
        usage: ".profile <sql>",
        help: "run a query, print wall time, plan, counter deltas, and spans (embedded)",
        run: run_profile,
    },
    Command {
        name: ".stats",
        usage: ".stats [json|reset]",
        help: "dump this process's metrics registry (or reset it)",
        run: run_stats,
    },
    Command {
        name: ".trace",
        usage: ".trace [on|off]",
        help: "show or set whether the span tracer records",
        run: run_trace,
    },
    Command {
        name: ".mode",
        usage: ".mode [seq | par [n]]",
        help: "show or set the session's execution mode",
        run: run_mode,
    },
    Command {
        name: ".limits",
        usage: ".limits [show | mem=<bytes> | deadline=<ms> | iters=<n> | slots=<n> [queue=<n>] | off]",
        help: "show or set session resource limits (memory budget, deadline, iteration cap, admission slots)",
        run: run_limits,
    },
    Command {
        name: ".faults",
        usage: ".faults [list | on <site> <policy> | off <site> | seed <n> | reset]",
        help: "inspect or arm failpoints (policy: error|panic|corrupt@always|nth=N|prob=P)",
        run: |_, rest| run_faults(rest),
    },
    Command {
        name: ".backup",
        usage: ".backup <dir>",
        help: "take an online backup into dir (full the first time, then incrementals; embedded)",
        run: run_backup,
    },
    Command {
        name: ".restore",
        usage: ".restore <dir> [--to-offset <wal-off> | --latest]",
        help: "replace the embedded engine with a point-in-time restore from dir",
        run: run_restore,
    },
    Command {
        name: ".scrub",
        usage: ".scrub [dir]",
        help: "verify archived backups and live pages, repairing corrupt pages (embedded)",
        run: run_scrub,
    },
    Command {
        name: ".help",
        usage: ".help",
        help: "show this command table",
        run: |_, _| Ok(help_text()),
    },
    Command {
        name: ".quit",
        usage: ".quit (or .exit)",
        help: "leave the shell",
        run: |_, _| Ok("bye".to_string()),
    },
];

fn help_text() -> String {
    let width = COMMANDS.iter().map(|c| c.usage.len()).max().unwrap_or(0);
    let mut s = String::from("commands:\n");
    for c in COMMANDS {
        s.push_str(&format!("  {:width$}  {}\n", c.usage, c.help));
    }
    s.push_str(
        "anything else is parsed as SQL-ish \
         (create table / insert into / select / begin / commit / rollback)",
    );
    s
}

fn main() {
    let mut shell = Shell::new();
    let stdin = io::stdin();
    let mut out = io::stdout();
    print!("bq> ");
    let _ = out.flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if !line.is_empty() {
            if line == ".quit" || line == ".exit" {
                break;
            }
            match execute(&mut shell, line) {
                Ok(msg) => println!("{msg}"),
                Err(e) => println!("error: {e}"),
            }
        }
        print!("bq> ");
        let _ = out.flush();
    }
    println!();
}

fn execute(shell: &mut Shell, line: &str) -> Result<String, String> {
    if line.starts_with('.') {
        let token = line.split_whitespace().next().unwrap_or(line);
        let name = if token == ".exit" { ".quit" } else { token };
        let Some(cmd) = COMMANDS.iter().find(|c| c.name == name) else {
            return Err(format!("unknown command `{token}` (try .help)"));
        };
        return (cmd.run)(shell, line[token.len()..].trim());
    }
    shell
        .driver()
        .execute(line)
        .map(render_outcome)
        .map_err(|e| e.to_string())
}

fn render_outcome(out: Outcome) -> String {
    match out {
        Outcome::Rows(rel) => {
            let mut s = format!("{}", rel.schema());
            for t in rel.iter() {
                s.push_str(&format!("\n  {t}"));
            }
            s.push_str(&format!("\n({} rows)", rel.len()));
            s
        }
        Outcome::Message(m) => m,
    }
}

/// `.connect host:port`
fn run_connect(sh: &mut Shell, rest: &str) -> Result<String, String> {
    if rest.is_empty() {
        return Err("usage: .connect <host:port>".to_string());
    }
    if sh.remote.is_some() {
        return Err("already connected; .disconnect first".to_string());
    }
    let conn = bq_server::connect(rest).map_err(|e| e.to_string())?;
    let session = conn.session();
    sh.remote = Some(conn);
    Ok(format!("connected to {rest} (session {session})"))
}

/// `.mode` | `.mode seq` | `.mode par [n]`
fn run_mode(sh: &mut Shell, rest: &str) -> Result<String, String> {
    if rest.is_empty() {
        if sh.remote.is_some() {
            return Ok(match sh.mode {
                Some(m) => format!("mode: {m} (session)"),
                None => "mode: server default".to_string(),
            });
        }
        return Ok(format!(
            "mode: {}",
            sh.embedded.with_db(|db| db.exec_mode())
        ));
    }
    let mut it = rest.split_whitespace();
    let mode = match it.next() {
        Some("seq") | Some("sequential") => ExecMode::Sequential,
        Some("par") | Some("parallel") => {
            let workers = match it.next() {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("bad worker count `{n}`"))?,
                None => bq_exec::engine::default_parallelism(),
            };
            if workers == 0 {
                return Err("worker count must be positive".into());
            }
            ExecMode::Parallel(workers)
        }
        _ => return Err("expected `.mode seq` or `.mode par [n]`".into()),
    };
    sh.driver().set_mode(mode).map_err(|e| e.to_string())?;
    sh.mode = Some(mode);
    Ok(format!("mode: {mode}"))
}

/// `.stats` | `.stats json` | `.stats reset`
///
/// The metrics registry is process-global, so this works (and reports
/// local numbers) whether or not a remote connection is up.
fn run_stats(sh: &mut Shell, rest: &str) -> Result<String, String> {
    match rest {
        "" => Ok(sh.embedded.with_db(|db| db.metrics_text())),
        "json" => Ok(sh.embedded.with_db(|db| db.metrics_json())),
        "reset" => {
            sh.embedded.with_db(|db| db.reset_metrics());
            Ok("metrics reset".to_string())
        }
        other => Err(format!("expected `.stats [json|reset]`, got `{other}`")),
    }
}

/// `.trace` | `.trace on` | `.trace off`
fn run_trace(sh: &mut Shell, rest: &str) -> Result<String, String> {
    match rest {
        "on" => {
            sh.embedded.with_db(|db| db.set_tracing(true));
            Ok("tracing on".to_string())
        }
        "off" => {
            sh.embedded.with_db(|db| db.set_tracing(false));
            Ok("tracing off".to_string())
        }
        "" => Ok(format!(
            "tracing {}",
            if sh.embedded.with_db(|db| db.tracing()) {
                "on"
            } else {
                "off"
            }
        )),
        other => Err(format!("expected `.trace [on|off]`, got `{other}`")),
    }
}

/// `.limits [show | mem=<bytes> | deadline=<ms> | iters=<n> | slots=<n> [queue=<n>] | off]`
///
/// Keys compose in one call (`.limits mem=1048576 deadline=500`); `off`
/// clears every limit. `slots`/`queue` configure the embedded admission
/// controller; a server's admission is fixed when it starts, so those keys
/// refuse while connected.
fn run_limits(sh: &mut Shell, rest: &str) -> Result<String, String> {
    fn render(sh: &mut Shell) -> String {
        let l = sh.driver().limits();
        let mem = l
            .memory_bytes
            .map_or("unlimited".to_string(), |b| format!("{b} B"));
        let deadline = l
            .deadline_ms
            .map_or("none".to_string(), |ms| format!("{ms} ms"));
        let iters = l
            .max_iterations
            .map_or("none".to_string(), |n| n.to_string());
        let slots = if sh.remote.is_some() {
            "server-side (fixed at server start)".to_string()
        } else {
            let (slots, queue) = sh.embedded.with_db(|db| db.admission_limits());
            if slots == usize::MAX {
                "unbounded".to_string()
            } else {
                format!("{slots} (queue {queue})")
            }
        };
        format!("mem: {mem}\ndeadline: {deadline}\niters: {iters}\nslots: {slots}")
    }
    if rest.is_empty() || rest == "show" {
        return Ok(render(sh));
    }
    if rest == "off" {
        sh.driver()
            .set_limits(bq_core::SessionLimits::default())
            .map_err(|e| e.to_string())?;
        if sh.remote.is_none() {
            sh.embedded.with_db(|db| db.set_admission(usize::MAX, 0));
        }
        return Ok(render(sh));
    }
    let mut limits = sh.driver().limits();
    let mut slots: Option<usize> = None;
    let mut queue: Option<usize> = None;
    for token in rest.split_whitespace() {
        let (key, val) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{token}` (see .help)"))?;
        let parse = |v: &str| v.parse::<u64>().map_err(|_| format!("bad number `{v}`"));
        match key {
            "mem" => limits.memory_bytes = Some(parse(val)?),
            "deadline" => limits.deadline_ms = Some(parse(val)?),
            "iters" => limits.max_iterations = Some(parse(val)?),
            "slots" => slots = Some(parse(val)? as usize),
            "queue" => queue = Some(parse(val)? as usize),
            other => return Err(format!("unknown limit `{other}` (see .help)")),
        }
    }
    if queue.is_some() && slots.is_none() {
        return Err("queue=<n> requires slots=<n>".to_string());
    }
    if slots.is_some() && sh.remote.is_some() {
        return Err("slots/queue are embedded-only (server admission is fixed at start)".into());
    }
    sh.driver().set_limits(limits).map_err(|e| e.to_string())?;
    if let Some(s) = slots {
        if s == 0 {
            return Err("slots must be positive".to_string());
        }
        sh.embedded
            .with_db(|db| db.set_admission(s, queue.unwrap_or(0)));
    }
    Ok(render(sh))
}

/// `.faults [list | on <site> <policy> | off <site> | seed <n> | reset]`
///
/// Arms sites globally: a shell session wants faults to hit the worker
/// pool, not just the REPL thread.
fn run_faults(rest: &str) -> Result<String, String> {
    let mut it = rest.split_whitespace();
    match it.next() {
        None | Some("list") => {
            let armed = bq_faults::list();
            let mut s = String::from("site                     armed  hits  fires  simulates\n");
            for (site, desc) in bq_faults::CATALOG {
                let row = armed.iter().find(|i| i.site == *site);
                s.push_str(&format!(
                    "{site:24} {:6} {:5} {:6}  {desc}\n",
                    row.map_or("-".to_string(), |i| i.policy.clone()),
                    row.map_or(0, |i| i.hits),
                    row.map_or(0, |i| i.fires),
                ));
            }
            // Ad-hoc sites armed outside the catalog still show up.
            for i in armed
                .iter()
                .filter(|i| !bq_faults::CATALOG.iter().any(|(site, _)| *site == i.site))
            {
                s.push_str(&format!(
                    "{:24} {:6} {:5} {:6}  (not in catalog)\n",
                    i.site, i.policy, i.hits, i.fires
                ));
            }
            Ok(s.trim_end().to_string())
        }
        Some("on") => {
            let site = it.next().ok_or("usage: .faults on <site> <policy>")?;
            if !bq_faults::CATALOG.iter().any(|(s, _)| *s == site) {
                return Err(format!("unknown site `{site}` (see .faults list)"));
            }
            let policy = bq_faults::parse_policy(
                it.next()
                    .ok_or("usage: .faults on <site> <action>@<trigger>, e.g. `corrupt@nth=3`")?,
            )?;
            bq_faults::configure(site, policy);
            Ok(format!("armed {site} with {policy}"))
        }
        Some("off") => {
            let site = it.next().ok_or("usage: .faults off <site>")?;
            bq_faults::off(site);
            Ok(format!("disarmed {site}"))
        }
        Some("seed") => {
            let n = it.next().ok_or("usage: .faults seed <n>")?;
            let seed = n.parse::<u64>().map_err(|_| format!("bad seed `{n}`"))?;
            bq_faults::set_seed(seed);
            Ok(format!("fault seed set to {seed}"))
        }
        Some("reset") => {
            bq_faults::reset();
            Ok("all failpoints disarmed".to_string())
        }
        Some(other) => Err(format!(
            "expected `.faults [list|on|off|seed|reset]`, got `{other}`"
        )),
    }
}

/// `.slow [n]` — the tail of the slow-query log, newest last. Plain SQL
/// over `bq.slow_log`; the `[n]` cap is applied client-side since the
/// relation is a set ordered by query id, not a stream.
fn run_slow(sh: &mut Shell, rest: &str) -> Result<String, String> {
    let n = if rest.is_empty() {
        10
    } else {
        rest.trim()
            .parse::<usize>()
            .map_err(|_| format!("bad entry count `{rest}`"))?
    };
    let out = sh
        .driver()
        .execute(
            "select s.query, s.session, s.elapsed_us, s.rows, s.fingerprint, s.sql \
             from bq.slow_log s",
        )
        .map_err(|e| e.to_string())?;
    let Outcome::Rows(rel) = out else {
        return Err("expected rows from bq.slow_log".to_string());
    };
    let tuples = rel.tuples();
    let total = tuples.len();
    let skip = total.saturating_sub(n);
    let mut s = format!("{}", rel.schema());
    for t in tuples.iter().skip(skip) {
        s.push_str(&format!("\n  {t}"));
    }
    s.push_str(&format!("\n({} of {total} entries)", total - skip));
    Ok(s)
}

/// `.profile <sql>`
fn run_profile(sh: &mut Shell, rest: &str) -> Result<String, String> {
    sh.require_embedded(".profile")?;
    if rest.is_empty() {
        return Err("usage: .profile <sql>".to_string());
    }
    let (rel, profile) = sh
        .embedded
        .with_db(|db| db.profile_sql(rest))
        .map_err(|e| e.to_string())?;
    Ok(format!("{}({} rows)", profile.render(), rel.len()))
}

/// Get (or open) the backup engine for `dir`, reusing the attachment
/// when the directory matches the current one.
fn attach_backup(sh: &mut Shell, dir: &str) -> Result<Arc<BackupEngine>, String> {
    if let Some((d, engine)) = &sh.backup {
        if d == dir {
            return Ok(engine.clone());
        }
    }
    let archive = DirArchive::open(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let registry = sh.embedded.with_db(|db| db.backup_registry());
    let engine = Arc::new(BackupEngine::new(Arc::new(archive), registry));
    sh.backup = Some((dir.to_string(), engine.clone()));
    Ok(engine)
}

/// `.backup <dir>` (dir optional once attached)
fn run_backup(sh: &mut Shell, rest: &str) -> Result<String, String> {
    sh.require_embedded(".backup")?;
    let dir = if rest.is_empty() {
        match &sh.backup {
            Some((d, _)) => d.clone(),
            None => return Err("usage: .backup <dir>".to_string()),
        }
    } else {
        rest.trim().to_string()
    };
    let engine = attach_backup(sh, &dir)?;
    let db = sh.embedded.db();
    let m = engine.backup_incremental(&db).map_err(|e| e.to_string())?;
    Ok(format!(
        "{} backup #{} covers wal [{}, {}) ({} bytes) -> {dir}",
        m.kind.as_str(),
        m.seq,
        m.wal_start,
        m.wal_end,
        m.object_len
    ))
}

/// `.restore <dir> [--to-offset <wal-off> | --latest]`
fn run_restore(sh: &mut Shell, rest: &str) -> Result<String, String> {
    sh.require_embedded(".restore")?;
    let usage = "usage: .restore <dir> [--to-offset <wal-off> | --latest]";
    let mut it = rest.split_whitespace();
    let dir = it.next().ok_or(usage)?;
    let engine = attach_backup(sh, dir)?;
    let (restored, offset) = match it.next() {
        None | Some("--latest") => engine.restore_latest().map_err(|e| e.to_string())?,
        Some("--to-offset") => {
            let n = it.next().ok_or("--to-offset requires a WAL offset")?;
            let offset = n
                .parse::<u64>()
                .map_err(|_| format!("bad WAL offset `{n}`"))?;
            let db = engine
                .restore_to_offset(offset)
                .map_err(|e| e.to_string())?;
            (db, offset)
        }
        Some(other) => return Err(format!("unknown flag `{other}`; {usage}")),
    };
    let fingerprint = restored.content_fingerprint();
    let db = sh.embedded.db();
    *db.write().unwrap_or_else(|e| e.into_inner()) = restored;
    // The restored engine has a fresh backup registry; drop the
    // attachment so the next `.backup` rebinds to it.
    sh.backup = None;
    Ok(format!(
        "restored to wal offset {offset} (fingerprint {fingerprint:016x})"
    ))
}

/// `.scrub [dir]` — archive + live pages when a dir is given or
/// attached, live pages only otherwise.
fn run_scrub(sh: &mut Shell, rest: &str) -> Result<String, String> {
    sh.require_embedded(".scrub")?;
    let dir = if rest.is_empty() {
        sh.backup.as_ref().map(|(d, _)| d.clone())
    } else {
        Some(rest.trim().to_string())
    };
    let report = match dir {
        Some(dir) => {
            let engine = attach_backup(sh, &dir)?;
            let db = sh.embedded.db();
            engine.scrub(Some(&db)).map_err(|e| e.to_string())?
        }
        None => {
            let (pages_checked, pages_restored) = sh
                .embedded
                .with_db(|db| db.scrub_pages())
                .map_err(|e| e.to_string())?;
            bq_backup::ScrubReport {
                pages_checked,
                pages_restored,
                ..Default::default()
            }
        }
    };
    let mut s = format!(
        "scrub: {} manifests ({} bad), {} objects ({} bad), {} pages ({} restored)",
        report.manifests_checked,
        report.manifests_bad,
        report.objects_checked,
        report.objects_bad,
        report.pages_checked,
        report.pages_restored
    );
    for name in &report.bad {
        s.push_str(&format!("\n  bad: {name}"));
    }
    Ok(s)
}

/// `.datalog <rules> ? <query-atom>`
fn run_datalog(sh: &mut Shell, rest: &str) -> Result<String, String> {
    sh.require_embedded(".datalog")?;
    let (program, query) = rest
        .rsplit_once('?')
        .ok_or("expected `.datalog <rules> ? <query>`")?;
    let answers = sh
        .embedded
        .with_db(|db| db.datalog(program.trim(), query.trim()))
        .map_err(|e| e.to_string())?;
    let mut s = String::new();
    for a in &answers {
        let row: Vec<String> = a.iter().map(ToString::to_string).collect();
        s.push_str(&format!("  ({})\n", row.join(", ")));
    }
    s.push_str(&format!("({} answers)", answers.len()));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Shell {
        let mut sh = Shell::new();
        execute(&mut sh, "create table emp (name str, dept str, sal int)").unwrap();
        execute(&mut sh, "insert into emp values ('ann', 'cs', 90)").unwrap();
        execute(&mut sh, "insert into emp values ('bob', 'ee', 70)").unwrap();
        sh
    }

    #[test]
    fn create_insert_select_pipeline() {
        let mut sh = fresh();
        let out = execute(&mut sh, "select e.name from emp e where e.sal > 80").unwrap();
        assert!(out.contains("ann"));
        assert!(out.contains("(1 rows)"));
    }

    #[test]
    fn tables_listing() {
        let mut sh = fresh();
        assert_eq!(execute(&mut sh, ".tables").unwrap(), "emp");
    }

    #[test]
    fn transactions_from_the_shell() {
        let mut sh = fresh();
        execute(&mut sh, "begin").unwrap();
        execute(&mut sh, "insert into emp values ('cat', 'cs', 80)").unwrap();
        execute(&mut sh, "rollback").unwrap();
        let out = execute(&mut sh, "select e.name from emp e").unwrap();
        assert!(out.contains("(2 rows)"), "{out}");

        execute(&mut sh, "begin").unwrap();
        execute(&mut sh, "insert into emp values ('cat', 'cs', 80)").unwrap();
        execute(&mut sh, "commit").unwrap();
        let out = execute(&mut sh, "select e.name from emp e").unwrap();
        assert!(out.contains("(3 rows)"), "{out}");

        assert!(execute(&mut sh, "commit").is_err());
    }

    #[test]
    fn prepared_statements_from_the_shell() {
        let mut sh = fresh();
        let out = execute(&mut sh, ".prepare select e.name from emp e").unwrap();
        assert_eq!(out, "prepared statement 0");
        let out = execute(&mut sh, ".exec 0").unwrap();
        assert!(out.contains("(2 rows)"), "{out}");
        assert!(execute(&mut sh, ".exec 99").is_err());
        assert!(execute(&mut sh, ".exec x").is_err());
        assert!(execute(&mut sh, ".prepare insert into emp values (1)").is_err());
    }

    #[test]
    fn datalog_command() {
        let mut sh = fresh();
        let out = execute(
            &mut sh,
            ".datalog peer(X, Y) :- emp(X, D, S1), emp(Y, D, S2), X != Y. ? peer(X, Y)",
        )
        .unwrap();
        assert!(out.contains("(0 answers)"), "no same-dept pairs: {out}");
    }

    #[test]
    fn quoted_commas_survive_insert() {
        let mut sh = Shell::new();
        execute(&mut sh, "create table t (a str, b int)").unwrap();
        execute(&mut sh, "insert into t values ('x, y', 3)").unwrap();
        let out = execute(&mut sh, "select t.a from t where t.b = 3").unwrap();
        assert!(out.contains("x, y"));
    }

    #[test]
    fn explain_shows_the_plan_tree() {
        let mut sh = fresh();
        let out = execute(
            &mut sh,
            ".explain select e.name from emp e where e.sal > 80",
        )
        .unwrap();
        assert!(out.starts_with("mode:"), "{out}");
        assert!(out.contains("SeqScan [emp]"), "{out}");
        assert!(out.contains("rows="), "{out}");
    }

    #[test]
    fn mode_switching() {
        let mut sh = fresh();
        assert_eq!(execute(&mut sh, ".mode seq").unwrap(), "mode: sequential");
        assert_eq!(execute(&mut sh, ".mode").unwrap(), "mode: sequential");
        assert_eq!(
            execute(&mut sh, ".mode par 2").unwrap(),
            "mode: parallel(2)"
        );
        assert!(execute(&mut sh, ".mode par x").is_err());
        assert!(execute(&mut sh, ".mode par 0").is_err());
        assert!(execute(&mut sh, ".mode warp").is_err());
        // Queries still answer after switching.
        let out = execute(&mut sh, "select e.name from emp e where e.sal > 80").unwrap();
        assert!(out.contains("ann"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut sh = fresh();
        assert!(execute(&mut sh, "select nope").is_err());
        assert!(execute(&mut sh, "create table emp (a int)").is_err());
        assert!(execute(&mut sh, "insert into emp values ('only-one')").is_err());
        assert!(execute(&mut sh, "gibberish").is_err());
        assert!(execute(&mut sh, ".bogus").is_err());
    }

    /// Regression for the satellite requirement: the dispatcher and `.help`
    /// share one table, so every dispatched command must appear in `.help`
    /// and be reachable through `execute`.
    #[test]
    fn every_dispatched_command_appears_in_help() {
        let mut sh = fresh();
        let help = execute(&mut sh, ".help").unwrap();
        for cmd in COMMANDS {
            assert!(
                help.contains(cmd.name),
                "`{}` missing from .help:\n{help}",
                cmd.name
            );
            assert!(
                help.contains(cmd.usage),
                "usage for `{}` missing from .help:\n{help}",
                cmd.name
            );
            // The command is actually dispatchable by its listed name
            // (argument-less invocation; a usage error is still dispatch).
            let dispatched = execute(&mut sh, cmd.name);
            assert!(
                dispatched != Err(format!("unknown command `{}` (try .help)", cmd.name)),
                "`{}` listed in .help but not dispatched",
                cmd.name
            );
        }
        // The `.exit` alias reaches `.quit`.
        assert_eq!(execute(&mut sh, ".exit").unwrap(), "bye");
    }

    #[test]
    fn faults_command_lists_arms_and_disarms() {
        let mut sh = fresh();
        let list = execute(&mut sh, ".faults").unwrap();
        for (site, _) in bq_faults::CATALOG {
            assert!(list.contains(site), "`{site}` missing from .faults list");
        }
        assert!(execute(&mut sh, ".faults on wal.append.torn corrupt@nth=3")
            .unwrap()
            .contains("armed wal.append.torn"));
        let listed = execute(&mut sh, ".faults list").unwrap();
        assert!(listed.contains("corrupt@nth=3"), "{listed}");
        assert!(execute(&mut sh, ".faults on bogus.site error@always").is_err());
        assert!(execute(&mut sh, ".faults on wal.sync.skip nonsense").is_err());
        assert!(execute(&mut sh, ".faults seed 7").unwrap().contains('7'));
        assert!(execute(&mut sh, ".faults seed x").is_err());
        assert!(execute(&mut sh, ".faults off wal.append.torn")
            .unwrap()
            .contains("disarmed"));
        assert_eq!(
            execute(&mut sh, ".faults reset").unwrap(),
            "all failpoints disarmed"
        );
        assert!(execute(&mut sh, ".faults frobnicate").is_err());
    }

    #[test]
    fn limits_command_sets_and_clears_session_defaults() {
        let mut sh = fresh();
        let shown = execute(&mut sh, ".limits").unwrap();
        assert!(shown.contains("mem: unlimited"), "{shown}");
        assert!(shown.contains("slots: unbounded"), "{shown}");

        let set = execute(&mut sh, ".limits mem=1048576 deadline=5000 iters=100").unwrap();
        assert!(set.contains("mem: 1048576 B"), "{set}");
        assert!(set.contains("deadline: 5000 ms"), "{set}");
        assert!(set.contains("iters: 100"), "{set}");
        // Generous limits leave ordinary queries untouched.
        let out = execute(&mut sh, "select e.name from emp e where e.sal > 80").unwrap();
        assert!(out.contains("ann"));

        // A starvation budget stops the same query with a typed message.
        execute(&mut sh, ".limits mem=16").unwrap();
        let err = execute(&mut sh, "select e.name from emp e").unwrap_err();
        assert!(err.contains("memory budget exceeded"), "{err}");

        let slots = execute(&mut sh, ".limits slots=2 queue=4").unwrap();
        assert!(slots.contains("slots: 2 (queue 4)"), "{slots}");

        let off = execute(&mut sh, ".limits off").unwrap();
        assert!(off.contains("mem: unlimited"), "{off}");
        assert!(off.contains("slots: unbounded"), "{off}");
        assert!(execute(&mut sh, "select e.name from emp e").is_ok());

        assert!(execute(&mut sh, ".limits queue=4").is_err());
        assert!(execute(&mut sh, ".limits slots=0").is_err());
        assert!(execute(&mut sh, ".limits mem=lots").is_err());
        assert!(execute(&mut sh, ".limits frobnicate").is_err());
    }

    #[test]
    fn stats_trace_and_profile_commands() {
        let mut sh = fresh();
        execute(&mut sh, "select e.name from emp e").unwrap();
        let stats = execute(&mut sh, ".stats").unwrap();
        assert!(stats.contains("bq_exec_operators_total"), "{stats}");
        let json = execute(&mut sh, ".stats json").unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(execute(&mut sh, ".stats bogus").is_err());

        assert_eq!(execute(&mut sh, ".trace on").unwrap(), "tracing on");
        assert_eq!(execute(&mut sh, ".trace").unwrap(), "tracing on");
        assert_eq!(execute(&mut sh, ".trace off").unwrap(), "tracing off");
        assert!(execute(&mut sh, ".trace sideways").is_err());

        let profile = execute(&mut sh, ".profile select e.name from emp e").unwrap();
        assert!(profile.contains("-- profile:"), "{profile}");
        assert!(profile.contains("SeqScan [emp]"), "{profile}");
        assert!(profile.contains("(2 rows)"), "{profile}");
        assert!(execute(&mut sh, ".profile").is_err());
    }

    #[test]
    fn introspection_commands_answer_via_the_catalog() {
        let mut sh = fresh();
        // `.queries` is plain SQL over bq.queries and sees itself running.
        let queries = execute(&mut sh, ".queries").unwrap();
        assert!(queries.contains("bq.queries"), "{queries}");
        assert!(queries.contains("(1 rows)"), "{queries}");

        // `.analyze` renders per-operator runtime stats for the plan.
        let analyzed = execute(&mut sh, ".analyze select e.name from emp e").unwrap();
        assert!(analyzed.contains("SeqScan [emp]"), "{analyzed}");
        assert!(analyzed.contains("time="), "{analyzed}");
        assert!(analyzed.contains("mem="), "{analyzed}");
        assert!(execute(&mut sh, ".analyze").is_err());
        assert!(execute(&mut sh, ".analyze insert into emp values (1)").is_err());

        // Everything above (and `fresh`) landed in the slow log; `.slow 2`
        // shows only the newest two.
        let slow = execute(&mut sh, ".slow 2").unwrap();
        assert!(slow.contains("(2 of "), "{slow}");
        assert!(
            slow.contains("bq.queries"),
            "the .queries select was logged: {slow}"
        );
        assert!(execute(&mut sh, ".slow x").is_err());
    }

    /// Pinned regression: the backup surface must stay in the single
    /// COMMANDS table (and therefore in `.help`).
    #[test]
    fn backup_restore_scrub_commands_pinned_in_help() {
        let mut sh = fresh();
        let help = execute(&mut sh, ".help").unwrap();
        for pinned in [".backup", ".restore", ".scrub"] {
            assert!(
                COMMANDS.iter().any(|c| c.name == pinned),
                "`{pinned}` missing from COMMANDS"
            );
            assert!(
                help.contains(pinned),
                "`{pinned}` missing from .help:\n{help}"
            );
        }
    }

    #[test]
    fn backup_restore_scrub_from_the_shell() {
        let dir = std::env::temp_dir().join(format!("bqsh-backup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        let mut sh = fresh();
        assert!(execute(&mut sh, ".backup").is_err(), "no dir attached yet");

        let first = execute(&mut sh, &format!(".backup {dir_s}")).unwrap();
        assert!(first.contains("full backup #1"), "{first}");
        // The full's horizon, parsed back out of the transcript.
        let full_offset: u64 = first
            .split('[')
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("offset in backup output");

        execute(&mut sh, "insert into emp values ('cat', 'cs', 80)").unwrap();
        let second = execute(&mut sh, ".backup").unwrap();
        assert!(second.contains("incremental backup #2"), "{second}");
        let scrub = execute(&mut sh, ".scrub").unwrap();
        assert!(scrub.contains("2 objects (0 bad)"), "{scrub}");

        // A write after the last backup is lost by design on restore.
        execute(&mut sh, "insert into emp values ('doomed', 'xx', 1)").unwrap();
        let restored = execute(&mut sh, &format!(".restore {dir_s} --latest")).unwrap();
        assert!(restored.contains("restored to wal offset"), "{restored}");
        let rows = execute(&mut sh, "select e.name from emp e").unwrap();
        assert!(rows.contains("(3 rows)"), "{rows}");
        assert!(rows.contains("cat") && !rows.contains("doomed"), "{rows}");

        // Point-in-time: back to the moment of the full backup.
        let pitr = execute(
            &mut sh,
            &format!(".restore {dir_s} --to-offset {full_offset}"),
        )
        .unwrap();
        assert!(pitr.contains(&format!("offset {full_offset}")), "{pitr}");
        let rows = execute(&mut sh, "select e.name from emp e").unwrap();
        assert!(rows.contains("(2 rows)"), "{rows}");
        assert!(!rows.contains("cat"), "{rows}");

        // An offset inside a record is refused, not half-applied.
        assert!(execute(&mut sh, &format!(".restore {dir_s} --to-offset 1")).is_err());
        assert!(execute(&mut sh, &format!(".restore {dir_s} --sideways")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The shell behaves identically over the wire: `.connect` flips the
    /// driver, statements travel to a real server, `.disconnect` flips back.
    #[test]
    fn remote_backend_via_connect() {
        use bq_server::{serve, ServerConfig};
        use std::sync::{Arc, RwLock};

        let server = serve(
            Arc::new(RwLock::new(bq_core::Db::new())),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        let mut sh = Shell::new();
        assert!(execute(&mut sh, ".connect").is_err());
        let hello = execute(&mut sh, &format!(".connect {addr}")).unwrap();
        assert!(hello.contains("connected"), "{hello}");
        assert!(execute(&mut sh, &format!(".connect {addr}")).is_err());

        execute(&mut sh, "create table t (a int)").unwrap();
        execute(&mut sh, "insert into t values (1)").unwrap();
        let out = execute(&mut sh, "select t.a from t").unwrap();
        assert!(out.contains("(1 rows)"), "{out}");
        // `.queries` is a select over `bq.queries`; like any honest
        // process list it sees (at least) itself running.
        let queries = execute(&mut sh, ".queries").unwrap();
        assert!(queries.contains("bq.queries"), "{queries}");
        assert!(execute(&mut sh, ".kill 12345")
            .unwrap()
            .contains("no running"));

        // Engine-reaching commands refuse while connected.
        assert!(execute(&mut sh, ".tables")
            .unwrap_err()
            .contains("embedded-only"));
        assert!(execute(&mut sh, ".explain select t.a from t").is_err());
        assert!(execute(&mut sh, ".limits slots=2").is_err());

        execute(&mut sh, ".disconnect").unwrap();
        assert!(execute(&mut sh, ".disconnect").is_err());
        // Back on the embedded engine, which never saw the remote table.
        assert_eq!(execute(&mut sh, ".tables").unwrap(), "");

        server.shutdown(std::time::Duration::from_secs(2));
    }
}
