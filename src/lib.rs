//! # big-queries
//!
//! A production-quality Rust reproduction of the systems surveyed in
//! Christos H. Papadimitriou's PODS '95 invited talk, *"Database Metatheory:
//! Asking the Big Queries"*.
//!
//! The essay itself contains no system; its subject matter is the body of
//! database theory 1970-1995 and a handful of quantitative models about the
//! sociology of the field. This workspace builds all of it:
//!
//! | Crate | What it reproduces |
//! |---|---|
//! | [`bq_relational`] | The relational model, algebra ⇔ calculus (Codd's Theorem), SQL-ish surface, nulls |
//! | [`bq_design`] | Dependency theory & normalization (FDs, MVDs, chase, 3NF/BCNF, acyclicity) |
//! | [`bq_datalog`] | Logic databases: naive/semi-naive/magic-sets evaluation, stratified negation |
//! | [`bq_txn`] | Transaction processing: 2PL, timestamp, optimistic, tree locking, serializability |
//! | [`bq_logic`] | Cook's Theorem (DPLL SAT + reductions) and Fagin's Theorem (ESO model checking) |
//! | [`bq_meta`] | The paper's own figures: Kuhn stages, the research graph, the PODS retrospective, Volterra and Kitcher models |
//! | [`bq_storage`] | The storage substrate: pages, heap files, buffer pool, B+-tree, WAL |
//! | [`bq_core`] | The facade `Database` engine tying it all together |
//! | [`bq_server`] | The TCP front-end: wire protocol, sessions, and the client driver |
//! | [`bq_repl`] | WAL-shipping replication, promotion, and the failover client |
//! | [`bq_backup`] | Online backups, incremental WAL archiving, point-in-time recovery, scrubbing |
//!
//! ## Quickstart
//!
//! ```
//! use big_queries::prelude::*;
//!
//! let mut db = Db::new();
//! db.create_table("emp", &[("name", Type::Str), ("dept", Type::Str)]).unwrap();
//! db.insert("emp", vec![Value::str("codd"), Value::str("theory")]).unwrap();
//! let out = db.sql("select e.name from emp e where e.dept = 'theory'").unwrap();
//! assert_eq!(out.len(), 1);
//! ```

pub use bq_backup;
pub use bq_core;
pub use bq_datalog;
pub use bq_design;
pub use bq_exec;
pub use bq_faults;
pub use bq_governor;
pub use bq_logic;
pub use bq_meta;
pub use bq_relational;
pub use bq_repl;
pub use bq_server;
pub use bq_storage;
pub use bq_txn;
pub use bq_util;

/// The most commonly used items, re-exported for examples and tests.
pub mod prelude {
    pub use bq_backup::{Archive, BackupEngine, BackupError, DirArchive, MemArchive, ScrubReport};
    pub use bq_core::{Db, SessionLimits};
    pub use bq_datalog::{Program, SemiNaive};
    pub use bq_design::{Fd, FdSet};
    pub use bq_exec::{ExecMode, Executor};
    pub use bq_governor::{GovernorError, QueryContext};
    pub use bq_relational::{Database, Relation, Schema, Tuple, Type, Value};
    pub use bq_repl::{Backoff, FailoverDriver, FailoverOptions, Replica, ReplicaConfig};
    pub use bq_server::{
        connect, serve, Connection, Driver, EmbeddedDriver, Outcome, Server, ServerConfig,
    };
}
