//! Surviving failures: a primary, a streaming replica, and a client
//! that rides out the primary's death.
//!
//! ```text
//! cargo run --example failover
//! ```
//!
//! The walkthrough: start a primary and a read-only replica subscribed
//! to its WAL, put acknowledged writes on the primary through a
//! [`FailoverDriver`], kill the primary mid-session, watch reads fail
//! over to the replica, promote it, and verify every acknowledged write
//! survived — exactly once. This is also the CI smoke test for bq-repl.

use big_queries::bq_server::wire::ErrorCode;
use big_queries::prelude::*;
use std::time::Duration;

fn main() {
    // A primary with one table, on an ephemeral port.
    let mut db = Db::new();
    db.create_table("ledger", &[("account", Type::Int), ("delta", Type::Int)])
        .expect("create");
    let db = std::sync::Arc::new(std::sync::RwLock::new(db));
    let primary = serve(std::sync::Arc::clone(&db), ServerConfig::default()).expect("bind");
    let paddr = primary.local_addr().to_string();
    println!("primary on {paddr}");

    // A replica: bootstraps from a snapshot, then streams the WAL. Its
    // server refuses writes with a typed `read-only-replica` error.
    let replica = Replica::start(ReplicaConfig::new(paddr.clone()));
    let rconfig = ServerConfig {
        read_only: true,
        ..ServerConfig::default()
    };
    let replica_srv = serve(replica.db(), rconfig).expect("bind replica");
    let raddr = replica_srv.local_addr().to_string();
    while replica.state() != "streaming" {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("replica on {raddr} ({})", replica.state());

    // A failover client over both endpoints. Tagged writes carry a
    // request id, so a retry after an ambiguous failure is deduplicated
    // server-side instead of double-applying.
    let opts = FailoverOptions {
        seed: 0xfa11_04e5,
        connect_timeout: Duration::from_millis(500),
        ..FailoverOptions::default()
    };
    let mut client =
        FailoverDriver::connect(vec![paddr.clone(), raddr.clone()], opts).expect("dial");
    for account in 0..10i64 {
        client
            .execute_tagged(
                &format!("insert into ledger values ({account}, 100)"),
                account as u64,
            )
            .expect("tagged write");
    }
    println!("10 acknowledged writes on the primary");

    // The primary dies. Reads fail over to the replica transparently.
    primary.shutdown(Duration::from_millis(100));
    let rows = match client.execute("select l.account from ledger l") {
        Ok(Outcome::Rows(rel)) => rel.len(),
        other => panic!("read after failover: {other:?}"),
    };
    println!("primary killed; read failed over: {rows} rows");
    assert_eq!(rows, 10, "acked writes visible on the replica");

    // An untagged write is refused before execution — never an
    // ambiguous retry into a double-apply.
    let err = client
        .execute("insert into ledger values (99, 1)")
        .expect_err("read-only refusal");
    assert_eq!(err.code, ErrorCode::ReadOnlyReplica);
    println!("untagged write refused while read-only: {err}");

    // Promote: replication stops and the node opens for writes.
    let _promoted = replica.promote();
    replica_srv.set_read_only(false);
    client
        .execute("insert into ledger values (10, 100)")
        .expect("write after promotion");
    // A pre-failover request id answers from the shipped dedup table.
    match client
        .execute_tagged("insert into ledger values (0, 100)", 0)
        .expect("dedup answer")
    {
        Outcome::Message(m) => println!("replayed request 0: {m}"),
        other => panic!("expected dedup message, got {other:?}"),
    }
    let total = match client.execute("select l.account from ledger l") {
        Ok(Outcome::Rows(rel)) => rel.len(),
        other => panic!("final read: {other:?}"),
    };
    assert_eq!(total, 11, "10 acked + 1 post-promotion, none doubled");
    println!("promoted; {total} rows, every acknowledged write exactly once");

    replica_srv.shutdown(Duration::from_secs(2));
    println!("done");
}
