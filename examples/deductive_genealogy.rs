//! A deductive database at work: recursive queries over a genealogy.
//!
//! This is the workload behind §6's "major disappointment" lament — the
//! beautiful recursive-query machinery (semi-naive evaluation, magic
//! sets) that never made it into 1995's products. The example runs the
//! same ancestor query naively, semi-naively, and magically, and prints
//! the work each strategy did.
//!
//! Run with: `cargo run --example deductive_genealogy`

use bq_datalog::interp::{query, Naive, SemiNaive};
use bq_datalog::magic::magic_rewrite;
use bq_datalog::parser::{parse_atom, parse_program};
use bq_datalog::FactStore;
use bq_relational::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A royal mess of a family tree: a chain of 60 generations with a few
    // side branches.
    let mut edb = FactStore::new();
    for g in 0..60i64 {
        edb.insert("parent", vec![Value::Int(g), Value::Int(g + 1)]);
        if g % 7 == 0 {
            edb.insert("parent", vec![Value::Int(g), Value::Int(1000 + g)]);
        }
    }

    let program = parse_program(
        "ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n\
         % stratified negation: family founders have no parents\n\
         person(X) :- parent(X, Y).\n\
         person(Y) :- parent(X, Y).\n\
         founder(X) :- person(X), !child(X).\n\
         child(Y) :- parent(X, Y).",
    )?;

    // ---- naive vs semi-naive ----------------------------------------
    let (store_n, stats_n) = Naive::run(&program, &edb)?;
    let (store_s, stats_s) = SemiNaive::run(&program, &edb)?;
    assert_eq!(store_n, store_s, "both fixpoints agree");
    println!("derived {} ancestor facts", store_s.count("ancestor"));
    println!(
        "naive:      {:4} iterations, {:7} rule firings",
        stats_n.iterations, stats_n.rule_firings
    );
    println!(
        "semi-naive: {:4} iterations, {:7} rule firings",
        stats_s.iterations, stats_s.rule_firings
    );

    // ---- stratified negation -----------------------------------------
    let founders = query(&store_s, &parse_atom("founder(X)")?);
    println!("founders (no recorded parents): {founders:?}");
    assert_eq!(founders, vec![vec![Value::Int(0)]]);

    // ---- magic sets: ask about one person only ------------------------
    let q = parse_atom("ancestor(55, X)")?;
    let (magic_prog, answer_atom) = magic_rewrite(&program, &q)?;
    let (magic_store, magic_stats) = SemiNaive::run(&magic_prog, &edb)?;
    let full_answers = query(&store_s, &q);
    let magic_answers = query(&magic_store, &answer_atom);
    assert_eq!(
        {
            let mut a = full_answers.clone();
            a.sort();
            a
        },
        {
            let mut a = magic_answers.clone();
            a.sort();
            a
        }
    );
    println!(
        "ancestor(55, X): {} answers; full evaluation derived {} facts, \
         magic-sets only {}",
        magic_answers.len(),
        stats_s.facts_derived,
        magic_stats.facts_derived
    );
    assert!(magic_stats.facts_derived < stats_s.facts_derived / 4);

    println!("deductive genealogy OK");
    Ok(())
}
