//! Serving traffic: start a `bq-server` on an ephemeral port, talk to it
//! through the remote driver, and shut down gracefully.
//!
//! ```text
//! cargo run --example serve
//! ```
//!
//! This is also the CI smoke test for the server: it exercises the
//! handshake, DDL/DML/select over the wire, prepared statements,
//! session limits, the running-query listing, and a clean drain.

use big_queries::bq_server::wire::ErrorCode;
use big_queries::prelude::*;
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn main() {
    // An engine behind an RwLock is servable; the handle stays usable
    // locally while the server runs.
    let db = Arc::new(RwLock::new(Db::new()));
    let server = serve(Arc::clone(&db), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let mut conn = connect(addr.to_string()).expect("connect");
    println!("connected: session {}", conn.session());

    conn.execute("create table emp (name str, dept str, sal int)")
        .expect("create");
    for stmt in [
        "insert into emp values ('ann', 'cs', 90)",
        "insert into emp values ('bob', 'ee', 70)",
        "insert into emp values ('cat', 'cs', 80)",
    ] {
        conn.execute(stmt).expect("insert");
    }

    match conn.execute("select e.name from emp e where e.sal > 75") {
        Ok(Outcome::Rows(rel)) => {
            println!("query over the wire: {} rows", rel.len());
            assert_eq!(rel.len(), 2);
        }
        other => panic!("expected rows, got {other:?}"),
    }

    // Prepared statements round-trip by id.
    let stmt = conn
        .prepare("select e.sal from emp e where e.dept = 'cs'")
        .expect("prepare");
    match conn.execute_prepared(stmt) {
        Ok(Outcome::Rows(rel)) => {
            println!("prepared statement {stmt}: {} rows", rel.len());
            assert_eq!(rel.len(), 2);
        }
        other => panic!("expected rows, got {other:?}"),
    }

    // Session limits bind on the server side: a starvation budget turns
    // the same query into a typed refusal.
    conn.set_limits(SessionLimits {
        memory_bytes: Some(16),
        deadline_ms: None,
        max_iterations: None,
    })
    .expect("set limits");
    let err = conn
        .execute("select e.name from emp e")
        .expect_err("starved query should be refused");
    assert_eq!(err.code, ErrorCode::MemoryExceeded);
    println!("starved session refused: {err}");
    conn.set_limits(SessionLimits::default())
        .expect("lift limits");

    // Nothing running right now, but the registry answers.
    let running = conn.running().expect("list queries");
    println!("running queries: {}", running.len());

    conn.close();
    server.shutdown(Duration::from_secs(2));

    // The engine (and everything the remote session wrote) is still ours.
    let rows = db.read().unwrap().row_count("emp").expect("row count");
    assert_eq!(rows, 3);
    println!("server drained; emp has {rows} rows locally");
}
