//! Quickstart: the `big-queries` facade in five minutes.
//!
//! Creates a small employee database, then runs the same question through
//! every query surface the relational model offers — SQL-ish text,
//! relational algebra, tuple calculus (translated to algebra by Codd's
//! Theorem), and Datalog — and finishes with a transaction that aborts and
//! a crash that recovers.
//!
//! Run with: `cargo run --example quickstart`

use big_queries::prelude::*;
use bq_relational::algebra::expr::{Expr, Predicate};
use bq_relational::calculus::ast::{Formula, Query, Term};
use bq_relational::codd::calculus_to_algebra;
use bq_relational::value::CmpOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Db::new();

    // ---- DDL + data ------------------------------------------------
    db.create_table(
        "emp",
        &[("name", Type::Str), ("dept", Type::Str), ("sal", Type::Int)],
    )?;
    db.create_table("dept", &[("dept", Type::Str), ("bldg", Type::Int)])?;
    for (n, d, s) in [
        ("ann", "cs", 90),
        ("bob", "cs", 70),
        ("eve", "ee", 80),
        ("joe", "ee", 95),
    ] {
        db.insert("emp", vec![Value::str(n), Value::str(d), Value::Int(s)])?;
    }
    for (d, b) in [("cs", 1), ("ee", 2)] {
        db.insert("dept", vec![Value::str(d), Value::Int(b)])?;
    }

    // ---- 1. SQL-ish ------------------------------------------------
    let sql = db.sql(
        "select e.name, d.bldg from emp e, dept d \
         where e.dept = d.dept and e.sal > 75",
    )?;
    println!("SQL-ish answer:\n{sql}");

    // ---- 2. Relational algebra -------------------------------------
    let algebra = Expr::rel("emp")
        .natural_join(Expr::rel("dept"))
        .select(Predicate::cmp(
            bq_relational::algebra::expr::Operand::attr("sal"),
            CmpOp::Gt,
            bq_relational::algebra::expr::Operand::Const(Value::Int(75)),
        ))
        .project(&["name", "bldg"]);
    let alg_out = db.algebra(&algebra)?;
    println!("Algebra {algebra}\nanswers:\n{alg_out}");

    // ---- 3. Tuple calculus, via Codd's Theorem ---------------------
    let calculus = Query::new(
        &[("e", "emp"), ("d", "dept")],
        &[("e", "name", "name"), ("d", "bldg", "bldg")],
        Formula::cmp(Term::attr("e", "dept"), CmpOp::Eq, Term::attr("d", "dept")).and(
            Formula::cmp(
                Term::attr("e", "sal"),
                CmpOp::Gt,
                Term::Const(Value::Int(75)),
            ),
        ),
    );
    let direct = db.calculus(&calculus)?;
    let translated = calculus_to_algebra(&calculus, db.catalog())?;
    let via_algebra = db.algebra(&translated)?;
    println!("Calculus {calculus}");
    println!(
        "  direct evaluation and Codd translation agree: {}",
        direct == via_algebra
    );
    assert_eq!(direct.tuples(), sql.tuples());

    // ---- 4. Datalog -------------------------------------------------
    let colleagues = db.datalog(
        "colleague(X, Y) :- emp(X, D, S1), emp(Y, D, S2), X != Y.",
        "colleague(ann, X)",
    )?;
    println!("ann's colleagues: {colleagues:?}");

    // ---- 5. Transactions + crash recovery ---------------------------
    let t = db.begin()?;
    db.insert_in(
        t,
        "emp",
        vec![Value::str("zoe"), Value::str("cs"), Value::Int(60)],
    )?;
    db.abort(t)?; // changed our mind
    assert_eq!(db.row_count("emp")?, 4);

    let t2 = db.begin()?;
    db.insert_in(
        t2,
        "emp",
        vec![Value::str("sam"), Value::str("ee"), Value::Int(85)],
    )?;
    // Crash before commit: recovery rolls `sam` back.
    let losers = db.simulate_crash_and_recover()?;
    println!("recovery rolled back transactions {losers:?}");
    assert_eq!(db.row_count("emp")?, 4);

    // ---- 6. Observability -------------------------------------------
    // Everything above left footprints in the global metrics registry;
    // the same text is available in the shell via `.stats`.
    println!("-- metrics after this session --");
    println!("{}", db.metrics_text());

    println!("quickstart OK");
    Ok(())
}
