//! A database design tool in the [BCN] tradition — "more than twenty
//! database design tools that do some form of normalization" (§6).
//!
//! Takes a university schema with its functional dependencies, reports
//! keys and the violated normal form, then produces both the 3NF synthesis
//! (lossless + dependency-preserving) and the BCNF decomposition
//! (lossless), verifying losslessness with the chase. Finishes with an
//! MVD and a schema-acyclicity check.
//!
//! Run with: `cargo run --example schema_designer`

use bq_core::advisor::advise;
use bq_design::fd::FdSet;
use bq_design::hypergraph::Hypergraph;
use bq_design::mvd::{implies_mvd, Mvd};

fn main() {
    // registration(Student, Course, Instructor, Room, Grade, Dept):
    //   S C → G          (a student gets one grade per course)
    //   C → I, D         (a course has one instructor and department)
    //   I → D            (instructors belong to one department)
    //   C → R            (a course meets in one room)
    let fds = FdSet::from_named(
        &["S", "C", "I", "R", "G", "D"],
        &[
            (&["S", "C"], &["G"]),
            (&["C"], &["I", "D", "R"]),
            (&["I"], &["D"]),
        ],
    );

    println!("schema: registration(S, C, I, R, G, D)");
    println!("dependencies: {fds}");

    let report = advise(&fds);
    println!("\ncandidate keys:      {:?}", report.keys);
    println!("highest normal form: {}", report.normal_form);
    println!("3NF synthesis:       {:?}", report.synthesis_3nf);
    println!("BCNF decomposition:  {:?}", report.decomposition_bcnf);
    println!("chase-verified lossless: {}", report.lossless_verified);
    assert!(report.lossless_verified);
    assert_eq!(report.keys, vec!["{SC}"]);

    // ---- MVD reasoning ------------------------------------------------
    // Every FD is an MVD; and C →→ I follows from C → I.
    let u = &fds.universe;
    let target = Mvd::new(u.set(&["C"]), u.set(&["I"]));
    println!(
        "\nC →→ I implied by the FDs: {}",
        implies_mvd(&fds, &[], &target)
    );
    assert!(implies_mvd(&fds, &[], &target));

    // ---- acyclicity of the decomposed schema --------------------------
    let names: Vec<&str> = vec!["S", "C", "I", "R", "G", "D"];
    let edges: Vec<Vec<&str>> = report
        .synthesis_3nf
        .iter()
        .map(|s| names.iter().filter(|n| s.contains(**n)).copied().collect())
        .collect();
    let edge_slices: Vec<&[&str]> = edges.iter().map(Vec::as_slice).collect();
    let h = Hypergraph::from_named(&names, &edge_slices);
    println!("3NF decomposition is an acyclic schema: {}", h.is_acyclic());
    assert!(
        h.is_acyclic(),
        "synthesis of a chain-like FD set is acyclic"
    );

    println!("\nschema designer OK");
}
