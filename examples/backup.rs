//! Backing up and restoring: an online full backup, an incremental
//! chain, point-in-time recovery, and a scrub — end to end.
//!
//! ```text
//! cargo run --example backup
//! ```
//!
//! The walkthrough: take a full backup of a live engine, keep writing,
//! archive the WAL delta as an incremental, restore to the exact moment
//! of the full (the later writes vanish), restore to latest (they come
//! back), and let the scrubber vouch for every archived byte. Backups
//! are consistent without stalling readers: the engine only holds the
//! write lock long enough to pair a snapshot with its WAL horizon. This
//! is also the CI smoke test for bq-backup.

use big_queries::bq_util::{Rng, SplitMix64};
use big_queries::prelude::*;
use std::sync::{Arc, RwLock};

fn main() {
    let seed = std::env::var("BQ_BACKUP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_809);
    let mut rng = SplitMix64::seed_from_u64(seed);

    // A live engine with some committed history.
    let mut db = Db::new();
    db.create_table("events", &[("id", Type::Int), ("what", Type::Str)])
        .expect("create");
    let registry = db.backup_registry();
    let db = RwLock::new(db);
    let mut next_id = 0i64;
    let mut write = |db: &RwLock<Db>, n: i64| {
        let mut db = db.write().expect("lock");
        let h = db.begin().expect("begin");
        for _ in 0..n {
            let what = format!("e{:04x}", rng.next_u64() & 0xffff);
            db.insert_in(h, "events", vec![Value::Int(next_id), Value::Str(what)])
                .expect("insert");
            next_id += 1;
        }
        db.commit(h).expect("commit");
    };
    write(&db, 8);

    // An archive (in-memory here; bqd uses a DirArchive on disk) and
    // its engine, sharing the database's backup registry so attempts
    // show up in the `bq.backups` virtual table.
    let engine = BackupEngine::new(Arc::new(MemArchive::new()), registry);
    let full = engine.backup_full(&db).expect("full backup");
    println!(
        "full backup #{} at wal {} (fingerprint {:016x})",
        full.seq, full.wal_end, full.fingerprint
    );
    let fp_at_full = full.fingerprint;

    // Keep writing, then archive just the WAL delta.
    write(&db, 8);
    let incr = engine.backup_incremental(&db).expect("incremental");
    println!(
        "{} backup #{} covers wal [{}, {})",
        incr.kind.as_str(),
        incr.seq,
        incr.wal_start,
        incr.wal_end
    );
    assert_eq!(incr.wal_start, full.wal_end, "chain is contiguous");

    // Point-in-time recovery: restore to the full's horizon. The eight
    // later events do not exist in that engine.
    let at_full = engine.restore_to_offset(full.wal_end).expect("pitr");
    assert_eq!(at_full.content_fingerprint(), fp_at_full);
    println!("pitr to wal {}: fingerprint matches the full", full.wal_end);

    // Restore to latest: the incremental replays and the restored
    // engine fingerprints identically to the live one.
    let live_fp = db.read().expect("lock").content_fingerprint();
    let (latest, off) = engine.restore_latest().expect("restore latest");
    assert_eq!(off, incr.wal_end);
    assert_eq!(latest.content_fingerprint(), live_fp);
    println!("restore to latest (wal {off}): fingerprint matches live");

    // An offset inside a record is refused with the nearest boundary.
    let torn = engine
        .restore_to_offset(full.wal_end + 1)
        .expect_err("torn");
    println!("offset {} refused: {torn}", full.wal_end + 1);

    // The scrubber checksums every manifest and object, and walks the
    // live pages too.
    let report = engine.scrub(Some(&db)).expect("scrub");
    assert!(report.clean(), "archive must scrub clean: {report:?}");
    println!(
        "scrub: {} manifests, {} objects, {} pages — clean",
        report.manifests_checked, report.objects_checked, report.pages_checked
    );

    println!("backup: OK (seed {seed})");
}
