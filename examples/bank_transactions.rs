//! Concurrency control shoot-out on a bank-style workload — §6's
//! observation that products adopted "the simplest solutions (two-phase
//! locking, and occasionally optimistic methods or tree-based locking)",
//! reproduced in miniature.
//!
//! A fleet of transfer transactions hammers a small set of hot accounts;
//! each scheduler runs the same workload, and we verify every produced
//! history is conflict-serializable before comparing throughput and
//! aborts.
//!
//! Run with: `cargo run --example bank_transactions`

use bq_txn::conflict::is_conflict_serializable;
use bq_txn::occ::Optimistic;
use bq_txn::sim::{run_sim, Scheduler, SimConfig};
use bq_txn::tree::TreeLocking;
use bq_txn::tso::TimestampOrdering;
use bq_txn::twopl::TwoPhaseLocking;
use bq_txn::workload::{generate, Workload, WorkloadConfig};
use bq_txn::woundwait::WoundWait;

fn main() {
    // 40 transfer transactions over 50 accounts; 30% of accesses hit the
    // 5 hottest accounts; every transaction reads two accounts and writes
    // them back (length 4, 50% writes).
    let config = WorkloadConfig {
        n_txns: 40,
        n_items: 50,
        txn_len: 4,
        write_pct: 50,
        hot_access_pct: 30,
        hot_item_pct: 10,
        shape: Workload::Plain,
        seed: 2026,
    };
    let specs = generate(&config);

    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>12}",
        "scheduler", "commits", "aborts", "ticks", "tput/1k"
    );
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TwoPhaseLocking::new()),
        Box::new(WoundWait::new()),
        Box::new(TimestampOrdering::new()),
        Box::new(Optimistic::new()),
    ];
    for s in &mut schedulers {
        let m = run_sim(&specs, s.as_mut(), SimConfig::default());
        assert_eq!(
            m.committed, config.n_txns,
            "{} must finish everything",
            m.scheduler
        );
        assert!(
            is_conflict_serializable(&m.history),
            "{} produced a non-serializable history",
            m.scheduler
        );
        println!(
            "{:<14} {:>9} {:>8} {:>8} {:>12.2}",
            m.scheduler,
            m.committed,
            m.aborts,
            m.ticks,
            m.throughput()
        );
    }

    // Tree locking needs path-structured accesses: its own workload with
    // the same size, on a 63-node tree.
    let tree_config = WorkloadConfig {
        n_items: 63,
        shape: Workload::TreePath,
        ..config
    };
    let tree_specs = generate(&tree_config);
    let mut tree = TreeLocking::new();
    let m = run_sim(&tree_specs, &mut tree, SimConfig::default());
    assert_eq!(m.committed, tree_config.n_txns);
    assert_eq!(m.aborts, 0, "the tree protocol is deadlock-free");
    assert!(is_conflict_serializable(&m.history));
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>12.2}   (path workload)",
        m.scheduler,
        m.committed,
        m.aborts,
        m.ticks,
        m.throughput()
    );

    println!("\nbank transactions OK");
}
