//! Asking the big queries about itself: dial a `bqd`-style server and
//! read the engine's own state back as ordinary relations.
//!
//! ```text
//! cargo run --example introspect
//! ```
//!
//! This is also the CI smoke test for queryable introspection over the
//! wire: `bq.metrics` answers a plain select, `EXPLAIN ANALYZE` renders
//! per-operator runtime stats, and the query id from the client's last
//! `Done` frame joins `bq.slow_log` — one SQL query from a remote
//! client to the server-side operator timings.

use big_queries::prelude::*;
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn main() {
    let db = Arc::new(RwLock::new(Db::new()));
    let server = serve(Arc::clone(&db), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let mut conn = connect(addr.to_string()).expect("connect");
    println!("connected: session {}", conn.session());

    conn.execute("create table emp (name str, dept str, sal int)")
        .expect("create");
    for stmt in [
        "insert into emp values ('ann', 'cs', 90)",
        "insert into emp values ('bob', 'ee', 70)",
        "insert into emp values ('cat', 'cs', 80)",
    ] {
        conn.execute(stmt).expect("insert");
    }

    // The system catalog answers through the normal SQL path, over the
    // wire: server-side metrics as a relation.
    match conn.execute("select m.name, m.value from bq.metrics m where m.kind = 'counter'") {
        Ok(Outcome::Rows(rel)) => {
            println!("bq.metrics over the wire: {} counters", rel.len());
            assert!(!rel.is_empty(), "a served engine has live counters");
        }
        other => panic!("expected rows from bq.metrics, got {other:?}"),
    }

    // EXPLAIN ANALYZE runs the plan and annotates every operator with
    // rows, wall time, and memory charged against the governor budget.
    let analyzed = match conn.execute("explain analyze select e.name from emp e where e.sal > 75") {
        Ok(Outcome::Message(m)) => m,
        other => panic!("expected an analyzed plan, got {other:?}"),
    };
    println!("{analyzed}");
    assert!(analyzed.contains("SeqScan [emp]"), "{analyzed}");
    assert!(analyzed.contains("time="), "{analyzed}");
    assert!(analyzed.contains("mem="), "{analyzed}");

    // The `Done` frame carried the server's trace id for that statement;
    // join it back against the slow log with one more select.
    let qid = conn.last_query_id();
    let joined = match conn.execute(&format!(
        "select s.sql, s.elapsed_us from bq.slow_log s where s.query = {qid}"
    )) {
        Ok(Outcome::Rows(rel)) => rel,
        other => panic!("expected rows from bq.slow_log, got {other:?}"),
    };
    println!("bq.slow_log join on query {qid}: {} row", joined.len());
    assert_eq!(joined.len(), 1, "trace id did not join the slow log");

    // The catalog also sees this session itself.
    match conn.execute(&format!(
        "select s.peer, s.mode from bq.sessions s where s.session = {}",
        conn.session()
    )) {
        Ok(Outcome::Rows(rel)) => assert_eq!(rel.len(), 1, "session missing from bq.sessions"),
        other => panic!("expected rows from bq.sessions, got {other:?}"),
    }

    conn.close();
    server.shutdown(Duration::from_secs(2));
    println!("introspect: OK");
}
