//! The paper's own figures, regenerated — Figure 1 (Kuhn stages),
//! Figure 2 (the research-interaction graph), Figure 3 (the PODS
//! retrospective), footnote 10 (the program-committee harmonic),
//! the Volterra analogy, and footnote 11 (Kitcher diversity).
//!
//! Run with: `cargo run --example pods_retrospective`

use bq_meta::graph::ResearchGraph;
use bq_meta::harmonic::fit_pc_model;
use bq_meta::kitcher::{equilibrium, KitcherModel};
use bq_meta::kuhn::KuhnModel;
use bq_meta::pods::{Area, PodsDataset};
use bq_meta::volterra::research_succession;

fn bar(v: f64) -> String {
    "█".repeat((v * 2.0).round() as usize)
}

fn main() {
    // ---- Figure 3: five areas, two-year averages ----------------------
    let data = PodsDataset::embedded();
    println!("Figure 3 — PODS papers per area (two-year averages)\n");
    for area in Area::ALL {
        println!("{}:", area.name());
        for (year, v) in data.figure3(area) {
            println!("  {year} {v:5.1} {}", bar(v));
        }
        println!();
    }
    println!(
        "peak order: relational {} → logic {} → objects {}",
        data.peak_year(Area::RelationalTheory),
        data.peak_year(Area::LogicDatabases),
        data.peak_year(Area::ComplexObjects)
    );

    // ---- Footnote 10: the two-year harmonic ---------------------------
    let raw = data.footnote10();
    let model = fit_pc_model(&raw);
    println!("\nFootnote 10 — Logic DB raw series 1986-92: {raw:?}");
    println!(
        "  lag-1 autocorrelation {:.2}, dominant period {:.1} years, \
         fitted PC overcorrection γ = {:.2}",
        model.lag1_autocorr, model.dominant_period, model.gamma
    );

    // ---- Figure 2: healthy vs crisis research graph -------------------
    let healthy = ResearchGraph::healthy(600, 4.0, 1995).health();
    let crisis = ResearchGraph::crisis(600, 4.0, 30, 40, 1995).health();
    println!("\nFigure 2 — research-interaction graph health");
    println!(
        "  healthy: giant {:.0}%, diameter {}, theory→practice hops {:?}, stranded theory {:.0}%",
        healthy.giant_fraction * 100.0,
        healthy.giant_diameter,
        healthy.mean_theory_practice_hops,
        healthy.disconnected_theory_fraction * 100.0
    );
    println!(
        "  crisis:  giant {:.0}%, diameter {}, theory→practice hops {:?}, stranded theory {:.0}% (same avg degree: {:.1} vs {:.1})",
        crisis.giant_fraction * 100.0,
        crisis.giant_diameter,
        crisis.mean_theory_practice_hops,
        crisis.disconnected_theory_fraction * 100.0,
        healthy.avg_degree,
        crisis.avg_degree
    );

    // ---- Figure 1: Kuhn stage occupancy --------------------------------
    let mut kuhn = KuhnModel::new(1995);
    let occupancy = kuhn.occupancy(50_000);
    println!("\nFigure 1 — Kuhn stage occupancy over 50k steps");
    for (name, n) in ["immature", "normal", "crisis", "revolution"]
        .iter()
        .zip(occupancy)
    {
        println!("  {name:<11} {n:>6} steps");
    }
    println!("  paradigm shifts: {}", kuhn.paradigm_count);

    // ---- The Volterra analogy ------------------------------------------
    let sys = research_succession();
    let peaks = sys.first_peak_times(0.01, 4000);
    println!("\nVolterra succession — first peaks (steps of 0.01):");
    for (s, p) in sys.species.iter().zip(&peaks) {
        println!("  {:<18} t = {p}", s.name);
    }

    // ---- Footnote 11: Kitcher diversity --------------------------------
    let m = KitcherModel {
        value_a: 0.8,
        value_b: 0.3,
    };
    let eq = equilibrium(&m, 0.5);
    println!(
        "\nKitcher model — promise 0.8 vs 0.3: equilibrium share on A = {:.2} \
         (diversity persists), planner optimum = {:.2}",
        eq,
        m.optimal_allocation()
    );

    println!("\npods retrospective OK");
}
